//! Query arrival streams.
//!
//! The paper drives arrivals with an exponential stream: "the
//! ExponentialStream class … is adopted to simulate data synchronization
//! and query arrival stream. In our experiments, we vary the rate between
//! query arrival frequency (Fq) and synchronization frequency (Fs) from
//! 1:0.1 to 1:20" (§4.1). [`ArrivalStream`] instantiates query templates
//! at exponentially spaced submission times, cycling through the template
//! set.

use ivdss_core::plan::QueryRequest;
use ivdss_core::value::BusinessValue;
use ivdss_costmodel::query::{QueryId, QuerySpec};
use ivdss_simkernel::rng::{ExponentialStream, Stream};
use ivdss_simkernel::time::SimTime;

/// The Fq:Fs frequency ratio of the paper's experiments.
///
/// `Fq` is the query arrival frequency and `Fs` the synchronization
/// frequency; given a mean inter-arrival time, the mean synchronization
/// period follows from the ratio.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrequencyRatio {
    /// Synchronizations per query arrival (`Fs/Fq`); the paper's "1:x"
    /// notation means `x` here.
    pub sync_per_query: f64,
}

impl FrequencyRatio {
    /// Creates a ratio `1:x` (x synchronizations per query arrival).
    ///
    /// # Panics
    ///
    /// Panics if `x` is not strictly positive and finite.
    #[must_use]
    pub fn one_to(x: f64) -> Self {
        assert!(x.is_finite() && x > 0.0, "ratio must be positive");
        FrequencyRatio { sync_per_query: x }
    }

    /// The four ratios of Fig. 5: 1:0.1, 1:1, 1:10, 1:20.
    #[must_use]
    pub fn paper_fig5() -> [FrequencyRatio; 4] {
        [
            FrequencyRatio::one_to(0.1),
            FrequencyRatio::one_to(1.0),
            FrequencyRatio::one_to(10.0),
            FrequencyRatio::one_to(20.0),
        ]
    }

    /// Mean synchronization period implied by a mean inter-arrival time:
    /// syncs happen `sync_per_query` times as often as arrivals.
    #[must_use]
    pub fn sync_period(&self, mean_interarrival: f64) -> f64 {
        mean_interarrival / self.sync_per_query
    }

    /// The conventional "1:x" label.
    #[must_use]
    pub fn label(&self) -> String {
        format!("1:{}", self.sync_per_query)
    }
}

/// A pull-based source of timed query requests — the generator seam
/// shared by the paper's exponential [`ArrivalStream`] (unbounded,
/// always yields) and richer scenario engines (bounded horizons,
/// non-homogeneous arrival processes), so drivers can consume traffic
/// without knowing which generator produced it.
///
/// Implementations must be deterministic for a fixed seed and must
/// yield requests with non-decreasing `submitted_at` times.
///
/// # Examples
///
/// ```
/// use ivdss_workloads::stream::{ArrivalStream, RequestSource};
/// use ivdss_workloads::tpch::tpch_query_specs;
///
/// fn drain(source: &mut dyn RequestSource, n: usize) -> usize {
///     (0..n).map_while(|_| source.next_request()).count()
/// }
///
/// let mut arrivals = ArrivalStream::new(tpch_query_specs(), 20.0, 7);
/// // The exponential stream is unbounded: it never runs dry.
/// assert_eq!(drain(&mut arrivals, 50), 50);
/// ```
pub trait RequestSource {
    /// Generates the next arrival, or `None` once the source is
    /// exhausted (e.g. a scenario past its horizon).
    fn next_request(&mut self) -> Option<QueryRequest>;
}

impl RequestSource for ArrivalStream {
    fn next_request(&mut self) -> Option<QueryRequest> {
        Some(ArrivalStream::next_request(self))
    }
}

/// Generates a stream of [`QueryRequest`]s from a set of templates.
#[derive(Debug, Clone)]
pub struct ArrivalStream {
    templates: Vec<QuerySpec>,
    interarrival: ExponentialStream,
    business_value: BusinessValue,
    next_index: usize,
    next_id: u64,
    now: SimTime,
}

impl ArrivalStream {
    /// Creates a stream cycling through `templates` with exponential
    /// inter-arrival times of the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `templates` is empty or `mean_interarrival` is not
    /// strictly positive and finite.
    #[must_use]
    pub fn new(templates: Vec<QuerySpec>, mean_interarrival: f64, seed: u64) -> Self {
        assert!(!templates.is_empty(), "need at least one query template");
        ArrivalStream {
            templates,
            interarrival: ExponentialStream::new(mean_interarrival, seed),
            business_value: BusinessValue::UNIT,
            next_index: 0,
            next_id: 0,
            now: SimTime::ZERO,
        }
    }

    /// Sets the business value assigned to every generated request.
    #[must_use]
    pub fn with_business_value(mut self, bv: BusinessValue) -> Self {
        self.business_value = bv;
        self
    }

    /// Generates the next arrival.
    pub fn next_request(&mut self) -> QueryRequest {
        self.now += self.interarrival.next_duration();
        let template = &self.templates[self.next_index];
        self.next_index = (self.next_index + 1) % self.templates.len();
        let spec = template.with_id(QueryId::new(self.next_id));
        self.next_id += 1;
        QueryRequest {
            query: spec,
            business_value: self.business_value,
            submitted_at: self.now,
        }
    }

    /// Generates the first `count` arrivals.
    #[must_use]
    pub fn take_requests(&mut self, count: usize) -> Vec<QueryRequest> {
        (0..count).map(|_| self.next_request()).collect()
    }

    /// The template a generated id maps back to (ids cycle through the
    /// template list).
    #[must_use]
    pub fn template_of(&self, id: QueryId) -> &QuerySpec {
        &self.templates[(id.raw() as usize) % self.templates.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivdss_catalog::ids::TableId;

    fn templates() -> Vec<QuerySpec> {
        vec![
            QuerySpec::new(QueryId::new(0), vec![TableId::new(0)]),
            QuerySpec::new(QueryId::new(1), vec![TableId::new(1), TableId::new(2)]),
        ]
    }

    #[test]
    fn arrivals_are_increasing_and_cycle_templates() {
        let mut stream = ArrivalStream::new(templates(), 5.0, 1);
        let reqs = stream.take_requests(6);
        for w in reqs.windows(2) {
            assert!(w[1].submitted_at >= w[0].submitted_at);
        }
        // Templates cycle 0,1,0,1,…
        assert_eq!(reqs[0].query.table_count(), 1);
        assert_eq!(reqs[1].query.table_count(), 2);
        assert_eq!(reqs[2].query.table_count(), 1);
        // Fresh ids per instance.
        assert_eq!(reqs[3].id().raw(), 3);
    }

    #[test]
    fn stream_is_deterministic() {
        let a = ArrivalStream::new(templates(), 5.0, 9).take_requests(10);
        let b = ArrivalStream::new(templates(), 5.0, 9).take_requests(10);
        assert_eq!(a, b);
    }

    #[test]
    fn mean_interarrival_close_to_target() {
        let mut stream = ArrivalStream::new(templates(), 4.0, 3);
        let reqs = stream.take_requests(20_000);
        let span = reqs.last().unwrap().submitted_at.value();
        let mean = span / reqs.len() as f64;
        assert!((mean - 4.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn business_value_applies() {
        let mut stream =
            ArrivalStream::new(templates(), 5.0, 1).with_business_value(BusinessValue::new(3.0));
        assert_eq!(stream.next_request().business_value.value(), 3.0);
    }

    #[test]
    fn template_lookup_by_id() {
        let stream = ArrivalStream::new(templates(), 5.0, 1);
        assert_eq!(stream.template_of(QueryId::new(4)).table_count(), 1);
        assert_eq!(stream.template_of(QueryId::new(5)).table_count(), 2);
    }

    #[test]
    fn frequency_ratio_periods() {
        let r = FrequencyRatio::one_to(10.0);
        // Queries every 20 time units → syncs every 2.
        assert_eq!(r.sync_period(20.0), 2.0);
        assert_eq!(r.label(), "1:10");
        assert_eq!(FrequencyRatio::paper_fig5().len(), 4);
        // 1:0.1 means syncs are 10× rarer than queries.
        assert_eq!(FrequencyRatio::one_to(0.1).sync_period(20.0), 200.0);
    }

    #[test]
    fn request_source_matches_inherent_stream() {
        let mut inherent = ArrivalStream::new(templates(), 5.0, 11);
        let mut via_trait = ArrivalStream::new(templates(), 5.0, 11);
        let source: &mut dyn RequestSource = &mut via_trait;
        for _ in 0..20 {
            let expected = inherent.next_request();
            assert_eq!(source.next_request(), Some(expected));
        }
    }

    #[test]
    #[should_panic(expected = "at least one query template")]
    fn empty_templates_rejected() {
        let _ = ArrivalStream::new(vec![], 5.0, 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_ratio_rejected() {
        let _ = FrequencyRatio::one_to(0.0);
    }
}
