//! # ivdss-workloads — the paper's evaluation workloads
//!
//! Reproduces the two data/query sets of §4.1:
//!
//! * [`tpch`] — the 22 TPC-H queries as footprints over the 12-table
//!   catalog (LineItem split into 5 partitions), plus the Fig. 6/7
//!   "neither too cheap nor too expensive" 15-query selection;
//! * [`synthetic`] — 120 random queries touching 1–10 of up to 300
//!   tables (Fig. 8) and overlap-rate-controlled workloads (Fig. 9a);
//! * [`stream`] — exponential arrival streams and the paper's Fq:Fs
//!   frequency ratios (1:0.1 … 1:20).
//!
//! # Example
//!
//! ```
//! use ivdss_workloads::stream::{ArrivalStream, FrequencyRatio};
//! use ivdss_workloads::tpch::tpch_query_specs;
//!
//! let ratio = FrequencyRatio::one_to(10.0);
//! let mut arrivals = ArrivalStream::new(tpch_query_specs(), 20.0, 7);
//! let requests = arrivals.take_requests(100);
//! assert_eq!(requests.len(), 100);
//! // Syncs are 10× as frequent as queries at 1:10.
//! assert_eq!(ratio.sync_period(20.0), 2.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod stream;
pub mod synthetic;
pub mod tpch;

pub use stream::{ArrivalStream, FrequencyRatio, RequestSource};
pub use synthetic::{
    measured_overlap, overlapping_queries, random_queries, OverlapConfig, RandomQueryConfig,
};
pub use tpch::{mid_cost_query_specs, tpch_query_specs, TpchQuery, TPCH_QUERIES};
