//! Synthetic query generators.
//!
//! Two generators from the paper's §4:
//!
//! * [`random_queries`] — "A set of 120 random queries are generated and
//!   the number of tables a query accesses is randomly generated from
//!   [1, 10]. Which tables the query may involve are randomly selected."
//!   (Fig. 8);
//! * [`overlapping_queries`] — workloads with a controlled footprint
//!   overlap rate, the x-axis of Fig. 9(a).

use ivdss_costmodel::query::{QueryId, QuerySpec};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Configuration of the random query generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomQueryConfig {
    /// Number of queries (paper: 120).
    pub queries: usize,
    /// Number of catalog tables to draw from.
    pub tables: usize,
    /// Upper bound on tables per query (paper: 10).
    pub max_tables_per_query: usize,
    /// Weight range, drawn uniformly.
    pub weight_range: (f64, f64),
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomQueryConfig {
    /// The paper's synthetic setup: 120 queries over 100 tables, 1–10
    /// tables each.
    fn default() -> Self {
        RandomQueryConfig {
            queries: 120,
            tables: 100,
            max_tables_per_query: 10,
            weight_range: (0.8, 2.5),
            seed: 0x51,
        }
    }
}

/// Generates random queries per `config`.
///
/// # Panics
///
/// Panics if the configuration is degenerate (zero queries/tables, a
/// per-query bound of zero or exceeding the table count, or an invalid
/// weight range).
///
/// # Examples
///
/// ```
/// use ivdss_workloads::synthetic::{random_queries, RandomQueryConfig};
///
/// let queries = random_queries(&RandomQueryConfig::default());
/// assert_eq!(queries.len(), 120);
/// assert!(queries.iter().all(|q| (1..=10).contains(&q.table_count())));
/// ```
#[must_use]
pub fn random_queries(config: &RandomQueryConfig) -> Vec<QuerySpec> {
    assert!(config.queries > 0, "need at least one query");
    assert!(config.tables > 0, "need at least one table");
    assert!(
        (1..=config.tables).contains(&config.max_tables_per_query),
        "max tables per query must be within 1..=tables"
    );
    let (wlo, whi) = config.weight_range;
    assert!(
        wlo.is_finite() && whi.is_finite() && 0.0 < wlo && wlo < whi,
        "weight range must satisfy 0 < lo < hi"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let all: Vec<u32> = (0..config.tables as u32).collect();
    (0..config.queries)
        .map(|i| {
            let k = rng.random_range(1..=config.max_tables_per_query);
            let mut pool = all.clone();
            pool.shuffle(&mut rng);
            let tables = pool[..k]
                .iter()
                .map(|&t| ivdss_catalog::ids::TableId::new(t))
                .collect();
            let weight = rng.random_range(wlo..whi);
            QuerySpec::with_profile(QueryId::new(i as u64), tables, weight, 0.01)
        })
        .collect()
}

/// Configuration of the overlap-controlled generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverlapConfig {
    /// Number of queries in the workload.
    pub queries: usize,
    /// Number of catalog tables available.
    pub tables: usize,
    /// Tables per query.
    pub tables_per_query: usize,
    /// Target pairwise footprint-overlap rate in `[0, 1]`.
    pub target_overlap: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for OverlapConfig {
    fn default() -> Self {
        OverlapConfig {
            queries: 10,
            tables: 100,
            tables_per_query: 4,
            target_overlap: 0.3,
            seed: 0x0e,
        }
    }
}

/// Generates a workload whose expected pairwise footprint-overlap rate is
/// `target_overlap`.
///
/// Construction: a fraction `√target` of the queries ("hot" queries) draw
/// their tables from one small shared pool, so any two of them share
/// tables almost surely; the rest receive pairwise-disjoint table slices.
/// Pairwise overlap is then ≈ `(√target)² = target`. Use
/// [`measured_overlap`] for the exact realized rate.
///
/// # Panics
///
/// Panics if the configuration is degenerate (zero queries, a per-query
/// size of zero, a target outside `[0, 1]`, or too few tables to give
/// every cold query a disjoint slice).
#[must_use]
pub fn overlapping_queries(config: &OverlapConfig) -> Vec<QuerySpec> {
    assert!(config.queries > 0, "need at least one query");
    assert!(config.tables_per_query > 0, "queries need tables");
    assert!(
        (0.0..=1.0).contains(&config.target_overlap),
        "target overlap must be within [0, 1]"
    );
    let hot_count = ((config.queries as f64) * config.target_overlap.sqrt()).round() as usize;
    let hot_count = hot_count.min(config.queries);
    let cold_count = config.queries - hot_count;
    // Hot pool: just larger than one footprint so hot queries collide.
    let hot_pool_size = (config.tables_per_query + 2).min(config.tables);
    let cold_tables_needed = cold_count * config.tables_per_query;
    assert!(
        hot_pool_size + cold_tables_needed <= config.tables,
        "need at least {} tables for this configuration, have {}",
        hot_pool_size + cold_tables_needed,
        config.tables
    );

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut ids: Vec<u32> = (0..config.tables as u32).collect();
    ids.shuffle(&mut rng);
    let hot_pool: Vec<u32> = ids[..hot_pool_size].to_vec();
    let mut cold_cursor = hot_pool_size;

    let mut hot_flags = vec![true; hot_count];
    hot_flags.extend(std::iter::repeat_n(false, cold_count));
    hot_flags.shuffle(&mut rng);

    hot_flags
        .iter()
        .enumerate()
        .map(|(i, &hot)| {
            let tables: Vec<ivdss_catalog::ids::TableId> = if hot {
                let mut pool = hot_pool.clone();
                pool.shuffle(&mut rng);
                pool[..config.tables_per_query]
                    .iter()
                    .map(|&t| ivdss_catalog::ids::TableId::new(t))
                    .collect()
            } else {
                let slice = &ids[cold_cursor..cold_cursor + config.tables_per_query];
                cold_cursor += config.tables_per_query;
                slice
                    .iter()
                    .map(|&t| ivdss_catalog::ids::TableId::new(t))
                    .collect()
            };
            let weight = rng.random_range(0.8..2.0);
            QuerySpec::with_profile(QueryId::new(i as u64), tables, weight, 0.01)
        })
        .collect()
}

/// The realized pairwise footprint-overlap rate of a workload.
#[must_use]
pub fn measured_overlap(queries: &[QuerySpec]) -> f64 {
    let n = queries.len();
    if n < 2 {
        return 0.0;
    }
    let mut hits = 0usize;
    let mut pairs = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            pairs += 1;
            if queries[i].overlaps(&queries[j]) {
                hits += 1;
            }
        }
    }
    hits as f64 / pairs as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_queries_respect_bounds() {
        let qs = random_queries(&RandomQueryConfig::default());
        assert_eq!(qs.len(), 120);
        for q in &qs {
            assert!((1..=10).contains(&q.table_count()));
            for t in q.tables() {
                assert!(t.index() < 100);
            }
            assert!(q.weight() >= 0.8 && q.weight() < 2.5);
        }
    }

    #[test]
    fn random_queries_deterministic() {
        let a = random_queries(&RandomQueryConfig::default());
        let b = random_queries(&RandomQueryConfig::default());
        assert_eq!(a, b);
        let c = random_queries(&RandomQueryConfig {
            seed: 1,
            ..RandomQueryConfig::default()
        });
        assert_ne!(a, c);
    }

    #[test]
    fn overlap_targets_are_approximately_met() {
        for target in [0.1, 0.3, 0.5] {
            let cfg = OverlapConfig {
                queries: 14,
                tables: 100,
                tables_per_query: 4,
                target_overlap: target,
                seed: 42,
            };
            let qs = overlapping_queries(&cfg);
            let measured = measured_overlap(&qs);
            assert!(
                (measured - target).abs() < 0.25,
                "target {target}, measured {measured}"
            );
        }
    }

    #[test]
    fn zero_overlap_yields_disjoint_footprints() {
        let cfg = OverlapConfig {
            queries: 8,
            tables: 100,
            tables_per_query: 3,
            target_overlap: 0.0,
            seed: 7,
        };
        let qs = overlapping_queries(&cfg);
        assert_eq!(measured_overlap(&qs), 0.0);
    }

    #[test]
    fn full_overlap_yields_shared_footprints() {
        let cfg = OverlapConfig {
            queries: 6,
            tables: 50,
            tables_per_query: 4,
            target_overlap: 1.0,
            seed: 7,
        };
        let qs = overlapping_queries(&cfg);
        // Footprints of size 4 from a pool of 6 must pairwise intersect.
        assert_eq!(measured_overlap(&qs), 1.0);
    }

    #[test]
    fn measured_overlap_small_inputs() {
        assert_eq!(measured_overlap(&[]), 0.0);
        let one = random_queries(&RandomQueryConfig {
            queries: 1,
            ..RandomQueryConfig::default()
        });
        assert_eq!(measured_overlap(&one), 0.0);
    }

    #[test]
    #[should_panic(expected = "need at least")]
    fn too_few_tables_rejected() {
        let _ = overlapping_queries(&OverlapConfig {
            queries: 50,
            tables: 20,
            tables_per_query: 5,
            target_overlap: 0.0,
            seed: 1,
        });
    }
}
