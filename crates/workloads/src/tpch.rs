//! The 22 TPC-H queries as footprints over the paper's 12-table catalog.
//!
//! The paper evaluates on "TPC-H benchmark data set: 6GB data and 22
//! queries" (§4.1) with LineItem split into five partitions. Reproducing
//! the figures requires only each query's *footprint* (which tables it
//! reads — a query over LineItem scans all five partitions) and a relative
//! cost profile; both are derived from the TPC-H specification below.

use ivdss_catalog::tpch::TpchTable;
use ivdss_costmodel::query::{QueryId, QuerySpec};

/// The logical footprint and cost profile of one TPC-H query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TpchQuery {
    /// TPC-H query number, 1–22.
    pub number: u8,
    /// Logical tables referenced.
    pub tables: &'static [TpchTable],
    /// Relative processing weight (joins, aggregation, subqueries).
    pub weight: f64,
    /// Result selectivity (fraction of scanned remote bytes shipped).
    pub selectivity: f64,
}

use TpchTable::{Customer, LineItem, Nation, Orders, Part, PartSupp, Region, Supplier};

/// The 22 TPC-H queries: footprints per the TPC-H specification, weights
/// reflecting each query's plan complexity (aggregation-only scans ≈ 1,
/// multi-way join + subquery pipelines up to ≈ 3).
pub const TPCH_QUERIES: [TpchQuery; 22] = [
    TpchQuery {
        number: 1,
        tables: &[LineItem],
        weight: 1.2,
        selectivity: 0.001,
    },
    TpchQuery {
        number: 2,
        tables: &[Part, Supplier, PartSupp, Nation, Region],
        weight: 2.0,
        selectivity: 0.005,
    },
    TpchQuery {
        number: 3,
        tables: &[Customer, Orders, LineItem],
        weight: 1.8,
        selectivity: 0.002,
    },
    TpchQuery {
        number: 4,
        tables: &[Orders, LineItem],
        weight: 1.4,
        selectivity: 0.001,
    },
    TpchQuery {
        number: 5,
        tables: &[Customer, Orders, LineItem, Supplier, Nation, Region],
        weight: 2.4,
        selectivity: 0.002,
    },
    TpchQuery {
        number: 6,
        tables: &[LineItem],
        weight: 1.0,
        selectivity: 0.001,
    },
    TpchQuery {
        number: 7,
        tables: &[Supplier, LineItem, Orders, Customer, Nation],
        weight: 2.3,
        selectivity: 0.002,
    },
    TpchQuery {
        number: 8,
        tables: &[Part, Supplier, LineItem, Orders, Customer, Nation, Region],
        weight: 2.6,
        selectivity: 0.002,
    },
    TpchQuery {
        number: 9,
        tables: &[Part, Supplier, LineItem, PartSupp, Orders, Nation],
        weight: 3.0,
        selectivity: 0.005,
    },
    TpchQuery {
        number: 10,
        tables: &[Customer, Orders, LineItem, Nation],
        weight: 1.9,
        selectivity: 0.003,
    },
    TpchQuery {
        number: 11,
        tables: &[PartSupp, Supplier, Nation],
        weight: 1.3,
        selectivity: 0.01,
    },
    TpchQuery {
        number: 12,
        tables: &[Orders, LineItem],
        weight: 1.4,
        selectivity: 0.001,
    },
    TpchQuery {
        number: 13,
        tables: &[Customer, Orders],
        weight: 1.5,
        selectivity: 0.005,
    },
    TpchQuery {
        number: 14,
        tables: &[LineItem, Part],
        weight: 1.3,
        selectivity: 0.001,
    },
    TpchQuery {
        number: 15,
        tables: &[Supplier, LineItem],
        weight: 1.6,
        selectivity: 0.002,
    },
    TpchQuery {
        number: 16,
        tables: &[PartSupp, Part, Supplier],
        weight: 1.4,
        selectivity: 0.01,
    },
    TpchQuery {
        number: 17,
        tables: &[LineItem, Part],
        weight: 2.2,
        selectivity: 0.001,
    },
    TpchQuery {
        number: 18,
        tables: &[Customer, Orders, LineItem],
        weight: 2.5,
        selectivity: 0.002,
    },
    TpchQuery {
        number: 19,
        tables: &[LineItem, Part],
        weight: 1.7,
        selectivity: 0.001,
    },
    TpchQuery {
        number: 20,
        tables: &[Supplier, Nation, PartSupp, Part, LineItem],
        weight: 2.4,
        selectivity: 0.003,
    },
    TpchQuery {
        number: 21,
        tables: &[Supplier, LineItem, Orders, Nation],
        weight: 2.8,
        selectivity: 0.002,
    },
    TpchQuery {
        number: 22,
        tables: &[Customer, Orders],
        weight: 1.6,
        selectivity: 0.005,
    },
];

impl TpchQuery {
    /// Expands the logical footprint into physical [`QuerySpec`] table ids
    /// (LineItem → its five partitions).
    #[must_use]
    pub fn to_spec(&self) -> QuerySpec {
        let tables = self.tables.iter().flat_map(|t| t.table_ids()).collect();
        QuerySpec::with_profile(
            QueryId::new(u64::from(self.number)),
            tables,
            self.weight,
            self.selectivity,
        )
    }
}

/// All 22 queries as physical [`QuerySpec`]s (ids 1–22).
#[must_use]
pub fn tpch_query_specs() -> Vec<QuerySpec> {
    TPCH_QUERIES.iter().map(TpchQuery::to_spec).collect()
}

/// The paper's Fig. 6/7 selection: "15 queries which are neither too cheap
/// nor too expensive" — we drop the cheapest four and most expensive three
/// by `weight × footprint size`.
#[must_use]
pub fn mid_cost_query_specs() -> Vec<QuerySpec> {
    let mut ranked: Vec<&TpchQuery> = TPCH_QUERIES.iter().collect();
    ranked.sort_by(|a, b| {
        let ka = a.weight * a.tables.len() as f64;
        let kb = b.weight * b.tables.len() as f64;
        ka.partial_cmp(&kb)
            .expect("weights are finite")
            .then_with(|| a.number.cmp(&b.number))
    });
    let mut mid: Vec<&TpchQuery> = ranked[4..ranked.len() - 3].to_vec();
    mid.sort_by_key(|q| q.number);
    mid.iter().map(|q| q.to_spec()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivdss_catalog::tpch::LINEITEM_PARTITIONS;

    #[test]
    fn twenty_two_queries_with_valid_numbers() {
        assert_eq!(TPCH_QUERIES.len(), 22);
        for (i, q) in TPCH_QUERIES.iter().enumerate() {
            assert_eq!(usize::from(q.number), i + 1);
            assert!(!q.tables.is_empty());
            assert!(q.weight > 0.0);
            assert!(q.selectivity > 0.0 && q.selectivity <= 1.0);
        }
    }

    #[test]
    fn lineitem_expands_to_partitions() {
        // Q1 reads only LineItem → 5 physical tables.
        let q1 = TPCH_QUERIES[0].to_spec();
        assert_eq!(q1.table_count(), LINEITEM_PARTITIONS);
        // Q13 reads customer+orders → 2 physical tables.
        let q13 = TPCH_QUERIES[12].to_spec();
        assert_eq!(q13.table_count(), 2);
    }

    #[test]
    fn specs_reference_only_catalog_tables() {
        for spec in tpch_query_specs() {
            for t in spec.tables() {
                assert!(t.index() < 12, "table {t} outside the 12-table catalog");
            }
        }
    }

    #[test]
    fn query_ids_match_numbers() {
        let specs = tpch_query_specs();
        assert_eq!(specs.len(), 22);
        for (i, s) in specs.iter().enumerate() {
            assert_eq!(s.id().raw(), (i + 1) as u64);
        }
    }

    #[test]
    fn mid_cost_selection_has_15_queries() {
        let mid = mid_cost_query_specs();
        assert_eq!(mid.len(), 15);
        // The cheapest (Q6: single table, weight 1.0) must be excluded.
        assert!(mid.iter().all(|q| q.id().raw() != 6));
        // The most complex (Q9) must be excluded.
        assert!(mid.iter().all(|q| q.id().raw() != 9));
        // Sorted by query number.
        for w in mid.windows(2) {
            assert!(w[0].id() < w[1].id());
        }
    }

    #[test]
    fn footprints_match_tpch_spec_examples() {
        // Spot checks against the TPC-H specification.
        assert_eq!(TPCH_QUERIES[4].tables.len(), 6); // Q5: 6-way join
        assert!(TPCH_QUERIES[20].tables.contains(&Supplier)); // Q21
        assert!(!TPCH_QUERIES[0].tables.contains(&Orders)); // Q1 is LineItem-only
    }
}
