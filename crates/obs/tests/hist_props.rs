//! Property suite for [`FixedHistogram`] — the exactness claims the
//! crate docs make, checked over ~200 seeded cases each:
//!
//! * merged shards report *exactly* the quantiles of a single-pass
//!   histogram over the union of the samples;
//! * counts are conserved under any split/merge (and merge grouping
//!   does not matter);
//! * bin placement is exact at every representable bucket boundary.

use ivdss_obs::FixedHistogram;
use proptest::prelude::*;

/// Random-but-valid histogram bounds from a raw `(low, width, bins)`
/// draw: finite `low < high`, 1..=32 bins. (The vendored proptest
/// stand-in has no `prop_map`, so derivation happens in the test body.)
fn make_bounds(low: f64, width: f64, bins: usize) -> (f64, f64, usize) {
    (low, low + width, bins)
}

/// Samples spanning well past the bounds so under/overflow is exercised.
fn samples() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-200.0..200.0f64, 0..120)
}

fn record_all(h: &mut FixedHistogram, xs: &[f64]) {
    for &x in xs {
        h.record(x);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Splitting a sample stream into two shards and merging their
    /// histograms reproduces the single-pass histogram exactly:
    /// identical bins, under/overflow, counts and every nearest-rank
    /// quantile. (The floating `sum` is added shard-at-a-time, so it is
    /// compared to relative precision, not bitwise.)
    #[test]
    fn merge_equals_single_pass(
        low in -50.0..50.0f64,
        width in 0.5..75.0f64,
        bins in 1usize..33,
        xs in samples(),
        split_frac in 0.0..1.0f64,
    ) {
        let (low, high, bins) = make_bounds(low, width, bins);
        let split = ((xs.len() as f64) * split_frac) as usize;
        let (left, right) = xs.split_at(split);

        let mut a = FixedHistogram::new(low, high, bins);
        let mut b = FixedHistogram::new(low, high, bins);
        let mut single = FixedHistogram::new(low, high, bins);
        record_all(&mut a, left);
        record_all(&mut b, right);
        record_all(&mut single, &xs);

        a.merge(&b);
        prop_assert_eq!(a.bins(), single.bins());
        prop_assert_eq!(a.underflow(), single.underflow());
        prop_assert_eq!(a.overflow(), single.overflow());
        prop_assert_eq!(a.count(), single.count());
        prop_assert!(
            (a.sum() - single.sum()).abs() <= 1e-9 * (1.0 + single.sum().abs()),
            "merged sum {} vs single-pass {}", a.sum(), single.sum()
        );
        for q in [0.0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            prop_assert_eq!(a.quantile(q), single.quantile(q), "quantile {}", q);
        }
    }

    /// Counts are conserved: every recorded sample lands in exactly one
    /// tally, so bins + underflow + overflow == count == samples, and
    /// any merge grouping of three shards agrees tally-for-tally.
    #[test]
    fn counts_conserved_under_split_and_merge(
        low in -50.0..50.0f64,
        width in 0.5..75.0f64,
        bins in 1usize..33,
        xs in samples(),
        cut_a in 0.0..1.0f64,
        cut_b in 0.0..1.0f64,
    ) {
        let (low, high, bins) = make_bounds(low, width, bins);
        let i = ((xs.len() as f64) * cut_a.min(cut_b)) as usize;
        let j = ((xs.len() as f64) * cut_a.max(cut_b)) as usize;
        let shards = [&xs[..i], &xs[i..j], &xs[j..]];

        let mut hists = shards.map(|s| {
            let mut h = FixedHistogram::new(low, high, bins);
            record_all(&mut h, s);
            h
        });
        for (h, s) in hists.iter().zip(shards) {
            let tallied: u64 = h.bins().iter().sum::<u64>() + h.underflow() + h.overflow();
            prop_assert_eq!(tallied, h.count());
            prop_assert_eq!(h.count(), s.len() as u64);
        }

        // ((a ∪ b) ∪ c) vs (a ∪ (b ∪ c)): grouping is irrelevant.
        let [a, b, c] = &mut hists;
        let mut left_assoc = a.clone();
        left_assoc.merge(b);
        left_assoc.merge(c);
        let mut right_inner = b.clone();
        right_inner.merge(c);
        let mut right_assoc = a.clone();
        right_assoc.merge(&right_inner);
        prop_assert_eq!(left_assoc.bins(), right_assoc.bins());
        prop_assert_eq!(left_assoc.underflow(), right_assoc.underflow());
        prop_assert_eq!(left_assoc.overflow(), right_assoc.overflow());
        prop_assert_eq!(left_assoc.count(), xs.len() as u64);
    }

    /// Bucket boundaries are exact: a sample bitwise-equal to an
    /// interior edge opens that edge's bin, the final edge is
    /// exclusive (overflow), and anything below the first edge is
    /// underflow — for *every* edge of an arbitrarily-bounded
    /// histogram, not just friendly round numbers.
    #[test]
    fn bucket_boundaries_are_exact(
        low in -50.0..50.0f64,
        width in 0.5..75.0f64,
        bins in 1usize..33,
    ) {
        let (low, high, bins) = make_bounds(low, width, bins);
        let template = FixedHistogram::new(low, high, bins);
        let edges = template.edges().to_vec();
        prop_assert_eq!(edges.len(), bins + 1);
        prop_assert_eq!(edges[bins], high);

        for (i, &edge) in edges.iter().enumerate() {
            let mut h = template.clone();
            h.record(edge);
            if i < bins {
                prop_assert_eq!(h.bins()[i], 1, "edge {} must open bin {}", edge, i);
                prop_assert_eq!(h.overflow(), 0);
            } else {
                prop_assert_eq!(h.overflow(), 1, "the last edge is exclusive");
                prop_assert_eq!(h.bins().iter().sum::<u64>(), 0);
            }
            prop_assert_eq!(h.underflow(), 0);
            prop_assert_eq!(h.count(), 1);
        }

        let mut h = template.clone();
        h.record(edges[0] - 1.0);
        prop_assert_eq!(h.underflow(), 1);
    }

    /// Quantiles are monotone in `q` and land on bucket bounds (or the
    /// first edge / +∞ for under/overflow).
    #[test]
    fn quantiles_are_monotone_bucket_bounds(
        low in -50.0..50.0f64,
        width in 0.5..75.0f64,
        bins in 1usize..33,
        xs in samples(),
        q1 in 0.0..1.0f64,
        q2 in 0.0..1.0f64,
    ) {
        let (low, high, bins) = make_bounds(low, width, bins);
        let mut h = FixedHistogram::new(low, high, bins);
        record_all(&mut h, &xs);
        let (lo_q, hi_q) = (q1.min(q2), q1.max(q2));
        match (h.quantile(lo_q), h.quantile(hi_q)) {
            (None, None) => prop_assert!(xs.is_empty()),
            (Some(a), Some(b)) => {
                prop_assert!(a <= b, "quantiles must be monotone: {} > {}", a, b);
                for v in [a, b] {
                    prop_assert!(
                        v == f64::INFINITY || h.edges().contains(&v),
                        "quantile {} is not a bucket bound", v
                    );
                }
            }
            other => prop_assert!(false, "inconsistent emptiness: {:?}", other),
        }
    }
}
