//! Per-query plan-decision audits: *why this plan*.
//!
//! A [`SearchAudit`] is filled in by the scatter-and-gather search as
//! it runs — every candidate it evaluated, the bound trajectory
//! (incumbent IV and tightened boundary after each improvement), and
//! the dominance-prune accounting (candidates skipped thanks to
//! memoized frontiers). The serving engine wraps it in a [`PlanAudit`]
//! recording *how* the decision was reached (cache hit, fresh search,
//! outage re-plan) and keeps the most recent audit per query in a
//! bounded [`AuditLog`].
//!
//! Audits are collection-only — they never influence the search — and
//! like trace events they are driven entirely by sim time, so the
//! rendered audit of a seeded run is deterministic.

use std::collections::VecDeque;
use std::fmt::Write as _;

use ivdss_catalog::ids::TableId;
use ivdss_costmodel::query::QueryId;
use ivdss_simkernel::time::SimTime;

/// One evaluated candidate plan: a `(release, local subset)` pair and
/// what the evaluator said about it.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchCandidate {
    /// The candidate's release time.
    pub release: SimTime,
    /// The tables read from local replicas (the rest remotely).
    pub local: Vec<TableId>,
    /// Its information value.
    pub iv: f64,
    /// When it would deliver.
    pub finish: SimTime,
}

/// One step of the bound trajectory: the incumbent improved and the
/// boundary tightened.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundStep {
    /// Release time of the improving candidate.
    pub at: SimTime,
    /// The new incumbent IV.
    pub incumbent_iv: f64,
    /// The tightened search boundary.
    pub boundary: SimTime,
}

/// What one scatter-and-gather search did, as recorded by the search
/// itself.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SearchAudit {
    /// Every candidate evaluated, in sequential decision order.
    pub candidates: Vec<SearchCandidate>,
    /// The bound trajectory (first entry is the scatter incumbent).
    pub bounds: Vec<BoundStep>,
    /// Waves answered from a memoized frontier.
    pub memo_hits: usize,
    /// Waves that evaluated every subset (and recorded a frontier).
    pub memo_misses: usize,
    /// Candidate evaluations skipped because a memoized dominance
    /// frontier excluded their subset.
    pub pruned: usize,
    /// Gather waves visited.
    pub waves: usize,
    /// The final boundary.
    pub boundary: SimTime,
}

impl SearchAudit {
    /// Candidates actually evaluated.
    #[must_use]
    pub fn explored(&self) -> usize {
        self.candidates.len()
    }
}

/// How the serving engine arrived at a dispatched plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanSource {
    /// Re-scored champion from the sync-phase plan cache.
    CacheHit,
    /// Cache miss: a fresh search ran inside the cache fill.
    CacheMiss,
    /// Cache disabled: a fresh (memoized) search at dispatch.
    FreshSearch,
    /// The chosen plan spanned a site inside an outage; the engine
    /// re-planned with release floors visible and the memo bypassed.
    OutageReplan,
}

impl PlanSource {
    fn label(self) -> &'static str {
        match self {
            PlanSource::CacheHit => "cache_hit",
            PlanSource::CacheMiss => "cache_miss",
            PlanSource::FreshSearch => "fresh_search",
            PlanSource::OutageReplan => "outage_replan",
        }
    }
}

/// The full decision record for one dispatched query.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanAudit {
    /// The planned query.
    pub query: QueryId,
    /// When the decision was made (dispatch time).
    pub decided_at: SimTime,
    /// How the plan was obtained.
    pub source: PlanSource,
    /// The search record, when a search ran on the dispatch path
    /// (`None` for cache-served plans, whose search ran at fill time).
    pub search: Option<SearchAudit>,
    /// The chosen plan's release time.
    pub chosen_release: SimTime,
    /// The chosen plan's local tables.
    pub chosen_local: Vec<TableId>,
    /// The IV the planner promised.
    pub planned_iv: f64,
}

impl PlanAudit {
    /// Renders the audit as a human-readable multi-line report
    /// (deterministic, like everything else in this crate).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "plan-audit query={} decided_at={} source={}",
            self.query.raw(),
            self.decided_at.value(),
            self.source.label()
        );
        let locals: Vec<String> = self
            .chosen_local
            .iter()
            .map(|t| t.index().to_string())
            .collect();
        let _ = writeln!(
            out,
            "  chosen release={} local=[{}] iv={}",
            self.chosen_release.value(),
            locals.join(","),
            self.planned_iv
        );
        if let Some(search) = &self.search {
            let _ = writeln!(
                out,
                "  search explored={} waves={} pruned={} memo_hits={} memo_misses={} boundary={}",
                search.explored(),
                search.waves,
                search.pruned,
                search.memo_hits,
                search.memo_misses,
                if search.boundary == SimTime::MAX {
                    "max".to_string()
                } else {
                    search.boundary.value().to_string()
                }
            );
            for step in &search.bounds {
                let _ = writeln!(
                    out,
                    "  bound at={} incumbent_iv={} boundary={}",
                    step.at.value(),
                    step.incumbent_iv,
                    if step.boundary == SimTime::MAX {
                        "max".to_string()
                    } else {
                        step.boundary.value().to_string()
                    }
                );
            }
            for c in &search.candidates {
                let locals: Vec<String> = c.local.iter().map(|t| t.index().to_string()).collect();
                let _ = writeln!(
                    out,
                    "  candidate release={} local=[{}] iv={} finish={}",
                    c.release.value(),
                    locals.join(","),
                    c.iv,
                    c.finish.value()
                );
            }
        }
        out
    }
}

/// A bounded FIFO log of the most recent [`PlanAudit`] per dispatch.
///
/// Lookup returns the *latest* audit for a query (a re-planned query's
/// final decision supersedes its first).
#[derive(Debug, Default)]
pub struct AuditLog {
    entries: VecDeque<PlanAudit>,
    capacity: usize,
}

impl AuditLog {
    /// Creates a log keeping at most `capacity` audits (0 disables
    /// collection entirely).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        AuditLog {
            entries: VecDeque::new(),
            capacity,
        }
    }

    /// `true` if the log keeps nothing.
    #[must_use]
    pub fn is_disabled(&self) -> bool {
        self.capacity == 0
    }

    /// Stores an audit, evicting the oldest beyond capacity.
    pub fn push(&mut self, audit: PlanAudit) {
        if self.capacity == 0 {
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(audit);
    }

    /// The most recent audit for `query`, if still retained.
    #[must_use]
    pub fn get(&self, query: QueryId) -> Option<&PlanAudit> {
        self.entries.iter().rev().find(|a| a.query == query)
    }

    /// All retained audits, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &PlanAudit> {
        self.entries.iter()
    }

    /// Retained audits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn audit(query: u64, source: PlanSource) -> PlanAudit {
        PlanAudit {
            query: QueryId::new(query),
            decided_at: SimTime::new(5.0),
            source,
            search: Some(SearchAudit {
                candidates: vec![SearchCandidate {
                    release: SimTime::new(5.0),
                    local: vec![TableId::new(2)],
                    iv: 0.75,
                    finish: SimTime::new(7.0),
                }],
                bounds: vec![BoundStep {
                    at: SimTime::new(5.0),
                    incumbent_iv: 0.75,
                    boundary: SimTime::MAX,
                }],
                memo_hits: 0,
                memo_misses: 1,
                pruned: 0,
                waves: 0,
                boundary: SimTime::MAX,
            }),
            chosen_release: SimTime::new(5.0),
            chosen_local: vec![TableId::new(2)],
            planned_iv: 0.75,
        }
    }

    #[test]
    fn render_names_the_decision() {
        let text = audit(9, PlanSource::OutageReplan).render();
        assert!(text.contains("query=9"));
        assert!(text.contains("source=outage_replan"));
        assert!(text.contains("local=[2]"));
        assert!(text.contains("boundary=max"));
        assert!(text.contains("candidate release=5"));
    }

    #[test]
    fn log_keeps_latest_per_query_and_bounds_memory() {
        let mut log = AuditLog::new(2);
        log.push(audit(1, PlanSource::CacheMiss));
        log.push(audit(1, PlanSource::OutageReplan));
        assert_eq!(
            log.get(QueryId::new(1)).unwrap().source,
            PlanSource::OutageReplan,
            "latest audit wins"
        );
        log.push(audit(2, PlanSource::CacheHit));
        assert_eq!(log.len(), 2, "capacity evicts the oldest");
        assert!(log.get(QueryId::new(2)).is_some());
        assert_eq!(log.iter().count(), 2);
        assert!(!log.is_empty());
    }

    #[test]
    fn zero_capacity_disables_collection() {
        let mut log = AuditLog::new(0);
        assert!(log.is_disabled());
        log.push(audit(1, PlanSource::FreshSearch));
        assert!(log.is_empty());
        assert!(log.get(QueryId::new(1)).is_none());
    }
}
