//! Fixed-boundary histograms with exact merge semantics.
//!
//! [`FixedHistogram`] differs from the `simkernel` histogram in one
//! load-bearing way: bin placement is a **binary search over
//! precomputed edges**, not a floating-point division. `(x - low) /
//! width as usize` can misplace a sample lying exactly on a bin
//! boundary (the same ULP class of bug as the `Periodic::
//! last_completion_at` regression fixed in the fault-injection PR);
//! searching the edge array makes boundary behaviour exact *by
//! construction*: a sample equal to an interior edge always lands in
//! the bin whose inclusive lower edge it is.
//!
//! Merging adds per-bin integer counts of identically-bounded
//! histograms, so `merge(a, b)` is *exactly* the histogram of the
//! union of the recorded samples — counts, bucket contents and
//! nearest-rank quantiles all coincide with a single-pass histogram.
//! The property suite in `tests/hist_props.rs` checks this over ~200
//! seeded cases.

use std::fmt::Write as _;

/// A histogram over `[low, high)` with `n` equal-width bins, exact
/// boundary placement and exact merge.
///
/// Out-of-range samples are tallied in underflow/overflow counters, so
/// counts are conserved no matter what is recorded.
///
/// # Examples
///
/// ```
/// use ivdss_obs::FixedHistogram;
///
/// let mut h = FixedHistogram::new(0.0, 10.0, 5);
/// h.record(0.0); // inclusive lower edge of bin 0
/// h.record(2.0); // exactly on the bin 0/1 boundary → bin 1
/// h.record(10.0); // at the exclusive upper bound → overflow
/// assert_eq!(h.bins(), &[1, 1, 0, 0, 0]);
/// assert_eq!(h.overflow(), 1);
/// assert_eq!(h.count(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FixedHistogram {
    /// `bins.len() + 1` ascending edges; bin `i` covers
    /// `[edges[i], edges[i+1])`.
    edges: Vec<f64>,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
    sum: f64,
}

impl FixedHistogram {
    /// Creates a histogram over `[low, high)` with `bins` equal-width
    /// bins. The last edge is pinned to exactly `high`, so the
    /// exclusive upper bound is representable-exact.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`, if the bounds are not finite, or if
    /// `low >= high`.
    #[must_use]
    pub fn new(low: f64, high: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(
            low.is_finite() && high.is_finite() && low < high,
            "histogram bounds must be finite with low < high"
        );
        let n = bins as f64;
        let mut edges: Vec<f64> = (0..bins)
            .map(|i| low + (high - low) * (i as f64) / n)
            .collect();
        edges.push(high);
        debug_assert!(edges.windows(2).all(|w| w[0] < w[1]), "degenerate bins");
        FixedHistogram {
            edges,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
            sum: 0.0,
        }
    }

    /// Records one sample. Values below `low` count as underflow,
    /// values at or above `high` as overflow; interior edges belong to
    /// the bin they open (inclusive lower edge).
    pub fn record(&mut self, x: f64) {
        if x < self.edges[0] {
            self.underflow += 1;
        } else if x >= self.edges[self.bins.len()] {
            self.overflow += 1;
        } else {
            // First edge strictly greater than x closes x's bin. For
            // x == edges[i] every edge up to i satisfies `<= x`, so the
            // partition point is i + 1 and x lands in bin i — exact at
            // every representable boundary.
            let idx = self.edges.partition_point(|&e| e <= x);
            self.bins[idx - 1] += 1;
        }
        self.count += 1;
        self.sum += x;
    }

    /// Per-bin counts.
    #[must_use]
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// The bin edges: `bins().len() + 1` ascending values.
    #[must_use]
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// Samples below the first edge.
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the last edge.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples recorded, including out-of-range ones.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of every recorded sample (including out-of-range ones).
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// `true` if identically bounded (bitwise-equal edges), i.e.
    /// mergeable.
    #[must_use]
    pub fn same_shape(&self, other: &FixedHistogram) -> bool {
        self.edges.len() == other.edges.len()
            && self
                .edges
                .iter()
                .zip(&other.edges)
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }

    /// Adds `other`'s tallies into `self`. Exact: the result equals a
    /// single histogram that recorded both sample streams (in either
    /// interleaving — integer bin counts commute; the floating `sum`
    /// is added as one term per histogram, so merged sums equal
    /// `sum_a + sum_b` exactly as written).
    ///
    /// # Panics
    ///
    /// Panics if the histograms are not identically bounded.
    pub fn merge(&mut self, other: &FixedHistogram) {
        assert!(
            self.same_shape(other),
            "cannot merge histograms with different bounds"
        );
        for (mine, theirs) in self.bins.iter_mut().zip(&other.bins) {
            *mine += theirs;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
    }

    /// The nearest-rank `q`-quantile resolved to bucket bounds: the
    /// upper edge of the bucket containing the `⌈q·count⌉`-th smallest
    /// sample. Underflow resolves to the first edge, overflow to
    /// `+∞`. Returns `None` on an empty histogram or `q` outside
    /// `[0, 1]`.
    ///
    /// Because it is a pure function of the integer bucket counts,
    /// merged histograms report exactly the quantiles of a single-pass
    /// histogram over the union of the samples.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = self.underflow;
        if rank <= seen {
            return Some(self.edges[0]);
        }
        for (i, &c) in self.bins.iter().enumerate() {
            seen += c;
            if rank <= seen {
                return Some(self.edges[i + 1]);
            }
        }
        Some(f64::INFINITY)
    }

    /// Appends a Prometheus-style exposition of this histogram:
    /// cumulative `_bucket` lines with `le` upper bounds (underflow
    /// folded into the first bucket, overflow into `+Inf`), then
    /// `_sum` and `_count`.
    pub fn expose(&self, name: &str, out: &mut String) {
        let mut cumulative = self.underflow;
        for (i, &c) in self.bins.iter().enumerate() {
            cumulative += c;
            let _ = writeln!(
                out,
                "{name}_bucket{{le=\"{}\"}} {cumulative}",
                self.edges[i + 1]
            );
        }
        cumulative += self.overflow;
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
        let _ = writeln!(out, "{name}_sum {}", self.sum);
        let _ = writeln!(out, "{name}_count {cumulative}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_are_exact_at_every_edge() {
        let mut h = FixedHistogram::new(0.0, 1.0, 20);
        let edges = h.edges().to_vec();
        for (i, &e) in edges.iter().enumerate() {
            h.record(e);
            if i < 20 {
                assert_eq!(h.bins()[i], 1, "edge {e} must open bin {i}");
            } else {
                assert_eq!(h.overflow(), 1, "the last edge is exclusive");
            }
        }
        assert_eq!(h.count(), 21);
        assert_eq!(h.underflow(), 0);
    }

    #[test]
    fn merge_is_exact() {
        let mut a = FixedHistogram::new(0.0, 10.0, 4);
        let mut b = FixedHistogram::new(0.0, 10.0, 4);
        let mut all = FixedHistogram::new(0.0, 10.0, 4);
        for (h, xs) in [(&mut a, [-1.0, 2.5, 5.0]), (&mut b, [5.0, 9.9, 12.0])] {
            for x in xs {
                h.record(x);
                all.record(x);
            }
        }
        a.merge(&b);
        assert_eq!(a, all);
        for q in [0.0, 0.25, 0.5, 0.9, 1.0] {
            assert_eq!(a.quantile(q), all.quantile(q));
        }
    }

    #[test]
    fn quantiles_resolve_to_bucket_bounds() {
        let mut h = FixedHistogram::new(0.0, 4.0, 4);
        for x in [0.5, 1.5, 2.5, 3.5] {
            h.record(x);
        }
        assert_eq!(h.quantile(0.25), Some(1.0));
        assert_eq!(h.quantile(1.0), Some(4.0));
        h.record(99.0);
        assert_eq!(h.quantile(1.0), Some(f64::INFINITY));
        assert_eq!(FixedHistogram::new(0.0, 1.0, 1).quantile(0.5), None);
    }

    #[test]
    fn exposition_is_cumulative() {
        let mut h = FixedHistogram::new(0.0, 2.0, 2);
        h.record(-1.0);
        h.record(0.5);
        h.record(3.0);
        let mut out = String::new();
        h.expose("obs_test", &mut out);
        assert!(out.contains("obs_test_bucket{le=\"1\"} 2"));
        assert!(out.contains("obs_test_bucket{le=\"2\"} 2"));
        assert!(out.contains("obs_test_bucket{le=\"+Inf\"} 3"));
        assert!(out.contains("obs_test_count 3"));
        assert!(out.contains("obs_test_sum 2.5"));
    }

    #[test]
    #[should_panic(expected = "different bounds")]
    fn mismatched_merge_rejected() {
        let mut a = FixedHistogram::new(0.0, 1.0, 4);
        a.merge(&FixedHistogram::new(0.0, 2.0, 4));
    }
}
