//! The event sink ([`Trace`]) and the cheap emission handle
//! ([`Tracer`]) instrumented code holds.
//!
//! A [`Trace`] is an append-only, in-emission-order event log behind a
//! mutex (instrumented call sites take `&self`, and the engine shares
//! one trace across crates). Determinism does not come from the lock —
//! it comes from the discipline that events are only emitted from
//! sequential code paths, so the emission order is a pure function of
//! the run's inputs. The golden-trace suite enforces the consequence:
//! identical seeded runs render byte-identical traces.
//!
//! [`Tracer`] is the handle threaded through constructors: either
//! disabled (the default — one branch per would-be event, the closure
//! building the event never runs) or recording into a shared
//! `Arc<Trace>`.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

use ivdss_catalog::ids::ShardId;
use ivdss_simkernel::time::SimTime;

use crate::event::{EventKind, TraceEvent};
use crate::hist::FixedHistogram;

/// Bucket layout of the trace-derived latency histograms: 24 ten-unit
/// buckets over `[0, 240)`, matching the serve metrics registry.
pub const TRACE_LATENCY_HIGH: f64 = 240.0;
/// Bucket count of the trace-derived latency histograms.
pub const TRACE_LATENCY_BINS: usize = 24;
/// Upper bound of the trace-derived IV histograms (unit business
/// value; larger values overflow explicitly).
pub const TRACE_IV_HIGH: f64 = 1.0;
/// Bucket count of the trace-derived IV histograms.
pub const TRACE_IV_BINS: usize = 20;

/// An append-only, sim-time-stamped structured event log.
#[derive(Debug, Default)]
pub struct Trace {
    events: Mutex<Vec<TraceEvent>>,
}

impl Trace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends one event.
    pub fn emit(&self, event: TraceEvent) {
        self.lock().push(event);
    }

    /// Events emitted so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// `true` if nothing has been emitted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// A copy of the full event log, in emission order.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        self.lock().clone()
    }

    /// Per-kind event counts (deterministically ordered by kind name).
    #[must_use]
    pub fn counts(&self) -> BTreeMap<&'static str, u64> {
        let mut counts = BTreeMap::new();
        for event in self.lock().iter() {
            *counts.entry(event.kind.name()).or_insert(0) += 1;
        }
        counts
    }

    /// Renders the whole trace, one line per event in emission order.
    /// This is the byte-identical artifact the golden tests snapshot.
    #[must_use]
    pub fn render(&self) -> String {
        let events = self.lock();
        let mut out = String::with_capacity(events.len() * 64);
        for event in events.iter() {
            event.render_into(&mut out);
        }
        out
    }

    /// Builds the fixed-boundary latency/IV histograms from the
    /// `completed` events currently in the trace. Histograms from
    /// different traces (e.g. shards of a sweep) merge exactly via
    /// [`TraceHistograms::merge`].
    #[must_use]
    pub fn histograms(&self) -> TraceHistograms {
        let mut h = TraceHistograms::new();
        for event in self.lock().iter() {
            if let EventKind::Completed {
                cl,
                sl,
                delivered_iv,
                iv_lost,
                ..
            } = &event.kind
            {
                h.cl.record(cl.value());
                h.sl.record(sl.value());
                h.delivered_iv.record(*delivered_iv);
                h.iv_lost.record(*iv_lost);
            }
        }
        h
    }

    /// Prometheus-style text exposition of the trace: per-kind event
    /// counters followed by the derived latency/IV histograms. Designed
    /// to be appended to the serve metrics dump.
    #[must_use]
    pub fn exposition(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (kind, count) in self.counts() {
            let _ = writeln!(out, "obs_events_total{{kind=\"{kind}\"}} {count}");
        }
        self.histograms().expose(&mut out);
        out
    }

    fn lock(&self) -> MutexGuard<'_, Vec<TraceEvent>> {
        // Poisoning can only follow a panic while pushing/cloning,
        // which already aborts the run being observed.
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Trace-derived fixed-boundary histograms with exact merge.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceHistograms {
    /// Computational latency of completions.
    pub cl: FixedHistogram,
    /// Synchronization latency of completions.
    pub sl: FixedHistogram,
    /// Delivered IV of completions.
    pub delivered_iv: FixedHistogram,
    /// IV lost to degradation per completion.
    pub iv_lost: FixedHistogram,
}

impl Default for TraceHistograms {
    fn default() -> Self {
        TraceHistograms::new()
    }
}

impl TraceHistograms {
    /// Empty histograms with the standard trace bucket layout.
    #[must_use]
    pub fn new() -> Self {
        TraceHistograms {
            cl: FixedHistogram::new(0.0, TRACE_LATENCY_HIGH, TRACE_LATENCY_BINS),
            sl: FixedHistogram::new(0.0, TRACE_LATENCY_HIGH, TRACE_LATENCY_BINS),
            delivered_iv: FixedHistogram::new(0.0, TRACE_IV_HIGH, TRACE_IV_BINS),
            iv_lost: FixedHistogram::new(0.0, TRACE_IV_HIGH, TRACE_IV_BINS),
        }
    }

    /// Exactly merges another shard's histograms into this one.
    pub fn merge(&mut self, other: &TraceHistograms) {
        self.cl.merge(&other.cl);
        self.sl.merge(&other.sl);
        self.delivered_iv.merge(&other.delivered_iv);
        self.iv_lost.merge(&other.iv_lost);
    }

    /// Appends the Prometheus exposition of all four histograms.
    pub fn expose(&self, out: &mut String) {
        self.cl.expose("obs_cl", out);
        self.sl.expose("obs_sl", out);
        self.delivered_iv.expose("obs_delivered_iv", out);
        self.iv_lost.expose("obs_iv_lost", out);
    }
}

/// The emission handle instrumented code holds: disabled (free) or
/// recording into a shared [`Trace`], optionally stamping every emitted
/// event with the shard it came from.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    trace: Option<Arc<Trace>>,
    shard: Option<ShardId>,
}

impl Tracer {
    /// A tracer that drops everything without constructing it.
    #[must_use]
    pub fn disabled() -> Self {
        Tracer {
            trace: None,
            shard: None,
        }
    }

    /// A tracer recording into `trace`.
    #[must_use]
    pub fn recording(trace: Arc<Trace>) -> Self {
        Tracer {
            trace: Some(trace),
            shard: None,
        }
    }

    /// This tracer, re-scoped to stamp every emitted event with `shard`.
    /// A cluster hands each per-shard engine `tracer.for_shard(id)` over
    /// one shared trace: the interleaved log stays in emission order
    /// while every line says which engine produced it.
    #[must_use]
    pub fn for_shard(&self, shard: ShardId) -> Self {
        Tracer {
            trace: self.trace.clone(),
            shard: Some(shard),
        }
    }

    /// The shard this tracer stamps, if scoped via
    /// [`Tracer::for_shard`].
    #[must_use]
    pub fn shard(&self) -> Option<ShardId> {
        self.shard
    }

    /// `true` if events will actually be recorded. Instrumentation
    /// with non-trivial setup (e.g. collecting candidate lists) should
    /// guard on this.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// The shared trace, if recording.
    #[must_use]
    pub fn trace(&self) -> Option<&Arc<Trace>> {
        self.trace.as_ref()
    }

    /// Emits the event built by `build`, stamped `at` — or does
    /// nothing (without running `build`) when disabled.
    pub fn emit_with(&self, at: SimTime, build: impl FnOnce() -> EventKind) {
        if let Some(trace) = &self.trace {
            trace.emit(TraceEvent {
                at,
                shard: self.shard,
                kind: build(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivdss_costmodel::query::QueryId;
    use ivdss_simkernel::time::SimDuration;

    fn completed(iv: f64, iv_lost: f64) -> EventKind {
        EventKind::Completed {
            query: QueryId::new(1),
            waited: SimDuration::ZERO,
            release: SimTime::ZERO,
            service_start: SimTime::ZERO,
            finish: SimTime::new(2.0),
            cl: SimDuration::new(2.0),
            sl: SimDuration::new(30.0),
            planned_iv: iv,
            delivered_iv: iv,
            iv_lost,
            replanned: false,
        }
    }

    #[test]
    fn disabled_tracer_skips_the_closure() {
        let tracer = Tracer::disabled();
        assert!(!tracer.enabled());
        tracer.emit_with(SimTime::ZERO, || panic!("must not be built"));
    }

    #[test]
    fn recording_tracer_appends_in_order() {
        let trace = Arc::new(Trace::new());
        let tracer = Tracer::recording(Arc::clone(&trace));
        assert!(tracer.enabled());
        tracer.emit_with(SimTime::new(1.0), || EventKind::CacheInvalidated {
            evicted: 1,
        });
        tracer.emit_with(SimTime::new(2.0), || completed(0.5, 0.0));
        let events = trace.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].at, SimTime::new(1.0));
        assert_eq!(trace.counts()["completed"], 1);
        assert!(!trace.is_empty());
    }

    #[test]
    fn histograms_and_exposition_derive_from_completions() {
        let trace = Trace::new();
        trace.emit(TraceEvent::new(SimTime::new(2.0), completed(0.5, 0.25)));
        trace.emit(TraceEvent::new(SimTime::new(3.0), completed(0.9, 0.0)));
        let h = trace.histograms();
        assert_eq!(h.delivered_iv.count(), 2);
        assert_eq!(h.iv_lost.count(), 2);
        assert_eq!(h.cl.bins()[0], 2, "cl=2 lands in the first bucket");
        let text = trace.exposition();
        assert!(text.contains("obs_events_total{kind=\"completed\"} 2"));
        assert!(text.contains("obs_delivered_iv_count 2"));
        assert!(text.contains("obs_iv_lost_sum 0.25"));
    }

    #[test]
    fn shard_merge_equals_single_trace() {
        let a = Trace::new();
        let b = Trace::new();
        let whole = Trace::new();
        for (t, iv) in [(&a, 0.2), (&b, 0.8)] {
            let e = TraceEvent::new(SimTime::ZERO, completed(iv, 0.0));
            t.emit(e.clone());
            whole.emit(e);
        }
        let mut merged = a.histograms();
        merged.merge(&b.histograms());
        assert_eq!(merged, whole.histograms());
    }

    #[test]
    fn shard_scoped_tracer_stamps_events() {
        let trace = Arc::new(Trace::new());
        let root = Tracer::recording(Arc::clone(&trace));
        assert_eq!(root.shard(), None);
        let shard1 = root.for_shard(ShardId::new(1));
        assert_eq!(shard1.shard(), Some(ShardId::new(1)));
        root.emit_with(SimTime::ZERO, || EventKind::CacheInvalidated { evicted: 1 });
        shard1.emit_with(SimTime::new(1.0), || EventKind::CacheInvalidated {
            evicted: 2,
        });
        let events = trace.events();
        assert_eq!(events[0].shard, None);
        assert_eq!(events[1].shard, Some(ShardId::new(1)));
        assert!(trace
            .render()
            .contains("cache_invalidated shard=1 evicted=2"));
    }
}
