//! Deterministic structured observability for the IVDSS stack.
//!
//! The paper's whole argument is temporal — *when* a plan runs decides
//! the information value it delivers — yet aggregates alone cannot show
//! where, per query, latency accrued or why the scatter-and-gather
//! search picked its plan. This crate is the missing layer: a
//! structured-event trace keyed by **sim time** (never wall time), plus
//! exact-merge histograms and per-query plan-decision audits, all built
//! so that *identical seeded runs produce byte-identical traces*.
//!
//! Three properties carry everything:
//!
//! * **Deterministic** — events carry [`SimTime`] stamps and are emitted
//!   only from sequential code paths (the serving engine's pipeline and
//!   the sequential replay phase of the parallel search), so emission
//!   order is a pure function of the inputs. Rendering uses Rust's
//!   shortest-round-trip `f64` formatting, which is itself
//!   deterministic. Golden-trace tests diff runs byte for byte.
//! * **Cheap when off** — instrumented code holds a [`Tracer`] handle;
//!   a disabled tracer makes [`Tracer::emit_with`] skip the closure
//!   entirely, so hot paths pay one branch, not an allocation.
//! * **Exact** — [`FixedHistogram`] places samples by binary search over
//!   precomputed bin edges, so representable boundary values land
//!   deterministically (lower edge inclusive), and
//!   [`FixedHistogram::merge`] is exact: merged counts and quantiles
//!   equal a single-pass histogram over the union of the samples.
//!
//! The crate deliberately depends only on `simkernel`, `catalog` and
//! `costmodel`, so every higher layer — core search, replication,
//! faults, the serving engine, dsim experiments — can emit into one
//! shared [`Trace`]. Events therefore carry primitive identifiers
//! ([`TableId`], [`SiteId`], [`QueryId`]) rather than rich plan types.
//!
//! [`TableId`]: ivdss_catalog::ids::TableId
//! [`SiteId`]: ivdss_catalog::ids::SiteId
//! [`QueryId`]: ivdss_costmodel::query::QueryId
//! [`SimTime`]: ivdss_simkernel::time::SimTime
//! [`FixedHistogram`]: crate::hist::FixedHistogram
//! [`FixedHistogram::merge`]: crate::hist::FixedHistogram::merge
//!
//! # Examples
//!
//! ```
//! use ivdss_obs::event::EventKind;
//! use ivdss_obs::trace::{Trace, Tracer};
//! use ivdss_simkernel::time::SimTime;
//! use std::sync::Arc;
//!
//! let trace = Arc::new(Trace::new());
//! let tracer = Tracer::recording(Arc::clone(&trace));
//! tracer.emit_with(SimTime::new(3.0), || EventKind::CacheInvalidated { evicted: 2 });
//!
//! // A disabled tracer never runs the closure.
//! let off = Tracer::disabled();
//! off.emit_with(SimTime::ZERO, || unreachable!("never constructed"));
//!
//! assert_eq!(trace.len(), 1);
//! assert_eq!(trace.render(), "t=3 cache_invalidated evicted=2\n");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod event;
pub mod hist;
pub mod trace;

pub use audit::{AuditLog, BoundStep, PlanAudit, PlanSource, SearchAudit, SearchCandidate};
pub use event::{AdmissionVerdict, EventKind, MemoProbe, TraceEvent};
pub use hist::FixedHistogram;
pub use trace::{Trace, TraceHistograms, Tracer};
