//! Structured trace events.
//!
//! One [`TraceEvent`] is a sim-time stamp plus an [`EventKind`] payload.
//! Payload fields are deliberately primitive — ids, times, floats — so
//! every crate in the stack can emit them without depending on the rich
//! planning types, and so rendering stays trivially deterministic.
//!
//! # Rendering
//!
//! [`TraceEvent::render_into`] writes one line per event:
//!
//! ```text
//! t=<sim time> <kind> key=value key=value ...
//! ```
//!
//! Floats use Rust's shortest-round-trip `Display`, which is a pure
//! function of the bits, and [`SimTime::MAX`] (an unbounded search
//! boundary) renders as `max` — so two runs that compute identical
//! values render identical bytes.

use std::fmt::Write as _;

use ivdss_catalog::ids::{ShardId, SiteId, TableId};
use ivdss_costmodel::query::QueryId;
use ivdss_simkernel::time::{SimDuration, SimTime};

/// How a memoized search wave resolved against the [`PhaseMemo`]
/// frontier store (or `Off` when no memo was consulted — e.g. the
/// floored outage re-plan, where the memo would be unsound).
///
/// [`PhaseMemo`]: https://docs.rs/ivdss-core
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoProbe {
    /// No memo in play for this search.
    Off,
    /// The wave's phase had a recorded frontier; only it was evaluated.
    Hit,
    /// First visit to this phase; every subset was evaluated.
    Miss,
}

impl MemoProbe {
    fn label(self) -> &'static str {
        match self {
            MemoProbe::Off => "off",
            MemoProbe::Hit => "hit",
            MemoProbe::Miss => "miss",
        }
    }
}

/// The admission decision taken for one submitted query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionVerdict {
    /// Admitted into the queue with capacity to spare.
    Admitted,
    /// Admitted, but the queue was full: the lowest-marginal-IV entry
    /// (under §3.3 aging) was shed to make room.
    AdmittedAfterShedding,
    /// The arrival itself carried the lowest marginal IV and was shed.
    Rejected,
}

impl AdmissionVerdict {
    fn label(self) -> &'static str {
        match self {
            AdmissionVerdict::Admitted => "admitted",
            AdmissionVerdict::AdmittedAfterShedding => "admitted_shed",
            AdmissionVerdict::Rejected => "rejected",
        }
    }
}

/// The payload of one trace event. See each variant for the emission
/// site.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A query arrived at the serving engine.
    Submitted {
        /// The arriving query.
        query: QueryId,
        /// Its business value.
        business_value: f64,
    },
    /// Admission control decided the arriving query's fate.
    Admission {
        /// The arriving query.
        query: QueryId,
        /// The decision.
        verdict: AdmissionVerdict,
        /// The shed victim (the arrival itself for
        /// [`AdmissionVerdict::Rejected`]).
        shed: Option<QueryId>,
        /// Marginal IV (aged, per §3.3) the victim carried when shed.
        shed_marginal_iv: Option<f64>,
        /// Queue depth after the decision.
        depth: usize,
    },
    /// A replica synchronization completed and was delivered to online
    /// consumers; `completed_at` is the completion instant on the
    /// timeline, the event stamp is when the cursor observed it.
    SyncDelivered {
        /// The refreshed table.
        table: TableId,
        /// When the synchronization completed.
        completed_at: SimTime,
    },
    /// A fault revision (sync slip or drop) was applied to the engine's
    /// timeline belief.
    RevisionApplied {
        /// The revised table.
        table: TableId,
        /// The nominally scheduled completion.
        scheduled: SimTime,
        /// The corrected completion (`None` = dropped).
        new_time: Option<SimTime>,
        /// Plan-cache entries evicted by the revision.
        evicted: usize,
    },
    /// An injected site-outage window opened.
    OutageStarted {
        /// The site taken down.
        site: SiteId,
        /// When it recovers.
        until: SimTime,
    },
    /// Synchronization events evicted plan-cache entries.
    CacheInvalidated {
        /// Entries evicted.
        evicted: usize,
    },
    /// The dispatch path consulted the plan cache.
    CacheLookup {
        /// The query being planned.
        query: QueryId,
        /// `true` on a hit.
        hit: bool,
    },
    /// The chosen plan spanned a site inside an outage and was
    /// re-planned with the release floors visible (memo bypassed).
    Replanned {
        /// The re-planned query.
        query: QueryId,
        /// Sites under a release floor at re-plan time.
        floored_sites: usize,
    },
    /// A timeline revision triggered an incremental re-plan of a queued
    /// query: the surviving candidate scores of its previous search were
    /// repaired in place (only the revision's dirty window recomputed)
    /// instead of rescanning from scratch.
    PlanRepaired {
        /// The re-planned query.
        query: QueryId,
        /// Candidate scores reused from the replan cache.
        reused: u64,
        /// Candidate scores recomputed inside the dirty window.
        recomputed: u64,
    },
    /// Injected cost jitter applied at delivery.
    JitterApplied {
        /// The jittered query.
        query: QueryId,
        /// The multiplicative cost factor (≥ 1).
        factor: f64,
    },
    /// A query was dispatched and delivered: the full
    /// dispatch→completion span with its per-stage breakdown.
    Completed {
        /// The delivered query.
        query: QueryId,
        /// Time spent in the admission queue before dispatch.
        waited: SimDuration,
        /// The plan's release time.
        release: SimTime,
        /// When the local federation server actually started serving it
        /// (release plus calendar queuing).
        service_start: SimTime,
        /// When the result was delivered.
        finish: SimTime,
        /// Computational latency of the delivered evaluation.
        cl: SimDuration,
        /// Synchronization latency of the delivered evaluation.
        sl: SimDuration,
        /// IV the planner promised when the plan was chosen.
        planned_iv: f64,
        /// IV actually delivered against live calendars (and faults).
        delivered_iv: f64,
        /// Fault-free planning bound minus delivered IV, clamped at 0.
        iv_lost: f64,
        /// `true` if an outage forced a dispatch-time re-plan.
        replanned: bool,
    },
    /// A scatter-and-gather search began.
    SearchStarted {
        /// The query being planned.
        query: QueryId,
        /// Earliest admissible release (`max(submitted, not_before)`).
        release_floor: SimTime,
        /// Local-subset candidates per wave (2^replicated tables).
        subsets: usize,
        /// `true` when a [`PhaseMemo`] is consulted.
        ///
        /// [`PhaseMemo`]: https://docs.rs/ivdss-core
        memo: bool,
    },
    /// One search wave (the scatter at the release floor, or a gather
    /// wave at a synchronization point) was evaluated.
    SearchWave {
        /// The query being planned.
        query: QueryId,
        /// The wave's release time.
        wave: SimTime,
        /// Candidates actually evaluated at this wave.
        candidates: usize,
        /// How the wave resolved against the memo.
        memo: MemoProbe,
    },
    /// The incumbent improved: a new bound-trajectory step.
    SearchBound {
        /// The query being planned.
        query: QueryId,
        /// The release time of the improving candidate.
        at: SimTime,
        /// The new incumbent IV.
        incumbent_iv: f64,
        /// The tightened search boundary.
        boundary: SimTime,
    },
    /// The search finished.
    SearchFinished {
        /// The planned query.
        query: QueryId,
        /// Candidate plans evaluated.
        explored: usize,
        /// Gather waves visited.
        waves: usize,
        /// Candidate evaluations skipped thanks to memoized frontiers.
        pruned: usize,
        /// The final boundary.
        boundary: SimTime,
        /// The chosen plan's release time.
        release: SimTime,
        /// The chosen plan's IV.
        iv: f64,
    },
    /// A fault plan scheduled a synchronization slip (trace header
    /// emitted before replay; the stamp is the reveal time).
    FaultSlipPlanned {
        /// The table whose sync slips.
        table: TableId,
        /// The nominal completion.
        scheduled: SimTime,
        /// The late completion.
        new_time: SimTime,
    },
    /// A fault plan scheduled a synchronization drop.
    FaultDropPlanned {
        /// The table whose sync is dropped.
        table: TableId,
        /// The nominal completion that never lands.
        scheduled: SimTime,
    },
    /// A fault plan scheduled a site outage.
    FaultOutagePlanned {
        /// The site taken down.
        site: SiteId,
        /// Window end (exclusive).
        end: SimTime,
    },
    /// A generic named span (e.g. one experiment point in a sweep). The
    /// event stamp is the span's end.
    Span {
        /// Span name (static so rendering never allocates labels).
        name: &'static str,
        /// When the span began.
        start: SimTime,
    },
    /// The cluster front door routed a query to a shard.
    ShardRouted {
        /// The routed query.
        query: QueryId,
        /// The chosen shard.
        shard: ShardId,
        /// Replicated footprint tables the shard's replicas cover.
        covered: usize,
        /// Replicated footprint tables it does *not* cover — served via
        /// remote-base fallback (`> 0` marks a partial-coverage route).
        missing: usize,
    },
    /// An idle shard stole a queued query from a backlogged one.
    ShardStolen {
        /// The stolen query.
        query: QueryId,
        /// The backlogged victim shard.
        from: ShardId,
        /// The idle thief shard.
        to: ShardId,
    },
    /// An injected shard-outage window opened: the shard stops serving
    /// and its queue is failed over.
    ShardOutageStarted {
        /// The shard taken down.
        shard: ShardId,
        /// When it recovers.
        until: SimTime,
    },
    /// A down shard's queue was failed over to the surviving shards.
    ShardFailover {
        /// The shard whose queue was evacuated.
        shard: ShardId,
        /// Queries re-admitted elsewhere.
        rerouted: usize,
        /// Queries shed during re-admission (their IV is accounted in
        /// the receiving shard's shed metrics).
        shed: usize,
    },
    /// The adaptive sync scheduler opened an optimization run: the
    /// refresh budget it inherited from the fixed schedules and the
    /// fixed schedules' workload IV (the never-worse floor).
    SchedBudget {
        /// Replicated tables under optimization.
        tables: usize,
        /// Total refresh budget (sum of per-table refresh costs the
        /// fixed schedules spend over the horizon).
        budget: f64,
        /// Workload IV of the fixed schedules at that budget.
        fixed_iv: f64,
    },
    /// The greedy marginal-IV pass allocated one more refresh.
    SchedPick {
        /// The table receiving the refresh.
        table: TableId,
        /// The table's refresh count after the pick.
        refreshes: usize,
        /// Cost of the refresh charged against the budget.
        cost: f64,
        /// Marginal workload-IV gain the pick bought.
        gain: f64,
    },
    /// The adaptive scheduler committed its final schedule.
    SchedChosen {
        /// Which candidate won: `fixed`, `greedy` or `ga`.
        source: &'static str,
        /// Workload IV of the chosen schedule.
        iv: f64,
        /// Budget the chosen schedule actually spends.
        budget_used: f64,
    },
    /// A named traffic scenario began replaying (emitted once, at the
    /// sim origin, before any scenario traffic).
    ScenarioStarted {
        /// The scenario's catalog name (static: scenarios are a fixed
        /// registry, so rendering never allocates labels).
        name: &'static str,
        /// The scenario's root seed.
        seed: u64,
        /// The replay horizon — no arrivals at or beyond this time.
        horizon: SimTime,
    },
    /// A schema-growth scenario's newborn table entered the catalog:
    /// from this instant its timeline is live (first sync exactly at
    /// birth) and templates referencing it become eligible.
    TableBorn {
        /// The newborn table.
        table: TableId,
        /// Its birth instant (also the event stamp).
        born: SimTime,
        /// Its replica's sync period from birth onward.
        sync_period: SimDuration,
    },
    /// The storage-backed serving path is about to execute a real scan
    /// for one local table of the chosen plan; the estimates are the
    /// plan node's pre-execution predictions.
    ScanStarted {
        /// The query being served.
        query: QueryId,
        /// The locally scanned table.
        table: TableId,
        /// Estimated block (page) accesses.
        blocks_est: u64,
        /// Estimated records output.
        records_est: u64,
    },
    /// A storage-backed scan finished: the counts the `StatManager`
    /// collector actually observed and the deterministic measured
    /// latency the device profile charged.
    ScanDone {
        /// The query being served.
        query: QueryId,
        /// The scanned table.
        table: TableId,
        /// Blocks actually accessed.
        blocks: u64,
        /// Records actually accessed.
        records: u64,
        /// Measured scan latency, model time units.
        seconds: f64,
    },
    /// Measured-scan samples were regressed into calibrated local-scan
    /// coefficients (`seconds = overhead + secs_per_byte × bytes`).
    CoefficientsFit {
        /// Samples the fit consumed.
        samples: usize,
        /// Fitted per-scan overhead (intercept).
        overhead: f64,
        /// Fitted marginal cost per byte (slope).
        secs_per_byte: f64,
    },
    /// A completed scenario query was checked against its tenant's SLA
    /// deadline.
    SlaChecked {
        /// The completed query.
        query: QueryId,
        /// The owning tenant's index in the scenario's tenant mix.
        tenant: u32,
        /// The absolute deadline (submission + the tenant's SLA).
        deadline: SimTime,
        /// When the result was delivered.
        finish: SimTime,
        /// `true` when `finish <= deadline`.
        met: bool,
    },
}

impl EventKind {
    /// The event's kind label, as rendered and as counted by
    /// [`Trace::counts`](crate::trace::Trace::counts).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Submitted { .. } => "submitted",
            EventKind::Admission { .. } => "admission",
            EventKind::SyncDelivered { .. } => "sync_delivered",
            EventKind::RevisionApplied { .. } => "revision_applied",
            EventKind::OutageStarted { .. } => "outage_started",
            EventKind::CacheInvalidated { .. } => "cache_invalidated",
            EventKind::CacheLookup { .. } => "cache_lookup",
            EventKind::Replanned { .. } => "replanned",
            EventKind::PlanRepaired { .. } => "plan_repaired",
            EventKind::JitterApplied { .. } => "jitter",
            EventKind::Completed { .. } => "completed",
            EventKind::SearchStarted { .. } => "search_started",
            EventKind::SearchWave { .. } => "search_wave",
            EventKind::SearchBound { .. } => "search_bound",
            EventKind::SearchFinished { .. } => "search_finished",
            EventKind::FaultSlipPlanned { .. } => "fault_slip_planned",
            EventKind::FaultDropPlanned { .. } => "fault_drop_planned",
            EventKind::FaultOutagePlanned { .. } => "fault_outage_planned",
            EventKind::Span { .. } => "span",
            EventKind::ShardRouted { .. } => "shard_routed",
            EventKind::ShardStolen { .. } => "shard_stolen",
            EventKind::ShardOutageStarted { .. } => "shard_outage_started",
            EventKind::ShardFailover { .. } => "shard_failover",
            EventKind::SchedBudget { .. } => "sched_budget",
            EventKind::SchedPick { .. } => "sched_pick",
            EventKind::SchedChosen { .. } => "sched_chosen",
            EventKind::ScenarioStarted { .. } => "scenario_started",
            EventKind::TableBorn { .. } => "table_born",
            EventKind::ScanStarted { .. } => "scan_started",
            EventKind::ScanDone { .. } => "scan_done",
            EventKind::CoefficientsFit { .. } => "coefficients_fit",
            EventKind::SlaChecked { .. } => "sla_checked",
        }
    }
}

/// One sim-time-stamped trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// When the event was emitted, on the sim clock.
    pub at: SimTime,
    /// The emitting shard, when the event came from one engine of a
    /// sharded cluster (stamped by a shard-scoped
    /// [`Tracer`](crate::trace::Tracer)). `None` — the single-server
    /// case — renders byte-identically to the pre-cluster format.
    pub shard: Option<ShardId>,
    /// The payload.
    pub kind: EventKind,
}

impl TraceEvent {
    /// An untagged (single-server) event.
    #[must_use]
    pub fn new(at: SimTime, kind: EventKind) -> Self {
        TraceEvent {
            at,
            shard: None,
            kind,
        }
    }
}

/// Renders a time deterministically; [`SimTime::MAX`] (unbounded
/// boundary) renders as `max`.
fn fmt_time(t: SimTime) -> String {
    if t == SimTime::MAX {
        "max".to_string()
    } else {
        format!("{}", t.value())
    }
}

impl TraceEvent {
    /// Appends this event's line (terminated by `\n`) to `out`.
    pub fn render_into(&self, out: &mut String) {
        let _ = write!(out, "t={} {}", fmt_time(self.at), self.kind.name());
        if let Some(shard) = self.shard {
            let _ = write!(out, " shard={}", shard.raw());
        }
        match &self.kind {
            EventKind::Submitted {
                query,
                business_value,
            } => {
                let _ = write!(out, " query={} bv={business_value}", query.raw());
            }
            EventKind::Admission {
                query,
                verdict,
                shed,
                shed_marginal_iv,
                depth,
            } => {
                let _ = write!(out, " query={} verdict={}", query.raw(), verdict.label());
                if let Some(victim) = shed {
                    let _ = write!(out, " shed={}", victim.raw());
                }
                if let Some(iv) = shed_marginal_iv {
                    let _ = write!(out, " shed_marginal_iv={iv}");
                }
                let _ = write!(out, " depth={depth}");
            }
            EventKind::SyncDelivered {
                table,
                completed_at,
            } => {
                let _ = write!(
                    out,
                    " table={} completed_at={}",
                    table.index(),
                    fmt_time(*completed_at)
                );
            }
            EventKind::RevisionApplied {
                table,
                scheduled,
                new_time,
                evicted,
            } => {
                let _ = write!(
                    out,
                    " table={} scheduled={}",
                    table.index(),
                    fmt_time(*scheduled)
                );
                match new_time {
                    Some(t) => {
                        let _ = write!(out, " kind=slip new_time={}", fmt_time(*t));
                    }
                    None => {
                        let _ = write!(out, " kind=drop");
                    }
                }
                let _ = write!(out, " evicted={evicted}");
            }
            EventKind::OutageStarted { site, until } => {
                let _ = write!(out, " site={} until={}", site.index(), fmt_time(*until));
            }
            EventKind::CacheInvalidated { evicted } => {
                let _ = write!(out, " evicted={evicted}");
            }
            EventKind::CacheLookup { query, hit } => {
                let _ = write!(
                    out,
                    " query={} outcome={}",
                    query.raw(),
                    if *hit { "hit" } else { "miss" }
                );
            }
            EventKind::Replanned {
                query,
                floored_sites,
            } => {
                let _ = write!(out, " query={} floored_sites={floored_sites}", query.raw());
            }
            EventKind::PlanRepaired {
                query,
                reused,
                recomputed,
            } => {
                let _ = write!(
                    out,
                    " query={} reused={reused} recomputed={recomputed}",
                    query.raw()
                );
            }
            EventKind::JitterApplied { query, factor } => {
                let _ = write!(out, " query={} factor={factor}", query.raw());
            }
            EventKind::Completed {
                query,
                waited,
                release,
                service_start,
                finish,
                cl,
                sl,
                planned_iv,
                delivered_iv,
                iv_lost,
                replanned,
            } => {
                let _ = write!(
                    out,
                    " query={} waited={} release={} service_start={} finish={} cl={} sl={} \
                     planned_iv={planned_iv} delivered_iv={delivered_iv} iv_lost={iv_lost} \
                     replanned={replanned}",
                    query.raw(),
                    waited.value(),
                    fmt_time(*release),
                    fmt_time(*service_start),
                    fmt_time(*finish),
                    cl.value(),
                    sl.value(),
                );
            }
            EventKind::SearchStarted {
                query,
                release_floor,
                subsets,
                memo,
            } => {
                let _ = write!(
                    out,
                    " query={} release_floor={} subsets={subsets} memo={}",
                    query.raw(),
                    fmt_time(*release_floor),
                    if *memo { "on" } else { "off" }
                );
            }
            EventKind::SearchWave {
                query,
                wave,
                candidates,
                memo,
            } => {
                let _ = write!(
                    out,
                    " query={} wave={} candidates={candidates} memo={}",
                    query.raw(),
                    fmt_time(*wave),
                    memo.label()
                );
            }
            EventKind::SearchBound {
                query,
                at,
                incumbent_iv,
                boundary,
            } => {
                let _ = write!(
                    out,
                    " query={} at={} incumbent_iv={incumbent_iv} boundary={}",
                    query.raw(),
                    fmt_time(*at),
                    fmt_time(*boundary)
                );
            }
            EventKind::SearchFinished {
                query,
                explored,
                waves,
                pruned,
                boundary,
                release,
                iv,
            } => {
                let _ = write!(
                    out,
                    " query={} explored={explored} waves={waves} pruned={pruned} boundary={} \
                     release={} iv={iv}",
                    query.raw(),
                    fmt_time(*boundary),
                    fmt_time(*release),
                );
            }
            EventKind::FaultSlipPlanned {
                table,
                scheduled,
                new_time,
            } => {
                let _ = write!(
                    out,
                    " table={} scheduled={} new_time={}",
                    table.index(),
                    fmt_time(*scheduled),
                    fmt_time(*new_time)
                );
            }
            EventKind::FaultDropPlanned { table, scheduled } => {
                let _ = write!(
                    out,
                    " table={} scheduled={}",
                    table.index(),
                    fmt_time(*scheduled)
                );
            }
            EventKind::FaultOutagePlanned { site, end } => {
                let _ = write!(out, " site={} end={}", site.index(), fmt_time(*end));
            }
            EventKind::Span { name, start } => {
                let _ = write!(out, " name={name} start={}", fmt_time(*start));
            }
            EventKind::ShardRouted {
                query,
                shard,
                covered,
                missing,
            } => {
                let _ = write!(
                    out,
                    " query={} to={} covered={covered} missing={missing} coverage={}",
                    query.raw(),
                    shard.raw(),
                    if *missing == 0 { "full" } else { "partial" }
                );
            }
            EventKind::ShardStolen { query, from, to } => {
                let _ = write!(
                    out,
                    " query={} from={} to={}",
                    query.raw(),
                    from.raw(),
                    to.raw()
                );
            }
            EventKind::ShardOutageStarted { shard, until } => {
                let _ = write!(out, " shard={} until={}", shard.raw(), fmt_time(*until));
            }
            EventKind::ShardFailover {
                shard,
                rerouted,
                shed,
            } => {
                let _ = write!(
                    out,
                    " shard={} rerouted={rerouted} shed={shed}",
                    shard.raw()
                );
            }
            EventKind::SchedBudget {
                tables,
                budget,
                fixed_iv,
            } => {
                let _ = write!(out, " tables={tables} budget={budget} fixed_iv={fixed_iv}");
            }
            EventKind::SchedPick {
                table,
                refreshes,
                cost,
                gain,
            } => {
                let _ = write!(
                    out,
                    " table={} refreshes={refreshes} cost={cost} gain={gain}",
                    table.index()
                );
            }
            EventKind::SchedChosen {
                source,
                iv,
                budget_used,
            } => {
                let _ = write!(out, " source={source} iv={iv} budget_used={budget_used}");
            }
            EventKind::ScenarioStarted {
                name,
                seed,
                horizon,
            } => {
                let _ = write!(
                    out,
                    " name={name} seed={seed} horizon={}",
                    fmt_time(*horizon)
                );
            }
            EventKind::TableBorn {
                table,
                born,
                sync_period,
            } => {
                let _ = write!(
                    out,
                    " table={} born={} sync_period={}",
                    table.index(),
                    fmt_time(*born),
                    sync_period.value()
                );
            }
            EventKind::ScanStarted {
                query,
                table,
                blocks_est,
                records_est,
            } => {
                let _ = write!(
                    out,
                    " query={} table={} blocks_est={blocks_est} records_est={records_est}",
                    query.raw(),
                    table.index()
                );
            }
            EventKind::ScanDone {
                query,
                table,
                blocks,
                records,
                seconds,
            } => {
                let _ = write!(
                    out,
                    " query={} table={} blocks={blocks} records={records} seconds={seconds}",
                    query.raw(),
                    table.index()
                );
            }
            EventKind::CoefficientsFit {
                samples,
                overhead,
                secs_per_byte,
            } => {
                let _ = write!(
                    out,
                    " samples={samples} overhead={overhead} secs_per_byte={secs_per_byte}"
                );
            }
            EventKind::SlaChecked {
                query,
                tenant,
                deadline,
                finish,
                met,
            } => {
                let _ = write!(
                    out,
                    " query={} tenant={tenant} deadline={} finish={} met={met}",
                    query.raw(),
                    fmt_time(*deadline),
                    fmt_time(*finish)
                );
            }
        }
        out.push('\n');
    }

    /// Renders this event as its own line (convenience over
    /// [`TraceEvent::render_into`]).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_are_deterministic_and_named() {
        let e = TraceEvent::new(
            SimTime::new(2.5),
            EventKind::CacheLookup {
                query: QueryId::new(7),
                hit: true,
            },
        );
        assert_eq!(e.render(), "t=2.5 cache_lookup query=7 outcome=hit\n");
        assert_eq!(e.kind.name(), "cache_lookup");
        assert_eq!(e.render(), e.clone().render());
    }

    #[test]
    fn unbounded_boundary_renders_as_max() {
        let e = TraceEvent::new(
            SimTime::ZERO,
            EventKind::SearchBound {
                query: QueryId::new(0),
                at: SimTime::ZERO,
                incumbent_iv: 0.5,
                boundary: SimTime::MAX,
            },
        );
        assert!(e.render().ends_with("boundary=max\n"), "{}", e.render());
    }

    #[test]
    fn drop_and_slip_revisions_render_distinctly() {
        let slip = TraceEvent::new(
            SimTime::new(4.0),
            EventKind::RevisionApplied {
                table: TableId::new(1),
                scheduled: SimTime::new(4.0),
                new_time: Some(SimTime::new(6.0)),
                evicted: 3,
            },
        );
        let drop = TraceEvent::new(
            SimTime::new(4.0),
            EventKind::RevisionApplied {
                table: TableId::new(1),
                scheduled: SimTime::new(4.0),
                new_time: None,
                evicted: 0,
            },
        );
        assert!(slip.render().contains("kind=slip new_time=6"));
        assert!(drop.render().contains("kind=drop"));
    }

    #[test]
    fn plan_repaired_renders() {
        let event = TraceEvent::new(
            SimTime::new(3.0),
            EventKind::PlanRepaired {
                query: QueryId::new(5),
                reused: 12,
                recomputed: 4,
            },
        );
        assert_eq!(
            event.kind.name(),
            "plan_repaired",
            "the name feeds the per-kind counters"
        );
        assert_eq!(
            event.render(),
            "t=3 plan_repaired query=5 reused=12 recomputed=4\n"
        );
    }

    #[test]
    fn shard_tag_renders_after_the_kind() {
        let tagged = TraceEvent {
            at: SimTime::new(2.5),
            shard: Some(ShardId::new(1)),
            kind: EventKind::CacheLookup {
                query: QueryId::new(7),
                hit: false,
            },
        };
        assert_eq!(
            tagged.render(),
            "t=2.5 cache_lookup shard=1 query=7 outcome=miss\n"
        );
        // Untagged events keep the pre-cluster byte format.
        let untagged = TraceEvent::new(tagged.at, tagged.kind.clone());
        assert_eq!(
            untagged.render(),
            "t=2.5 cache_lookup query=7 outcome=miss\n"
        );
    }

    #[test]
    fn scheduler_events_render() {
        let budget = TraceEvent::new(
            SimTime::ZERO,
            EventKind::SchedBudget {
                tables: 3,
                budget: 12.0,
                fixed_iv: 1.75,
            },
        );
        assert_eq!(
            budget.render(),
            "t=0 sched_budget tables=3 budget=12 fixed_iv=1.75\n"
        );
        let pick = TraceEvent::new(
            SimTime::ZERO,
            EventKind::SchedPick {
                table: TableId::new(2),
                refreshes: 4,
                cost: 1.0,
                gain: 0.25,
            },
        );
        assert_eq!(
            pick.render(),
            "t=0 sched_pick table=2 refreshes=4 cost=1 gain=0.25\n"
        );
        let chosen = TraceEvent::new(
            SimTime::ZERO,
            EventKind::SchedChosen {
                source: "greedy",
                iv: 2.5,
                budget_used: 11.0,
            },
        );
        assert_eq!(
            chosen.render(),
            "t=0 sched_chosen source=greedy iv=2.5 budget_used=11\n"
        );
    }

    #[test]
    fn scenario_events_render() {
        let started = TraceEvent::new(
            SimTime::ZERO,
            EventKind::ScenarioStarted {
                name: "flash-crowd",
                seed: 0xC0FFEE,
                horizon: SimTime::new(120.0),
            },
        );
        assert_eq!(
            started.render(),
            "t=0 scenario_started name=flash-crowd seed=12648430 horizon=120\n"
        );
        let born = TraceEvent::new(
            SimTime::new(30.0),
            EventKind::TableBorn {
                table: TableId::new(24),
                born: SimTime::new(30.0),
                sync_period: SimDuration::new(6.0),
            },
        );
        assert_eq!(
            born.render(),
            "t=30 table_born table=24 born=30 sync_period=6\n"
        );
        let sla = TraceEvent::new(
            SimTime::new(18.5),
            EventKind::SlaChecked {
                query: QueryId::new(9),
                tenant: 1,
                deadline: SimTime::new(17.0),
                finish: SimTime::new(18.5),
                met: false,
            },
        );
        assert_eq!(
            sla.render(),
            "t=18.5 sla_checked query=9 tenant=1 deadline=17 finish=18.5 met=false\n"
        );
    }

    #[test]
    fn storage_events_render() {
        let started = TraceEvent::new(
            SimTime::new(1.5),
            EventKind::ScanStarted {
                query: QueryId::new(4),
                table: TableId::new(2),
                blocks_est: 17,
                records_est: 100,
            },
        );
        assert_eq!(
            started.render(),
            "t=1.5 scan_started query=4 table=2 blocks_est=17 records_est=100\n"
        );
        let done = TraceEvent::new(
            SimTime::new(1.5),
            EventKind::ScanDone {
                query: QueryId::new(4),
                table: TableId::new(2),
                blocks: 17,
                records: 100,
                seconds: 0.0039,
            },
        );
        assert_eq!(
            done.render(),
            "t=1.5 scan_done query=4 table=2 blocks=17 records=100 seconds=0.0039\n"
        );
        let fitted = TraceEvent::new(
            SimTime::new(9.0),
            EventKind::CoefficientsFit {
                samples: 6,
                overhead: 0.0005,
                secs_per_byte: 2.5e-9,
            },
        );
        assert_eq!(
            fitted.render(),
            "t=9 coefficients_fit samples=6 overhead=0.0005 secs_per_byte=0.0000000025\n"
        );
    }

    #[test]
    fn cluster_events_render_routing_and_stealing() {
        let routed = TraceEvent::new(
            SimTime::new(1.0),
            EventKind::ShardRouted {
                query: QueryId::new(3),
                shard: ShardId::new(2),
                covered: 2,
                missing: 1,
            },
        );
        assert_eq!(
            routed.render(),
            "t=1 shard_routed query=3 to=2 covered=2 missing=1 coverage=partial\n"
        );
        let stolen = TraceEvent::new(
            SimTime::new(2.0),
            EventKind::ShardStolen {
                query: QueryId::new(3),
                from: ShardId::new(0),
                to: ShardId::new(2),
            },
        );
        assert_eq!(stolen.render(), "t=2 shard_stolen query=3 from=0 to=2\n");
        let outage = TraceEvent::new(
            SimTime::new(3.0),
            EventKind::ShardOutageStarted {
                shard: ShardId::new(1),
                until: SimTime::new(9.0),
            },
        );
        assert_eq!(
            outage.render(),
            "t=3 shard_outage_started shard=1 until=9\n"
        );
        let failover = TraceEvent::new(
            SimTime::new(3.0),
            EventKind::ShardFailover {
                shard: ShardId::new(1),
                rerouted: 4,
                shed: 1,
            },
        );
        assert_eq!(
            failover.render(),
            "t=3 shard_failover shard=1 rerouted=4 shed=1\n"
        );
    }
}
