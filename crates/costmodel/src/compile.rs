//! Query compilation: pre-computing plan costs for every replica/base
//! combination.
//!
//! The paper (§3.1): "although we need to compare 8 plans, we only need to
//! compile the query four times for the configurations {R1,R2}, {R1,T2},
//! {T1,R2}, and {T1,T2} to generate their computational latencies. And this
//! step needs to be done only once and can be done in advance."
//!
//! [`CompiledQuery`] enumerates all *local subsets* — subsets of the
//! query's footprint whose tables have replicas — and caches one
//! [`PlanCost`] per subset. The plan search then combines these cached
//! costs with live synchronization timestamps, which is why it "can be
//! done almost instantly".

use std::collections::BTreeSet;

use ivdss_catalog::catalog::Catalog;
use ivdss_catalog::ids::TableId;

use crate::model::{CostModel, PlanCost};
use crate::query::QuerySpec;

/// Upper bound on replicated tables per query footprint (the compilation
/// table has `2^r` entries; the paper caps queries at 10 tables).
pub const MAX_REPLICATED_PER_QUERY: usize = 20;

/// Pre-computed plan costs for one query: one entry per subset of its
/// replicated tables that could be read locally.
///
/// # Examples
///
/// ```
/// use ivdss_catalog::ids::TableId;
/// use ivdss_catalog::replica::{ReplicaSpec, ReplicationPlan};
/// use ivdss_catalog::synthetic::{synthetic_catalog, SyntheticConfig};
/// use ivdss_costmodel::compile::CompiledQuery;
/// use ivdss_costmodel::model::StylizedCostModel;
/// use ivdss_costmodel::query::{QueryId, QuerySpec};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let catalog = synthetic_catalog(&SyntheticConfig {
///     tables: 4, sites: 2, replicated_tables: 2, ..SyntheticConfig::default()
/// })?;
/// let q = QuerySpec::new(QueryId::new(0), catalog.table_ids());
/// let compiled = CompiledQuery::compile(&catalog, &StylizedCostModel::paper_fig4(), q);
/// // 2 replicated tables in the footprint → 2² = 4 combinations.
/// assert_eq!(compiled.combination_count(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledQuery {
    query: QuerySpec,
    /// Footprint tables that have local replicas, sorted.
    replicated: Vec<TableId>,
    /// `costs[mask]` = cost when exactly the tables of `mask` (bit `i` ⇒
    /// `replicated[i]`) are read locally and everything else remotely.
    costs: Vec<PlanCost>,
}

impl CompiledQuery {
    /// Compiles `query` against `catalog` under `model`, evaluating the
    /// cost of every local/remote combination.
    ///
    /// # Panics
    ///
    /// Panics if the query's footprint contains more than
    /// [`MAX_REPLICATED_PER_QUERY`] replicated tables (the combination
    /// table would be excessive).
    #[must_use]
    pub fn compile<M: CostModel + ?Sized>(catalog: &Catalog, model: &M, query: QuerySpec) -> Self {
        let replicated: Vec<TableId> = query
            .tables()
            .iter()
            .copied()
            .filter(|&t| catalog.is_replicated(t))
            .collect();
        assert!(
            replicated.len() <= MAX_REPLICATED_PER_QUERY,
            "query references {} replicated tables; max {MAX_REPLICATED_PER_QUERY}",
            replicated.len()
        );
        let combos = 1usize << replicated.len();
        let mut costs = Vec::with_capacity(combos);
        for mask in 0..combos {
            let local: BTreeSet<TableId> = replicated
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &t)| t)
                .collect();
            let remote: BTreeSet<TableId> = query
                .tables()
                .iter()
                .copied()
                .filter(|t| !local.contains(t))
                .collect();
            costs.push(model.plan_cost(catalog, &query, &remote));
        }
        CompiledQuery {
            query,
            replicated,
            costs,
        }
    }

    /// The compiled query.
    #[must_use]
    pub fn query(&self) -> &QuerySpec {
        &self.query
    }

    /// Footprint tables that have local replicas.
    #[must_use]
    pub fn replicated_tables(&self) -> &[TableId] {
        &self.replicated
    }

    /// Number of cached local/remote combinations (`2^r`).
    #[must_use]
    pub fn combination_count(&self) -> usize {
        self.costs.len()
    }

    /// Cost when exactly `local` is read from replicas. `local` must be a
    /// subset of the replicated footprint tables.
    ///
    /// Returns `None` if `local` contains a table without a replica or
    /// outside the footprint.
    #[must_use]
    pub fn cost_for_local(&self, local: &BTreeSet<TableId>) -> Option<PlanCost> {
        let mut mask = 0usize;
        for t in local {
            let i = self.replicated.iter().position(|r| r == t)?;
            mask |= 1 << i;
        }
        Some(self.costs[mask])
    }

    /// Cost of the all-remote plan (every table read from its base copy).
    #[must_use]
    pub fn all_remote_cost(&self) -> PlanCost {
        self.costs[0]
    }

    /// Cost of the all-local plan, if every footprint table is replicated.
    #[must_use]
    pub fn all_local_cost(&self) -> Option<PlanCost> {
        if self.replicated.len() == self.query.table_count() {
            Some(self.costs[self.costs.len() - 1])
        } else {
            None
        }
    }

    /// Iterates over every combination as `(local tables, cost)`.
    pub fn combinations(&self) -> impl Iterator<Item = (BTreeSet<TableId>, PlanCost)> + '_ {
        (0..self.costs.len()).map(move |mask| {
            let local: BTreeSet<TableId> = self
                .replicated
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &t)| t)
                .collect();
            (local, self.costs[mask])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AnalyticCostModel, StylizedCostModel};
    use crate::query::QueryId;
    use ivdss_catalog::replica::{ReplicaSpec, ReplicationPlan};
    use ivdss_catalog::synthetic::{synthetic_catalog, SyntheticConfig};

    fn t(i: u32) -> TableId {
        TableId::new(i)
    }

    fn catalog_with_replicas(tables: usize, replicated: &[u32]) -> Catalog {
        let base = synthetic_catalog(&SyntheticConfig {
            tables,
            sites: 2,
            replicated_tables: 0,
            seed: 3,
            ..SyntheticConfig::default()
        })
        .unwrap();
        let mut plan = ReplicationPlan::new();
        for &i in replicated {
            plan.add(t(i), ReplicaSpec::new(10.0));
        }
        base.with_replication(plan).unwrap()
    }

    #[test]
    fn combination_count_is_power_of_replicated() {
        let cat = catalog_with_replicas(6, &[0, 2, 4]);
        let q = QuerySpec::new(QueryId::new(0), vec![t(0), t(1), t(2), t(3)]);
        // replicated ∩ footprint = {0, 2} → 4 combos.
        let c = CompiledQuery::compile(&cat, &StylizedCostModel::paper_fig4(), q);
        assert_eq!(c.combination_count(), 4);
        assert_eq!(c.replicated_tables(), &[t(0), t(2)]);
    }

    #[test]
    fn stylized_costs_by_mask() {
        let cat = catalog_with_replicas(4, &[0, 1, 2, 3]);
        let q = QuerySpec::new(QueryId::new(0), vec![t(0), t(1), t(2), t(3)]);
        let c = CompiledQuery::compile(&cat, &StylizedCostModel::paper_fig4(), q);
        // All-remote = 10, all-local = 2.
        assert_eq!(c.all_remote_cost().total().value(), 10.0);
        assert_eq!(c.all_local_cost().unwrap().total().value(), 2.0);
        // One local table → 3 remote → 8.
        let one_local: BTreeSet<TableId> = [t(1)].into_iter().collect();
        assert_eq!(c.cost_for_local(&one_local).unwrap().total().value(), 8.0);
    }

    #[test]
    fn all_local_requires_full_replication() {
        let cat = catalog_with_replicas(4, &[0]);
        let q = QuerySpec::new(QueryId::new(0), vec![t(0), t(1)]);
        let c = CompiledQuery::compile(&cat, &StylizedCostModel::paper_fig4(), q);
        assert!(c.all_local_cost().is_none());
        assert_eq!(c.combination_count(), 2);
    }

    #[test]
    fn cost_for_invalid_local_is_none() {
        let cat = catalog_with_replicas(4, &[0]);
        let q = QuerySpec::new(QueryId::new(0), vec![t(0), t(1)]);
        let c = CompiledQuery::compile(&cat, &StylizedCostModel::paper_fig4(), q);
        let bad: BTreeSet<TableId> = [t(1)].into_iter().collect(); // not replicated
        assert_eq!(c.cost_for_local(&bad), None);
        let outside: BTreeSet<TableId> = [t(3)].into_iter().collect(); // outside footprint
        assert_eq!(c.cost_for_local(&outside), None);
    }

    #[test]
    fn combinations_iterates_all_masks() {
        let cat = catalog_with_replicas(3, &[0, 1]);
        let q = QuerySpec::new(QueryId::new(0), vec![t(0), t(1), t(2)]);
        let c = CompiledQuery::compile(&cat, &AnalyticCostModel::paper_scale(), q);
        let combos: Vec<_> = c.combinations().collect();
        assert_eq!(combos.len(), 4);
        let sizes: Vec<usize> = combos.iter().map(|(l, _)| l.len()).collect();
        assert_eq!(sizes, vec![0, 1, 1, 2]);
        // More local tables never increases analytic cost (local is faster).
        let all_remote = combos[0].1.total();
        let all_local_combo = combos[3].1.total();
        assert!(all_local_combo <= all_remote);
    }

    #[test]
    fn compile_with_dyn_model() {
        let cat = catalog_with_replicas(2, &[0]);
        let q = QuerySpec::new(QueryId::new(0), vec![t(0), t(1)]);
        let model: Box<dyn CostModel> = Box::new(StylizedCostModel::paper_fig4());
        let c = CompiledQuery::compile(&cat, model.as_ref(), q);
        assert_eq!(c.combination_count(), 2);
    }
}
