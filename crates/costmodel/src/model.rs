//! Computational-latency models.
//!
//! A plan's *computational latency* (paper §2) is "the summation of query
//! queuing time, query processing time, and query result transmission
//! time". Queuing depends on server state and is added by the planner /
//! simulator; this module estimates the other two components for a given
//! *remote set* — the subset of a query's footprint read from base tables
//! at remote sites (everything else is read from local replicas).
//!
//! Two models are provided:
//!
//! * [`StylizedCostModel`] — the paper's Fig. 4 cost function ("the
//!   computation time is 2 if the query evaluation only uses the
//!   replications and 4, 6, 8, and 10 if the query evaluation involves 1,
//!   2, 3, and 4 base tables");
//! * [`AnalyticCostModel`] — a size-based model: scan/join cost scales with
//!   the bytes touched, remote subqueries run in parallel per site, results
//!   are shipped over a bounded-bandwidth network, and every additional
//!   remote site adds coordination overhead (this is what degrades the
//!   uniform-placement configurations of Fig. 8 as sites grow).

use std::collections::BTreeSet;

use ivdss_catalog::catalog::Catalog;
use ivdss_catalog::ids::TableId;
use ivdss_simkernel::time::SimDuration;

use crate::query::QuerySpec;

/// Processing and transmission components of a plan's computational
/// latency (queuing is added separately from live server state).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanCost {
    /// Work performed at the local federation server (scanning/joining
    /// replicas and assembling shipped sub-results).
    pub local_processing: SimDuration,
    /// Work performed at remote servers (the slowest site's subquery plus
    /// cross-site coordination overhead); zero for all-local plans.
    pub remote_processing: SimDuration,
    /// Query-result transmission time (zero for all-local plans; the paper
    /// measures transmission "only for the queries running at remote
    /// servers").
    pub transmission: SimDuration,
}

impl PlanCost {
    /// A zero-cost plan (used as an additive identity).
    pub const ZERO: PlanCost = PlanCost {
        local_processing: SimDuration::ZERO,
        remote_processing: SimDuration::ZERO,
        transmission: SimDuration::ZERO,
    };

    /// Total query processing time (remote subqueries, then local work).
    #[must_use]
    pub fn processing(&self) -> SimDuration {
        self.local_processing + self.remote_processing
    }

    /// Total service time: processing + transmission.
    #[must_use]
    pub fn total(&self) -> SimDuration {
        self.processing() + self.transmission
    }

    /// The time this plan occupies the *local federation server* — its
    /// local work plus result reception. Remote subquery time occupies the
    /// remote servers instead, so it does not block the local queue.
    #[must_use]
    pub fn local_service(&self) -> SimDuration {
        self.local_processing + self.transmission
    }
}

/// Estimates plan costs for (query, remote-set) combinations.
///
/// `remote` must be a subset of the query's footprint; tables in the
/// footprint but not in `remote` are read from local replicas.
///
/// The `Send + Sync` supertraits let planners evaluate candidate plans
/// from worker threads (`ivdss-core`'s `PlannerPool`); cost models are
/// consulted immutably during a search, so any model built from plain
/// data satisfies them automatically.
pub trait CostModel: Send + Sync {
    /// Estimates the cost of evaluating `query` with `remote` read at
    /// remote sites and the rest locally.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `remote` is not a subset of the
    /// query's footprint.
    fn plan_cost(
        &self,
        catalog: &Catalog,
        query: &QuerySpec,
        remote: &BTreeSet<TableId>,
    ) -> PlanCost;
}

/// The paper's stylized cost function: `base + per_remote × |remote|`,
/// attributed entirely to processing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StylizedCostModel {
    base: f64,
    per_remote: f64,
}

impl StylizedCostModel {
    /// Creates a stylized model.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is negative or not finite.
    #[must_use]
    pub fn new(base: f64, per_remote: f64) -> Self {
        assert!(base.is_finite() && base >= 0.0, "base must be non-negative");
        assert!(
            per_remote.is_finite() && per_remote >= 0.0,
            "per_remote must be non-negative"
        );
        StylizedCostModel { base, per_remote }
    }

    /// The exact parameters of the paper's Fig. 4 worked example:
    /// all-replica cost 2; +2 per base table read remotely.
    #[must_use]
    pub fn paper_fig4() -> Self {
        StylizedCostModel::new(2.0, 2.0)
    }
}

impl Default for StylizedCostModel {
    fn default() -> Self {
        StylizedCostModel::paper_fig4()
    }
}

impl CostModel for StylizedCostModel {
    fn plan_cost(
        &self,
        _catalog: &Catalog,
        query: &QuerySpec,
        remote: &BTreeSet<TableId>,
    ) -> PlanCost {
        assert_subset(query, remote);
        PlanCost {
            local_processing: SimDuration::new(self.base),
            remote_processing: SimDuration::new(self.per_remote * remote.len() as f64),
            transmission: SimDuration::ZERO,
        }
    }
}

/// A size-based analytic model (time unit = minutes at the default rates).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticCostModel {
    /// Federation-server scan/join rate, bytes per time unit.
    pub local_scan_rate: f64,
    /// Remote-server scan/join rate, bytes per time unit.
    pub remote_scan_rate: f64,
    /// Network bandwidth for result shipping, bytes per time unit.
    pub net_bandwidth: f64,
    /// Fixed coordination overhead per remote site touched, time units.
    pub per_site_overhead: f64,
    /// Extra join cost factor per additional table beyond the first.
    pub join_factor: f64,
}

impl AnalyticCostModel {
    /// Default calibration: minutes as the time unit, the local server
    /// 2.5× as fast as remote servers (collocated, warehouse-tuned,
    /// uncontended by operational transactions), a
    /// 1 GB/min federation link, and 1 min of coordination per remote
    /// site (distributed-plan setup, cross-site exchange rounds and
    /// result merging — this is the "communication overhead among
    /// different nodes" that degrades wide fan-outs in the paper's
    /// Fig. 8b). At TPC-H SF 6 this yields single-digit-to-half-hour
    /// latencies — the paper's "near real time (2–3 minutes to 20–30
    /// minutes)" regime.
    #[must_use]
    pub fn paper_scale() -> Self {
        AnalyticCostModel {
            local_scan_rate: 2.0e9,
            remote_scan_rate: 0.8e9,
            net_bandwidth: 1.0e9,
            per_site_overhead: 1.0,
            join_factor: 0.15,
        }
    }
}

impl Default for AnalyticCostModel {
    fn default() -> Self {
        AnalyticCostModel::paper_scale()
    }
}

impl CostModel for AnalyticCostModel {
    fn plan_cost(
        &self,
        catalog: &Catalog,
        query: &QuerySpec,
        remote: &BTreeSet<TableId>,
    ) -> PlanCost {
        assert_subset(query, remote);
        let join_scale = 1.0 + self.join_factor * (query.table_count().saturating_sub(1)) as f64;
        let weight = query.weight() * join_scale;

        // Local portion: replicas scanned/joined at the federation server.
        let local_bytes: f64 = query
            .tables()
            .iter()
            .filter(|t| !remote.contains(t))
            .map(|&t| catalog.table(t).size_bytes() as f64)
            .sum();
        let mut local_processing = weight * local_bytes / self.local_scan_rate;
        let mut remote_processing = 0.0;

        // Remote portion: per-site subqueries run in parallel; the slowest
        // site dominates. Every remote site adds coordination overhead.
        let mut shipped_bytes = 0.0;
        if !remote.is_empty() {
            let sites = catalog.sites_spanned(&remote.iter().copied().collect::<Vec<_>>());
            let mut slowest = 0.0f64;
            for &site in &sites {
                let site_bytes: f64 = remote
                    .iter()
                    .filter(|&&t| catalog.site_of(t) == site)
                    .map(|&t| catalog.table(t).size_bytes() as f64)
                    .sum();
                slowest = slowest.max(weight * site_bytes / self.remote_scan_rate);
            }
            let remote_bytes: f64 = remote
                .iter()
                .map(|&t| catalog.table(t).size_bytes() as f64)
                .sum();
            shipped_bytes = query.selectivity() * remote_bytes;
            // Assembling shipped sub-results at the federation server.
            local_processing += weight * shipped_bytes / self.local_scan_rate;
            remote_processing = slowest + self.per_site_overhead * sites.len() as f64;
        }

        PlanCost {
            local_processing: SimDuration::new(local_processing),
            remote_processing: SimDuration::new(remote_processing),
            transmission: SimDuration::new(shipped_bytes / self.net_bandwidth),
        }
    }
}

fn assert_subset(query: &QuerySpec, remote: &BTreeSet<TableId>) {
    for t in remote {
        assert!(
            query.references(*t),
            "remote set contains {t} outside the query footprint"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryId;
    use ivdss_catalog::placement::PlacementStrategy;
    use ivdss_catalog::synthetic::{synthetic_catalog, SyntheticConfig};

    fn catalog(sites: usize) -> Catalog {
        synthetic_catalog(&SyntheticConfig {
            tables: 8,
            sites,
            replicated_tables: 4,
            placement: PlacementStrategy::Uniform,
            seed: 1,
            ..SyntheticConfig::default()
        })
        .unwrap()
    }

    fn t(i: u32) -> TableId {
        TableId::new(i)
    }

    fn set(ids: &[u32]) -> BTreeSet<TableId> {
        ids.iter().map(|&i| t(i)).collect()
    }

    #[test]
    fn stylized_matches_paper_numbers() {
        let cat = catalog(2);
        let model = StylizedCostModel::paper_fig4();
        let q = QuerySpec::new(QueryId::new(0), vec![t(0), t(1), t(2), t(3)]);
        for (n_remote, expect) in [(0usize, 2.0), (1, 4.0), (2, 6.0), (3, 8.0), (4, 10.0)] {
            let remote: BTreeSet<TableId> = (0..n_remote as u32).map(t).collect();
            let cost = model.plan_cost(&cat, &q, &remote);
            assert_eq!(cost.total(), SimDuration::new(expect));
            assert_eq!(cost.transmission, SimDuration::ZERO);
        }
    }

    #[test]
    fn analytic_all_local_is_cheapest() {
        let cat = catalog(3);
        let model = AnalyticCostModel::paper_scale();
        let q = QuerySpec::new(QueryId::new(0), vec![t(0), t(1), t(2)]);
        let all_local = model.plan_cost(&cat, &q, &BTreeSet::new());
        let all_remote = model.plan_cost(&cat, &q, &set(&[0, 1, 2]));
        assert!(all_local.total() < all_remote.total());
        assert_eq!(all_local.transmission, SimDuration::ZERO);
        assert!(all_remote.transmission.value() > 0.0);
    }

    #[test]
    fn analytic_cost_monotone_in_remote_set() {
        let cat = catalog(3);
        let model = AnalyticCostModel::paper_scale();
        let q = QuerySpec::new(QueryId::new(0), vec![t(0), t(1), t(2), t(3)]);
        let c1 = model.plan_cost(&cat, &q, &set(&[0]));
        let c2 = model.plan_cost(&cat, &q, &set(&[0, 1]));
        let c3 = model.plan_cost(&cat, &q, &set(&[0, 1, 2]));
        assert!(c1.total() <= c2.total());
        assert!(c2.total() <= c3.total());
    }

    #[test]
    fn weight_scales_processing() {
        let cat = catalog(2);
        let model = AnalyticCostModel::paper_scale();
        let light = QuerySpec::with_profile(QueryId::new(0), vec![t(0), t(1)], 1.0, 0.01);
        let heavy = QuerySpec::with_profile(QueryId::new(1), vec![t(0), t(1)], 3.0, 0.01);
        let cl = model.plan_cost(&cat, &light, &BTreeSet::new());
        let ch = model.plan_cost(&cat, &heavy, &BTreeSet::new());
        assert!((ch.processing().value() / cl.processing().value() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn more_sites_more_overhead() {
        // Same tables forced to distinct sites vs one site.
        let model = AnalyticCostModel::paper_scale();
        let cat_many = catalog(8);
        let cat_one = catalog(1);
        let q = QuerySpec::new(QueryId::new(0), vec![t(0), t(1), t(2), t(3)]);
        let remote = set(&[0, 1, 2, 3]);
        let many = model.plan_cost(&cat_many, &q, &remote);
        let one = model.plan_cost(&cat_one, &q, &remote);
        // With one site everything is serialized at that site but there is
        // only one site-overhead; with many sites the work parallelizes but
        // overhead multiplies. Either way the costs must differ and both be
        // positive — and the overhead term must show up.
        assert!(many.total().value() > 0.0 && one.total().value() > 0.0);
        let spanned = cat_many.sites_spanned(&[t(0), t(1), t(2), t(3)]).len();
        assert!(spanned > 1);
    }

    #[test]
    fn plan_cost_total_adds_components() {
        let c = PlanCost {
            local_processing: SimDuration::new(1.5),
            remote_processing: SimDuration::new(0.5),
            transmission: SimDuration::new(0.5),
        };
        assert_eq!(c.processing(), SimDuration::new(2.0));
        assert_eq!(c.total(), SimDuration::new(2.5));
        assert_eq!(c.local_service(), SimDuration::new(2.0));
        assert_eq!(PlanCost::ZERO.total(), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "outside the query footprint")]
    fn remote_outside_footprint_rejected() {
        let cat = catalog(2);
        let model = StylizedCostModel::paper_fig4();
        let q = QuerySpec::new(QueryId::new(0), vec![t(0)]);
        let _ = model.plan_cost(&cat, &q, &set(&[5]));
    }
}
