//! # ivdss-costmodel — query footprints and computational-latency models
//!
//! The paper's computational latency is "query queuing time + query
//! processing time + query result transmission time" (§2). This crate
//! estimates the processing and transmission components for every
//! *combination* of a query's tables over {remote base table, local
//! replica}, and caches them per query ([`compile::CompiledQuery`]) exactly
//! as §3.1 prescribes ("this step needs to be done only once and can be
//! done in advance").
//!
//! * [`query::QuerySpec`] — a query's table footprint plus cost profile;
//! * [`model::StylizedCostModel`] — the paper's Fig. 4 cost function;
//! * [`model::AnalyticCostModel`] — a size-based model with per-site
//!   parallelism, bounded-bandwidth result shipping and per-site
//!   coordination overhead;
//! * [`compile::CompiledQuery`] — the pre-computed combination table;
//! * [`calibrate::CalibratedCostModel`] — the analytic model with its
//!   local side refitted from measured storage scans
//!   (see `ivdss-storage`).
//!
//! # Example
//!
//! ```
//! use ivdss_catalog::tpch::{tpch_catalog, TpchConfig};
//! use ivdss_costmodel::compile::CompiledQuery;
//! use ivdss_costmodel::model::AnalyticCostModel;
//! use ivdss_costmodel::query::{QueryId, QuerySpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let catalog = tpch_catalog(&TpchConfig::default())?;
//! let query = QuerySpec::new(QueryId::new(1), catalog.table_ids()[..4].to_vec());
//! let compiled = CompiledQuery::compile(&catalog, &AnalyticCostModel::paper_scale(), query);
//! // The all-remote plan is always available…
//! let remote = compiled.all_remote_cost();
//! assert!(remote.total().value() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibrate;
pub mod compile;
pub mod model;
pub mod query;

pub use calibrate::{fit_local, CalibratedCostModel, CalibrationSample, LocalFit};
pub use compile::CompiledQuery;
pub use model::{AnalyticCostModel, CostModel, PlanCost, StylizedCostModel};
pub use query::{QueryId, QuerySpec};
