//! Query footprints.
//!
//! The paper treats a query as the set of base tables it reads plus a cost
//! profile; plan selection then assigns each referenced table to either its
//! remote base copy or the local replica. [`QuerySpec`] captures exactly
//! that footprint — no SQL is needed to reproduce the paper's evaluation,
//! because every reported quantity derives from per-(query, combination)
//! computational latencies and synchronization timestamps.

use std::fmt;

use ivdss_catalog::ids::TableId;

/// Identifier of a query (unique within a workload or simulation run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryId(u64);

impl QueryId {
    /// Creates a query id from a raw value.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        QueryId(raw)
    }

    /// The raw value.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}", self.0)
    }
}

impl From<u64> for QueryId {
    fn from(raw: u64) -> Self {
        QueryId::new(raw)
    }
}

/// The static description of one query: which tables it reads and how much
/// work it does per byte scanned.
///
/// * `weight` scales processing cost — a cheap single-join lookup might be
///   `0.5`, a 6-way aggregation `3.0`;
/// * `selectivity` scales the result size shipped back from remote
///   subqueries (fraction of scanned bytes that survive into the result).
///
/// # Examples
///
/// ```
/// use ivdss_catalog::ids::TableId;
/// use ivdss_costmodel::query::{QueryId, QuerySpec};
///
/// let q = QuerySpec::new(QueryId::new(1), vec![TableId::new(3), TableId::new(0), TableId::new(3)]);
/// // Footprint is sorted and deduplicated.
/// assert_eq!(q.tables(), &[TableId::new(0), TableId::new(3)]);
/// assert_eq!(q.table_count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    id: QueryId,
    tables: Vec<TableId>,
    weight: f64,
    selectivity: f64,
}

impl QuerySpec {
    /// Creates a query over the given footprint with weight 1 and
    /// selectivity 0.01.
    ///
    /// The footprint is sorted and deduplicated.
    ///
    /// # Panics
    ///
    /// Panics if `tables` is empty.
    #[must_use]
    pub fn new(id: QueryId, tables: Vec<TableId>) -> Self {
        Self::with_profile(id, tables, 1.0, 0.01)
    }

    /// Creates a query with an explicit cost profile.
    ///
    /// # Panics
    ///
    /// Panics if `tables` is empty, `weight` is not strictly positive and
    /// finite, or `selectivity` is outside `(0, 1]`.
    #[must_use]
    pub fn with_profile(
        id: QueryId,
        mut tables: Vec<TableId>,
        weight: f64,
        selectivity: f64,
    ) -> Self {
        assert!(
            !tables.is_empty(),
            "query must reference at least one table"
        );
        assert!(
            weight.is_finite() && weight > 0.0,
            "weight must be positive and finite"
        );
        assert!(
            selectivity > 0.0 && selectivity <= 1.0,
            "selectivity must be in (0, 1]"
        );
        tables.sort_unstable();
        tables.dedup();
        QuerySpec {
            id,
            tables,
            weight,
            selectivity,
        }
    }

    /// The query's identifier.
    #[must_use]
    pub fn id(&self) -> QueryId {
        self.id
    }

    /// The sorted, deduplicated footprint.
    #[must_use]
    pub fn tables(&self) -> &[TableId] {
        &self.tables
    }

    /// Number of distinct tables referenced.
    #[must_use]
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Returns `true` if the query reads `table`.
    #[must_use]
    pub fn references(&self, table: TableId) -> bool {
        self.tables.binary_search(&table).is_ok()
    }

    /// Processing-cost weight.
    #[must_use]
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Result selectivity (fraction of scanned remote bytes shipped back).
    #[must_use]
    pub fn selectivity(&self) -> f64 {
        self.selectivity
    }

    /// Returns `true` if this query's footprint shares a table with
    /// `other` — the overlap relation the paper's multi-query optimizer
    /// groups workloads by (§3.2, Fig. 9a).
    #[must_use]
    pub fn overlaps(&self, other: &QuerySpec) -> bool {
        // Footprints are sorted: merge-scan.
        let (mut i, mut j) = (0, 0);
        while i < self.tables.len() && j < other.tables.len() {
            match self.tables[i].cmp(&other.tables[j]) {
                std::cmp::Ordering::Equal => return true,
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
            }
        }
        false
    }

    /// Returns a copy with a different id (useful when instantiating a
    /// template query several times in a stream).
    #[must_use]
    pub fn with_id(&self, id: QueryId) -> Self {
        QuerySpec {
            id,
            tables: self.tables.clone(),
            weight: self.weight,
            selectivity: self.selectivity,
        }
    }
}

impl fmt::Display for QuerySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[", self.id)?;
        for (i, t) in self.tables.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TableId {
        TableId::new(i)
    }

    #[test]
    fn footprint_sorted_dedup() {
        let q = QuerySpec::new(QueryId::new(0), vec![t(5), t(1), t(5), t(3)]);
        assert_eq!(q.tables(), &[t(1), t(3), t(5)]);
        assert!(q.references(t(3)));
        assert!(!q.references(t(2)));
    }

    #[test]
    fn overlap_detection() {
        let a = QuerySpec::new(QueryId::new(0), vec![t(1), t(2)]);
        let b = QuerySpec::new(QueryId::new(1), vec![t(2), t(3)]);
        let c = QuerySpec::new(QueryId::new(2), vec![t(4)]);
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert!(a.overlaps(&a));
    }

    #[test]
    fn with_id_preserves_profile() {
        let q = QuerySpec::with_profile(QueryId::new(0), vec![t(1)], 2.5, 0.1);
        let q2 = q.with_id(QueryId::new(9));
        assert_eq!(q2.id(), QueryId::new(9));
        assert_eq!(q2.weight(), 2.5);
        assert_eq!(q2.selectivity(), 0.1);
        assert_eq!(q2.tables(), q.tables());
    }

    #[test]
    fn display_lists_tables() {
        let q = QuerySpec::new(QueryId::new(7), vec![t(2), t(0)]);
        assert_eq!(q.to_string(), "Q7[T0,T2]");
    }

    #[test]
    #[should_panic(expected = "at least one table")]
    fn empty_footprint_rejected() {
        let _ = QuerySpec::new(QueryId::new(0), vec![]);
    }

    #[test]
    #[should_panic(expected = "selectivity")]
    fn bad_selectivity_rejected() {
        let _ = QuerySpec::with_profile(QueryId::new(0), vec![t(0)], 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "weight")]
    fn bad_weight_rejected() {
        let _ = QuerySpec::with_profile(QueryId::new(0), vec![t(0)], 0.0, 0.5);
    }
}
