//! Measured-scan calibration of the analytic cost model.
//!
//! `ivdss-storage` executes real scans and reports one
//! [`CalibrationSample`] per scan — the bytes the table spans in the
//! catalog and the deterministic measured latency the device profile
//! charged for it. [`fit_local`] regresses those samples with closed-form
//! ordinary least squares into a [`LocalFit`]
//! (`seconds ≈ overhead + secs_per_byte × bytes`), and
//! [`CalibratedCostModel`] substitutes the fitted coefficients into the
//! local side of [`AnalyticCostModel`], leaving the remote and
//! transmission sides on the base coefficients. Summation order in the
//! fit is fixed (sample order), so identical samples produce bit-identical
//! coefficients — the regression suite pins them.

use std::collections::BTreeSet;

use ivdss_catalog::catalog::Catalog;
use ivdss_catalog::ids::TableId;
use ivdss_simkernel::time::SimDuration;

use crate::model::{AnalyticCostModel, CostModel, PlanCost};
use crate::query::QuerySpec;

/// One measured scan: catalog bytes spanned vs measured latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationSample {
    /// Bytes the scanned table spans (`rows × row_bytes`).
    pub bytes: f64,
    /// Measured scan latency in model time units.
    pub seconds: f64,
}

/// Fitted local-scan coefficients: `seconds = overhead + secs_per_byte × bytes`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalFit {
    /// Fixed per-scan overhead (intercept), time units.
    pub overhead: f64,
    /// Marginal scan cost per byte (slope), time units per byte.
    pub secs_per_byte: f64,
    /// Number of samples the fit consumed.
    pub samples: usize,
}

impl LocalFit {
    /// Predicted latency of one scan over `bytes` bytes.
    #[must_use]
    pub fn predict(&self, bytes: f64) -> f64 {
        self.overhead + self.secs_per_byte * bytes
    }
}

/// Closed-form OLS fit of `seconds` against `bytes`.
///
/// Returns `None` with fewer than two samples or when all samples span
/// the same byte count (the slope would be undefined). Sums are
/// accumulated in sample order, so the result is a pure function of the
/// sample sequence — bit-reproducible across fits.
#[must_use]
pub fn fit_local(samples: &[CalibrationSample]) -> Option<LocalFit> {
    if samples.len() < 2 {
        return None;
    }
    let n = samples.len() as f64;
    let mut sum_x = 0.0;
    let mut sum_y = 0.0;
    let mut sum_xx = 0.0;
    let mut sum_xy = 0.0;
    for s in samples {
        sum_x += s.bytes;
        sum_y += s.seconds;
        sum_xx += s.bytes * s.bytes;
        sum_xy += s.bytes * s.seconds;
    }
    let denom = n * sum_xx - sum_x * sum_x;
    if denom == 0.0 {
        return None;
    }
    let secs_per_byte = (n * sum_xy - sum_x * sum_y) / denom;
    let overhead = (sum_y - secs_per_byte * sum_x) / n;
    Some(LocalFit {
        overhead,
        secs_per_byte,
        samples: samples.len(),
    })
}

/// [`AnalyticCostModel`] with its local side replaced by measured-scan
/// coefficients.
///
/// Local processing becomes
/// `overhead × |local tables| + secs_per_byte × weight·join_scale × bytes`
/// (the fitted per-scan intercept is charged once per locally scanned
/// table); shipped-result assembly uses the fitted slope too. Remote
/// processing and transmission keep the base model's estimates — the
/// storage engine only measures local replica scans.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibratedCostModel {
    base: AnalyticCostModel,
    fit: LocalFit,
}

impl CalibratedCostModel {
    /// Wraps `base` with fitted local coefficients.
    #[must_use]
    pub fn new(base: AnalyticCostModel, fit: LocalFit) -> Self {
        CalibratedCostModel { base, fit }
    }

    /// The fitted coefficients.
    #[must_use]
    pub fn fit(&self) -> LocalFit {
        self.fit
    }

    /// The base model supplying remote/transmission estimates.
    #[must_use]
    pub fn base(&self) -> AnalyticCostModel {
        self.base
    }
}

impl CostModel for CalibratedCostModel {
    fn plan_cost(
        &self,
        catalog: &Catalog,
        query: &QuerySpec,
        remote: &BTreeSet<TableId>,
    ) -> PlanCost {
        let base_cost = self.base.plan_cost(catalog, query, remote);
        let join_scale =
            1.0 + self.base.join_factor * (query.table_count().saturating_sub(1)) as f64;
        let weight = query.weight() * join_scale;

        let local_tables: Vec<TableId> = query
            .tables()
            .iter()
            .copied()
            .filter(|t| !remote.contains(t))
            .collect();
        let local_bytes: f64 = local_tables
            .iter()
            .map(|&t| catalog.table(t).size_bytes() as f64)
            .sum();
        let mut local = self.fit.overhead * local_tables.len() as f64
            + self.fit.secs_per_byte * weight * local_bytes;

        if !remote.is_empty() {
            let remote_bytes: f64 = remote
                .iter()
                .map(|&t| catalog.table(t).size_bytes() as f64)
                .sum();
            let shipped_bytes = query.selectivity() * remote_bytes;
            local += self.fit.secs_per_byte * weight * shipped_bytes;
        }

        PlanCost {
            local_processing: SimDuration::new(local),
            remote_processing: base_cost.remote_processing,
            transmission: base_cost.transmission,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryId;
    use ivdss_catalog::placement::PlacementStrategy;
    use ivdss_catalog::synthetic::{synthetic_catalog, SyntheticConfig};

    fn samples() -> Vec<CalibrationSample> {
        // Exactly linear: seconds = 0.5 + 2e-6 * bytes.
        [1_000.0, 5_000.0, 20_000.0, 80_000.0]
            .iter()
            .map(|&bytes| CalibrationSample {
                bytes,
                seconds: 0.5 + 2.0e-6 * bytes,
            })
            .collect()
    }

    #[test]
    fn fit_recovers_exact_line() {
        let fit = fit_local(&samples()).unwrap();
        assert!(
            (fit.overhead - 0.5).abs() < 1e-9,
            "overhead {}",
            fit.overhead
        );
        assert!(
            (fit.secs_per_byte - 2.0e-6).abs() < 1e-12,
            "slope {}",
            fit.secs_per_byte
        );
        assert_eq!(fit.samples, 4);
    }

    #[test]
    fn fit_is_bit_reproducible() {
        let s = samples();
        let a = fit_local(&s).unwrap();
        let b = fit_local(&s).unwrap();
        assert_eq!(a.overhead.to_bits(), b.overhead.to_bits());
        assert_eq!(a.secs_per_byte.to_bits(), b.secs_per_byte.to_bits());
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(fit_local(&[]).is_none());
        assert!(fit_local(&samples()[..1]).is_none());
        let flat = vec![
            CalibrationSample {
                bytes: 10.0,
                seconds: 1.0
            };
            3
        ];
        assert!(fit_local(&flat).is_none());
    }

    #[test]
    fn calibrated_model_uses_fitted_local_side() {
        let cat = synthetic_catalog(&SyntheticConfig {
            tables: 4,
            sites: 2,
            replicated_tables: 4,
            placement: PlacementStrategy::Uniform,
            seed: 2,
            ..SyntheticConfig::default()
        })
        .unwrap();
        let fit = fit_local(&samples()).unwrap();
        let base = AnalyticCostModel::paper_scale();
        let model = CalibratedCostModel::new(base, fit);
        let q = QuerySpec::new(QueryId::new(0), vec![TableId::new(0), TableId::new(1)]);

        let all_local = model.plan_cost(&cat, &q, &BTreeSet::new());
        let bytes: f64 = (cat.table(TableId::new(0)).size_bytes()
            + cat.table(TableId::new(1)).size_bytes()) as f64;
        let join_scale = 1.0 + base.join_factor;
        let expect = fit.overhead * 2.0 + fit.secs_per_byte * join_scale * bytes;
        assert!((all_local.local_processing.value() - expect).abs() < 1e-9);
        assert_eq!(all_local.remote_processing, SimDuration::ZERO);

        // Remote/transmission sides are inherited from the base model.
        let remote: BTreeSet<TableId> = [TableId::new(1)].into_iter().collect();
        let calibrated = model.plan_cost(&cat, &q, &remote);
        let analytic = base.plan_cost(&cat, &q, &remote);
        assert_eq!(calibrated.remote_processing, analytic.remote_processing);
        assert_eq!(calibrated.transmission, analytic.transmission);
    }
}
