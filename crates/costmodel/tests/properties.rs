//! Property-based tests for the cost model and compilation cache.

use std::collections::BTreeSet;

use ivdss_catalog::ids::TableId;
use ivdss_catalog::replica::{ReplicaSpec, ReplicationPlan};
use ivdss_catalog::synthetic::{synthetic_catalog, SyntheticConfig};
use ivdss_catalog::Catalog;
use ivdss_costmodel::compile::CompiledQuery;
use ivdss_costmodel::model::{AnalyticCostModel, CostModel, StylizedCostModel};
use ivdss_costmodel::query::{QueryId, QuerySpec};
use proptest::prelude::*;

fn catalog_with(tables: usize, replicated: usize, seed: u64) -> Catalog {
    let base = synthetic_catalog(&SyntheticConfig {
        tables,
        sites: 3,
        replicated_tables: 0,
        seed,
        ..SyntheticConfig::default()
    })
    .unwrap();
    let mut plan = ReplicationPlan::new();
    for i in 0..replicated {
        plan.add(TableId::new(i as u32), ReplicaSpec::new(5.0));
    }
    base.with_replication(plan).unwrap()
}

proptest! {
    /// The compilation cache agrees with direct model evaluation for
    /// every combination.
    #[test]
    fn compiled_costs_match_direct(
        tables in 2usize..8,
        replicated_frac in 0.0..1.0f64,
        seed in any::<u64>(),
        weight in 0.5..3.0f64
    ) {
        let replicated = ((tables as f64) * replicated_frac) as usize;
        let catalog = catalog_with(tables, replicated, seed);
        let model = AnalyticCostModel::paper_scale();
        let query = QuerySpec::with_profile(
            QueryId::new(0),
            (0..tables as u32).map(TableId::new).collect(),
            weight,
            0.01,
        );
        let compiled = CompiledQuery::compile(&catalog, &model, query.clone());
        for (local, cached) in compiled.combinations() {
            let remote: BTreeSet<TableId> = query
                .tables()
                .iter()
                .copied()
                .filter(|t| !local.contains(t))
                .collect();
            let direct = model.plan_cost(&catalog, &query, &remote);
            prop_assert_eq!(cached, direct);
        }
    }

    /// All cost components are finite and non-negative; the all-local
    /// plan has zero transmission and zero remote processing.
    #[test]
    fn costs_are_physical(
        tables in 1usize..8,
        seed in any::<u64>(),
        weight in 0.5..3.0f64,
        selectivity in 0.001..0.5f64
    ) {
        let catalog = catalog_with(tables, tables, seed);
        let model = AnalyticCostModel::paper_scale();
        let query = QuerySpec::with_profile(
            QueryId::new(0),
            (0..tables as u32).map(TableId::new).collect(),
            weight,
            selectivity,
        );
        let compiled = CompiledQuery::compile(&catalog, &model, query);
        for (_, cost) in compiled.combinations() {
            prop_assert!(cost.local_processing.value() >= 0.0);
            prop_assert!(cost.remote_processing.value() >= 0.0);
            prop_assert!(cost.transmission.value() >= 0.0);
            prop_assert!(cost.total().value().is_finite());
        }
        let all_local = compiled.all_local_cost().unwrap();
        prop_assert_eq!(all_local.transmission.value(), 0.0);
        prop_assert_eq!(all_local.remote_processing.value(), 0.0);
    }

    /// Stylized costs depend only on the remote-set size.
    #[test]
    fn stylized_depends_only_on_remote_count(
        tables in 2usize..8,
        seed in any::<u64>()
    ) {
        let catalog = catalog_with(tables, tables, seed);
        let model = StylizedCostModel::paper_fig4();
        let query = QuerySpec::new(
            QueryId::new(0),
            (0..tables as u32).map(TableId::new).collect(),
        );
        let compiled = CompiledQuery::compile(&catalog, &model, query.clone());
        for (local, cost) in compiled.combinations() {
            let n_remote = query.table_count() - local.len();
            prop_assert_eq!(cost.total().value(), 2.0 + 2.0 * n_remote as f64);
        }
    }

    /// Footprints are canonical: sorted, deduplicated, order-insensitive.
    #[test]
    fn query_footprint_canonical(ids in prop::collection::vec(0u32..40, 1..12)) {
        let a = QuerySpec::new(QueryId::new(0), ids.iter().map(|&i| TableId::new(i)).collect());
        let mut reversed: Vec<TableId> = ids.iter().rev().map(|&i| TableId::new(i)).collect();
        reversed.extend(ids.iter().map(|&i| TableId::new(i))); // duplicates
        let b = QuerySpec::new(QueryId::new(0), reversed);
        prop_assert_eq!(a.tables(), b.tables());
        for w in a.tables().windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    /// Overlap is symmetric and reflexive.
    #[test]
    fn overlap_symmetric(
        xs in prop::collection::vec(0u32..20, 1..6),
        ys in prop::collection::vec(0u32..20, 1..6)
    ) {
        let a = QuerySpec::new(QueryId::new(0), xs.iter().map(|&i| TableId::new(i)).collect());
        let b = QuerySpec::new(QueryId::new(1), ys.iter().map(|&i| TableId::new(i)).collect());
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
        prop_assert!(a.overlaps(&a));
    }
}
