//! Workload schedulers: the GA-driven multi-query optimizer and its
//! baselines.
//!
//! * [`MqoScheduler`] — the paper's proposal: a genetic algorithm over
//!   execution-order permutations (§3.2);
//! * [`FifoScheduler`] — submission order, the "Without MQO" baseline of
//!   Fig. 9;
//! * [`ExhaustiveScheduler`] — brute force over all orders, the optimality
//!   oracle for small workloads;
//! * [`GreedyScheduler`] — highest-value-first heuristic, an extra
//!   reference point for the ablation benches.

use ivdss_core::plan::PlanError;
use ivdss_ga::engine::{optimize_permutation_batch, GaConfig};

use crate::evaluate::{ScheduleOutcome, WorkloadEvaluator};

/// Produces an execution order for a workload.
pub trait WorkloadScheduler {
    /// A short human-readable name.
    fn name(&self) -> &str;

    /// Chooses an order and returns its full evaluation.
    ///
    /// # Errors
    ///
    /// Propagates [`PlanError`] from workload evaluation.
    fn schedule(&self, evaluator: &WorkloadEvaluator<'_>) -> Result<ScheduleOutcome, PlanError>;
}

/// The GA-driven multi-query optimizer.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MqoScheduler {
    config: GaConfig,
}

impl MqoScheduler {
    /// Creates a scheduler with the paper's GA configuration (50
    /// generations).
    #[must_use]
    pub fn new() -> Self {
        MqoScheduler {
            config: GaConfig::paper(),
        }
    }

    /// Creates a scheduler with a custom GA configuration.
    #[must_use]
    pub fn with_config(config: GaConfig) -> Self {
        MqoScheduler { config }
    }

    /// The GA configuration in use.
    #[must_use]
    pub fn config(&self) -> &GaConfig {
        &self.config
    }
}

impl WorkloadScheduler for MqoScheduler {
    fn name(&self) -> &str {
        "MQO"
    }

    fn schedule(&self, evaluator: &WorkloadEvaluator<'_>) -> Result<ScheduleOutcome, PlanError> {
        let n = evaluator.len();
        if n == 1 {
            return evaluator.evaluate_order(&[0]);
        }
        // Generation-at-a-time evaluation fans the independent candidate
        // orders out over the evaluator's planner pool; the GA run is
        // bit-identical to per-individual evaluation.
        let result = optimize_permutation_batch(n, &self.config, |generation| {
            evaluator.fitness_population(generation)
        });
        evaluator.evaluate_order(result.best.as_slice())
    }
}

/// Executes queries in submission order ("Without MQO").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FifoScheduler;

impl FifoScheduler {
    /// Creates a FIFO scheduler.
    #[must_use]
    pub fn new() -> Self {
        FifoScheduler
    }
}

impl WorkloadScheduler for FifoScheduler {
    fn name(&self) -> &str {
        "FIFO"
    }

    fn schedule(&self, evaluator: &WorkloadEvaluator<'_>) -> Result<ScheduleOutcome, PlanError> {
        let mut order: Vec<usize> = (0..evaluator.len()).collect();
        order.sort_by(|&a, &b| {
            evaluator.requests()[a]
                .submitted_at
                .cmp(&evaluator.requests()[b].submitted_at)
                .then_with(|| a.cmp(&b))
        });
        evaluator.evaluate_order(&order)
    }
}

/// Tries every permutation — optimal, but `n!`; refuses workloads larger
/// than its cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExhaustiveScheduler {
    max_queries: usize,
}

impl ExhaustiveScheduler {
    /// Creates an exhaustive scheduler with a workload-size cap.
    ///
    /// # Panics
    ///
    /// Panics if `max_queries == 0` or `max_queries > 10` (10! ≈ 3.6 M
    /// orders is already the practical ceiling).
    #[must_use]
    pub fn new(max_queries: usize) -> Self {
        assert!(
            (1..=10).contains(&max_queries),
            "exhaustive scheduling only feasible for 1..=10 queries"
        );
        ExhaustiveScheduler { max_queries }
    }
}

impl Default for ExhaustiveScheduler {
    fn default() -> Self {
        ExhaustiveScheduler::new(8)
    }
}

impl WorkloadScheduler for ExhaustiveScheduler {
    fn name(&self) -> &str {
        "Exhaustive"
    }

    fn schedule(&self, evaluator: &WorkloadEvaluator<'_>) -> Result<ScheduleOutcome, PlanError> {
        let n = evaluator.len();
        assert!(
            n <= self.max_queries,
            "workload of {n} queries exceeds exhaustive cap {}",
            self.max_queries
        );
        let mut order: Vec<usize> = (0..n).collect();
        let mut best: Option<ScheduleOutcome> = None;
        // Heap's algorithm, iterative.
        let mut c = vec![0usize; n];
        let consider =
            |order: &[usize], best: &mut Option<ScheduleOutcome>| -> Result<(), PlanError> {
                let outcome = evaluator.evaluate_order(order)?;
                let better = match best {
                    None => true,
                    Some(b) => outcome.total_information_value > b.total_information_value,
                };
                if better {
                    *best = Some(outcome);
                }
                Ok(())
            };
        consider(&order, &mut best)?;
        let mut i = 0;
        while i < n {
            if c[i] < i {
                if i % 2 == 0 {
                    order.swap(0, i);
                } else {
                    order.swap(c[i], i);
                }
                consider(&order, &mut best)?;
                c[i] += 1;
                i = 0;
            } else {
                c[i] = 0;
                i += 1;
            }
        }
        Ok(best.expect("at least one order considered"))
    }
}

/// Plans the highest business-value queries first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GreedyScheduler;

impl GreedyScheduler {
    /// Creates a greedy scheduler.
    #[must_use]
    pub fn new() -> Self {
        GreedyScheduler
    }
}

impl WorkloadScheduler for GreedyScheduler {
    fn name(&self) -> &str {
        "Greedy"
    }

    fn schedule(&self, evaluator: &WorkloadEvaluator<'_>) -> Result<ScheduleOutcome, PlanError> {
        let mut order: Vec<usize> = (0..evaluator.len()).collect();
        order.sort_by(|&a, &b| {
            let va = evaluator.requests()[a].business_value.value();
            let vb = evaluator.requests()[b].business_value.value();
            vb.partial_cmp(&va)
                .expect("business values are finite")
                .then_with(|| a.cmp(&b))
        });
        evaluator.evaluate_order(&order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivdss_catalog::catalog::Catalog;
    use ivdss_catalog::ids::TableId;
    use ivdss_catalog::replica::{ReplicaSpec, ReplicationPlan};
    use ivdss_catalog::synthetic::{synthetic_catalog, SyntheticConfig};
    use ivdss_core::plan::QueryRequest;
    use ivdss_core::value::{BusinessValue, DiscountRates};
    use ivdss_costmodel::model::StylizedCostModel;
    use ivdss_costmodel::query::{QueryId, QuerySpec};
    use ivdss_replication::timelines::{SyncMode, SyncTimelines};
    use ivdss_simkernel::time::SimTime;

    fn t(i: u32) -> TableId {
        TableId::new(i)
    }

    fn fixture() -> (Catalog, SyncTimelines) {
        let base = synthetic_catalog(&SyntheticConfig {
            tables: 6,
            sites: 2,
            replicated_tables: 0,
            seed: 13,
            ..SyntheticConfig::default()
        })
        .unwrap();
        let mut plan = ReplicationPlan::new();
        for i in 0..4 {
            plan.add(t(i), ReplicaSpec::new(5.0));
        }
        let catalog = base.with_replication(plan).unwrap();
        let timelines = SyncTimelines::from_plan(catalog.replication(), SyncMode::Deterministic);
        (catalog, timelines)
    }

    /// Overlapping queries arriving together — contention makes ordering
    /// matter.
    fn contended_requests(n: usize) -> Vec<QueryRequest> {
        (0..n)
            .map(|i| {
                QueryRequest::new(
                    QuerySpec::new(
                        QueryId::new(i as u64),
                        vec![t((i % 3) as u32), t(((i + 1) % 3) as u32)],
                    ),
                    SimTime::new(10.0 + 0.1 * i as f64),
                )
                .with_business_value(BusinessValue::new(1.0 + (i % 3) as f64))
            })
            .collect()
    }

    #[test]
    fn mqo_at_least_fifo() {
        let (catalog, timelines) = fixture();
        let model = StylizedCostModel::paper_fig4();
        let reqs = contended_requests(5);
        let eval = WorkloadEvaluator::new(
            &catalog,
            &timelines,
            &model,
            DiscountRates::new(0.15, 0.15),
            &reqs,
        );
        let mqo = MqoScheduler::new().schedule(&eval).unwrap();
        let fifo = FifoScheduler::new().schedule(&eval).unwrap();
        assert!(
            mqo.total_information_value >= fifo.total_information_value - 1e-9,
            "MQO {} < FIFO {}",
            mqo.total_information_value,
            fifo.total_information_value
        );
    }

    #[test]
    fn mqo_near_exhaustive_on_small_workloads() {
        let (catalog, timelines) = fixture();
        let model = StylizedCostModel::paper_fig4();
        let reqs = contended_requests(4);
        let eval = WorkloadEvaluator::new(
            &catalog,
            &timelines,
            &model,
            DiscountRates::new(0.15, 0.15),
            &reqs,
        );
        let mqo = MqoScheduler::new().schedule(&eval).unwrap();
        let opt = ExhaustiveScheduler::default().schedule(&eval).unwrap();
        assert!(mqo.total_information_value <= opt.total_information_value + 1e-9);
        // 4! = 24 orders, GA budget ≫ 24 → should find the optimum.
        assert!(
            (opt.total_information_value - mqo.total_information_value).abs() < 1e-9,
            "MQO {} vs optimal {}",
            mqo.total_information_value,
            opt.total_information_value
        );
    }

    #[test]
    fn singleton_workload_trivial() {
        let (catalog, timelines) = fixture();
        let model = StylizedCostModel::paper_fig4();
        let reqs = contended_requests(1);
        let eval = WorkloadEvaluator::new(
            &catalog,
            &timelines,
            &model,
            DiscountRates::new(0.15, 0.15),
            &reqs,
        );
        for sched in [
            &MqoScheduler::new() as &dyn WorkloadScheduler,
            &FifoScheduler,
        ] {
            let s = sched.schedule(&eval).unwrap();
            assert_eq!(s.order, vec![0]);
        }
    }

    #[test]
    fn fifo_respects_submission_order() {
        let (catalog, timelines) = fixture();
        let model = StylizedCostModel::paper_fig4();
        // Reverse submission times.
        let reqs = vec![
            QueryRequest::new(
                QuerySpec::new(QueryId::new(0), vec![t(0)]),
                SimTime::new(20.0),
            ),
            QueryRequest::new(
                QuerySpec::new(QueryId::new(1), vec![t(1)]),
                SimTime::new(10.0),
            ),
        ];
        let eval = WorkloadEvaluator::new(
            &catalog,
            &timelines,
            &model,
            DiscountRates::new(0.05, 0.05),
            &reqs,
        );
        let s = FifoScheduler::new().schedule(&eval).unwrap();
        assert_eq!(s.order, vec![1, 0]);
    }

    #[test]
    fn greedy_orders_by_value() {
        let (catalog, timelines) = fixture();
        let model = StylizedCostModel::paper_fig4();
        let reqs = contended_requests(3); // values 1, 2, 3
        let eval = WorkloadEvaluator::new(
            &catalog,
            &timelines,
            &model,
            DiscountRates::new(0.05, 0.05),
            &reqs,
        );
        let s = GreedyScheduler::new().schedule(&eval).unwrap();
        assert_eq!(s.order, vec![2, 1, 0]);
        assert_eq!(GreedyScheduler::new().name(), "Greedy");
    }

    #[test]
    fn scheduler_names() {
        assert_eq!(MqoScheduler::new().name(), "MQO");
        assert_eq!(FifoScheduler::new().name(), "FIFO");
        assert_eq!(ExhaustiveScheduler::default().name(), "Exhaustive");
    }

    #[test]
    #[should_panic(expected = "exceeds exhaustive cap")]
    fn exhaustive_cap_enforced() {
        let (catalog, timelines) = fixture();
        let model = StylizedCostModel::paper_fig4();
        let reqs = contended_requests(5);
        let eval = WorkloadEvaluator::new(
            &catalog,
            &timelines,
            &model,
            DiscountRates::new(0.05, 0.05),
            &reqs,
        );
        let _ = ExhaustiveScheduler::new(3).schedule(&eval);
    }

    #[test]
    #[should_panic(expected = "feasible")]
    fn exhaustive_rejects_huge_cap() {
        let _ = ExhaustiveScheduler::new(11);
    }
}
