//! # ivdss-mqo — multi-query optimization for workload information value
//!
//! The paper's §3.2: when the candidate execution ranges of several
//! queries overlap, optimizing each in isolation is not enough — "an
//! optimal query plan for one query may conflict with the other plans of
//! others", so the queries are grouped into a *workload* and the execution
//! order of the whole workload is optimized for total information value
//! with a genetic algorithm.
//!
//! * [`workload`] — execution ranges, overlap detection and workload
//!   formation;
//! * [`evaluate`] — the deterministic order-evaluation function (plan each
//!   query with IVQP against the queue state induced by its predecessors);
//! * [`scheduler`] — [`scheduler::MqoScheduler`] (GA) plus FIFO ("without
//!   MQO"), exhaustive (oracle) and greedy baselines.
//!
//! # Example
//!
//! ```
//! use ivdss_catalog::ids::TableId;
//! use ivdss_catalog::replica::{ReplicaSpec, ReplicationPlan};
//! use ivdss_catalog::synthetic::{synthetic_catalog, SyntheticConfig};
//! use ivdss_core::plan::QueryRequest;
//! use ivdss_core::value::DiscountRates;
//! use ivdss_costmodel::model::StylizedCostModel;
//! use ivdss_costmodel::query::{QueryId, QuerySpec};
//! use ivdss_mqo::evaluate::WorkloadEvaluator;
//! use ivdss_mqo::scheduler::{FifoScheduler, MqoScheduler, WorkloadScheduler};
//! use ivdss_replication::timelines::{SyncMode, SyncTimelines};
//! use ivdss_simkernel::time::SimTime;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let base = synthetic_catalog(&SyntheticConfig {
//!     tables: 4, sites: 2, replicated_tables: 0, ..SyntheticConfig::default()
//! })?;
//! let mut plan = ReplicationPlan::new();
//! plan.add(TableId::new(0), ReplicaSpec::new(5.0));
//! plan.add(TableId::new(1), ReplicaSpec::new(5.0));
//! let catalog = base.with_replication(plan)?;
//! let timelines = SyncTimelines::from_plan(catalog.replication(), SyncMode::Deterministic);
//! let model = StylizedCostModel::paper_fig4();
//!
//! let requests = vec![
//!     QueryRequest::new(QuerySpec::new(QueryId::new(0), vec![TableId::new(0), TableId::new(1)]), SimTime::new(1.0)),
//!     QueryRequest::new(QuerySpec::new(QueryId::new(1), vec![TableId::new(0), TableId::new(1)]), SimTime::new(1.2)),
//! ];
//! let evaluator = WorkloadEvaluator::new(
//!     &catalog, &timelines, &model, DiscountRates::new(0.15, 0.15), &requests,
//! );
//! let mqo = MqoScheduler::new().schedule(&evaluator)?;
//! let fifo = FifoScheduler::new().schedule(&evaluator)?;
//! assert!(mqo.total_information_value >= fifo.total_information_value - 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod evaluate;
pub mod scheduler;
pub mod workload;

pub use evaluate::{ScheduleOutcome, ScheduledQuery, WorkloadEvaluator};
pub use scheduler::{
    ExhaustiveScheduler, FifoScheduler, GreedyScheduler, MqoScheduler, WorkloadScheduler,
};
pub use workload::{
    execution_ranges, form_workloads, live_batch_windows, overlap_rate, ExecutionRange,
};
