//! The deterministic workload evaluation function (paper §3.2):
//!
//! "An important GA component is the evaluation function. Given a
//! particular chromosome representing one workload permutation, the
//! function deterministically calculates the information value of a given
//! workload execution order."
//!
//! [`WorkloadEvaluator::evaluate_order`] replays an order against fresh
//! server queues: queries are planned one by one with the IVQP search,
//! each plan *commits* its service time to the local federation server and
//! to every remote site it touches, so later queries in the order see the
//! queueing the earlier ones induce. The total information value of the
//! order is the GA's fitness.

use std::sync::Arc;

use ivdss_catalog::catalog::Catalog;
use ivdss_catalog::ids::TableId;
use ivdss_core::parallel::PlannerPool;
use ivdss_core::plan::{FacilityQueues, PlanContext, PlanError, PlanEvaluation, QueryRequest};
use ivdss_core::planner::IvqpPlanner;
use ivdss_core::value::DiscountRates;
use ivdss_costmodel::model::CostModel;
use ivdss_ga::permutation::Permutation;
use ivdss_replication::timelines::SyncTimelines;

/// One query's slot in an evaluated schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledQuery {
    /// Index of the request in the evaluator's request slice.
    pub request_index: usize,
    /// The plan selected for it under the schedule's queue state.
    pub plan: PlanEvaluation,
}

/// A fully evaluated execution order.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleOutcome {
    /// Request indices in execution (priority) order.
    pub order: Vec<usize>,
    /// Sum of the information values delivered by all queries.
    pub total_information_value: f64,
    /// Per-query plans, in execution order.
    pub plans: Vec<ScheduledQuery>,
}

impl ScheduleOutcome {
    /// Mean information value per query.
    #[must_use]
    pub fn mean_information_value(&self) -> f64 {
        if self.plans.is_empty() {
            0.0
        } else {
            self.total_information_value / self.plans.len() as f64
        }
    }
}

/// Evaluates workload execution orders deterministically.
pub struct WorkloadEvaluator<'a> {
    catalog: &'a Catalog,
    timelines: &'a SyncTimelines,
    model: &'a dyn CostModel,
    rates: DiscountRates,
    requests: &'a [QueryRequest],
    planner: IvqpPlanner,
    pool: Arc<PlannerPool>,
}

impl<'a> WorkloadEvaluator<'a> {
    /// Creates an evaluator over `requests`.
    ///
    /// # Panics
    ///
    /// Panics if `requests` is empty.
    #[must_use]
    pub fn new(
        catalog: &'a Catalog,
        timelines: &'a SyncTimelines,
        model: &'a dyn CostModel,
        rates: DiscountRates,
        requests: &'a [QueryRequest],
    ) -> Self {
        assert!(!requests.is_empty(), "workload must contain a query");
        WorkloadEvaluator {
            catalog,
            timelines,
            model,
            rates,
            requests,
            planner: IvqpPlanner::new(),
            pool: Arc::new(PlannerPool::sequential()),
        }
    }

    /// Shares a planner pool with this evaluator (builder-style):
    /// [`WorkloadEvaluator::fitness_population`] fans candidate orders
    /// out over it. One order's replay stays sequential — each query's
    /// plan depends on the queues committed by the queries before it —
    /// so the parallelism is *across* independent candidate orders.
    #[must_use]
    pub fn with_pool(mut self, pool: Arc<PlannerPool>) -> Self {
        self.pool = pool;
        self
    }

    /// The planner pool candidate orders are evaluated on.
    #[must_use]
    pub fn pool(&self) -> &Arc<PlannerPool> {
        &self.pool
    }

    /// The requests under evaluation.
    #[must_use]
    pub fn requests(&self) -> &[QueryRequest] {
        self.requests
    }

    /// Number of queries in the workload.
    #[must_use]
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Returns `true` if the workload is empty (never, by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Evaluates the order given by request indices.
    ///
    /// Each query is planned with the scatter-and-gather search against
    /// the queue state left by the queries before it in the order, then
    /// its service window is committed to the involved servers.
    ///
    /// # Errors
    ///
    /// Propagates [`PlanError`] from plan selection.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..len`.
    pub fn evaluate_order(&self, order: &[usize]) -> Result<ScheduleOutcome, PlanError> {
        assert_eq!(order.len(), self.requests.len(), "order length mismatch");
        let mut queues = FacilityQueues::new(self.catalog.site_count());
        let mut plans = Vec::with_capacity(order.len());
        let mut total = 0.0;
        for &idx in order {
            let request = &self.requests[idx];
            let ctx = PlanContext {
                catalog: self.catalog,
                timelines: self.timelines,
                model: self.model,
                rates: self.rates,
                queues: &queues,
            };
            let plan = self.planner.search(&ctx, request)?.best;
            commit_plan(&mut queues, self.catalog, request, &plan);
            total += plan.information_value.value();
            plans.push(ScheduledQuery {
                request_index: idx,
                plan,
            });
        }
        Ok(ScheduleOutcome {
            order: order.to_vec(),
            total_information_value: total,
            plans,
        })
    }

    /// GA fitness: the total information value of the order encoded by
    /// `perm`.
    ///
    /// # Panics
    ///
    /// Panics if plan selection fails, which indicates an inconsistent
    /// evaluator (the search only generates valid candidates).
    #[must_use]
    pub fn fitness(&self, perm: &Permutation) -> f64 {
        self.evaluate_order(perm.as_slice())
            .expect("workload evaluation cannot fail on valid context")
            .total_information_value
    }

    /// Evaluates a whole GA generation, fanning the independent candidate
    /// orders out over the evaluator's [`PlannerPool`]. Returns fitnesses
    /// in input order, identical to mapping [`WorkloadEvaluator::fitness`]
    /// over `perms` (each order replays against its own fresh queues).
    ///
    /// # Panics
    ///
    /// Panics if plan selection fails, which indicates an inconsistent
    /// evaluator (the search only generates valid candidates).
    #[must_use]
    pub fn fitness_population(&self, perms: &[Permutation]) -> Vec<f64> {
        self.pool
            .run_indexed(perms.len(), |i| self.fitness(&perms[i]))
    }
}

impl std::fmt::Debug for WorkloadEvaluator<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkloadEvaluator")
            .field("queries", &self.requests.len())
            .field("rates", &self.rates)
            .finish_non_exhaustive()
    }
}

/// Books the plan's service window on every server it touches: the local
/// federation server for the full service time, and each spanned remote
/// site for the processing component.
fn commit_plan(
    queues: &mut FacilityQueues,
    catalog: &Catalog,
    request: &QueryRequest,
    plan: &PlanEvaluation,
) {
    queues
        .local_mut()
        .book(plan.service_start, plan.cost.local_service());
    let remote: Vec<TableId> = request
        .query
        .tables()
        .iter()
        .copied()
        .filter(|t| !plan.local_tables.contains(t))
        .collect();
    if !remote.is_empty() {
        for site in catalog.sites_spanned(&remote) {
            queues
                .remote_mut(site)
                .book(plan.service_start, plan.cost.remote_processing);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivdss_catalog::replica::{ReplicaSpec, ReplicationPlan};
    use ivdss_catalog::synthetic::{synthetic_catalog, SyntheticConfig};
    use ivdss_core::value::BusinessValue;
    use ivdss_costmodel::model::StylizedCostModel;
    use ivdss_costmodel::query::{QueryId, QuerySpec};
    use ivdss_replication::timelines::SyncMode;
    use ivdss_simkernel::time::SimTime;

    fn t(i: u32) -> TableId {
        TableId::new(i)
    }

    fn fixture() -> (Catalog, SyncTimelines) {
        let base = synthetic_catalog(&SyntheticConfig {
            tables: 6,
            sites: 2,
            replicated_tables: 0,
            seed: 11,
            ..SyntheticConfig::default()
        })
        .unwrap();
        let mut plan = ReplicationPlan::new();
        for i in 0..4 {
            plan.add(t(i), ReplicaSpec::new(4.0 + f64::from(i)));
        }
        let catalog = base.with_replication(plan).unwrap();
        let timelines = SyncTimelines::from_plan(catalog.replication(), SyncMode::Deterministic);
        (catalog, timelines)
    }

    fn requests() -> Vec<QueryRequest> {
        vec![
            QueryRequest::new(
                QuerySpec::new(QueryId::new(0), vec![t(0), t(1)]),
                SimTime::new(10.0),
            ),
            QueryRequest::new(
                QuerySpec::new(QueryId::new(1), vec![t(1), t(2)]),
                SimTime::new(10.5),
            )
            .with_business_value(BusinessValue::new(2.0)),
            QueryRequest::new(
                QuerySpec::new(QueryId::new(2), vec![t(0), t(3)]),
                SimTime::new(11.0),
            ),
        ]
    }

    #[test]
    fn evaluation_is_deterministic() {
        let (catalog, timelines) = fixture();
        let model = StylizedCostModel::paper_fig4();
        let reqs = requests();
        let eval = WorkloadEvaluator::new(
            &catalog,
            &timelines,
            &model,
            DiscountRates::new(0.05, 0.05),
            &reqs,
        );
        let a = eval.evaluate_order(&[0, 1, 2]).unwrap();
        let b = eval.evaluate_order(&[0, 1, 2]).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.plans.len(), 3);
        assert!(a.total_information_value > 0.0);
        assert!(a.mean_information_value() <= a.total_information_value);
    }

    #[test]
    fn order_changes_outcome_under_contention() {
        let (catalog, timelines) = fixture();
        let model = StylizedCostModel::paper_fig4();
        let reqs = requests();
        let eval = WorkloadEvaluator::new(
            &catalog,
            &timelines,
            &model,
            DiscountRates::new(0.05, 0.05),
            &reqs,
        );
        let fifo = eval.evaluate_order(&[0, 1, 2]).unwrap();
        let rev = eval.evaluate_order(&[2, 1, 0]).unwrap();
        // Orders must both be valid; totals will generally differ because
        // queue contention shifts (equality would mean zero contention).
        assert!(fifo.total_information_value > 0.0);
        assert!(rev.total_information_value > 0.0);
        assert_ne!(fifo.plans[0].request_index, rev.plans[0].request_index);
    }

    #[test]
    fn later_queries_see_queue_contention() {
        let (catalog, timelines) = fixture();
        let model = StylizedCostModel::paper_fig4();
        // Two identical heavy queries submitted simultaneously.
        let reqs = vec![
            QueryRequest::new(
                QuerySpec::new(QueryId::new(0), vec![t(0), t(1), t(2)]),
                SimTime::new(5.0),
            ),
            QueryRequest::new(
                QuerySpec::new(QueryId::new(1), vec![t(0), t(1), t(2)]),
                SimTime::new(5.0),
            ),
        ];
        let eval = WorkloadEvaluator::new(
            &catalog,
            &timelines,
            &model,
            DiscountRates::new(0.05, 0.05),
            &reqs,
        );
        let outcome = eval.evaluate_order(&[0, 1]).unwrap();
        let first = &outcome.plans[0].plan;
        let second = &outcome.plans[1].plan;
        // The second query's plan cannot start processing before the first
        // finishes occupying the local server.
        assert!(second.service_start >= first.service_start);
        assert!(second.information_value.value() <= first.information_value.value() + 1e-12);
    }

    #[test]
    fn fitness_matches_evaluate_order() {
        let (catalog, timelines) = fixture();
        let model = StylizedCostModel::paper_fig4();
        let reqs = requests();
        let eval = WorkloadEvaluator::new(
            &catalog,
            &timelines,
            &model,
            DiscountRates::new(0.05, 0.05),
            &reqs,
        );
        let perm = Permutation::new(vec![2, 0, 1]).unwrap();
        let by_fitness = eval.fitness(&perm);
        let by_eval = eval
            .evaluate_order(&[2, 0, 1])
            .unwrap()
            .total_information_value;
        assert_eq!(by_fitness, by_eval);
    }

    #[test]
    fn pooled_population_fitness_matches_pointwise() {
        let (catalog, timelines) = fixture();
        let model = StylizedCostModel::paper_fig4();
        let reqs = requests();
        let sequential = WorkloadEvaluator::new(
            &catalog,
            &timelines,
            &model,
            DiscountRates::new(0.05, 0.05),
            &reqs,
        );
        let pooled = WorkloadEvaluator::new(
            &catalog,
            &timelines,
            &model,
            DiscountRates::new(0.05, 0.05),
            &reqs,
        )
        .with_pool(Arc::new(PlannerPool::new(4)));
        assert_eq!(pooled.pool().threads(), 4);
        let perms: Vec<Permutation> = [[0, 1, 2], [2, 1, 0], [1, 0, 2], [0, 2, 1]]
            .iter()
            .map(|o| Permutation::new(o.to_vec()).unwrap())
            .collect();
        let batch = pooled.fitness_population(&perms);
        let pointwise: Vec<f64> = perms.iter().map(|p| sequential.fitness(p)).collect();
        assert_eq!(batch, pointwise);
    }

    #[test]
    #[should_panic(expected = "workload must contain")]
    fn empty_workload_rejected() {
        let (catalog, timelines) = fixture();
        let model = StylizedCostModel::paper_fig4();
        let reqs: Vec<QueryRequest> = vec![];
        let _ = WorkloadEvaluator::new(
            &catalog,
            &timelines,
            &model,
            DiscountRates::new(0.05, 0.05),
            &reqs,
        );
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_order_length_rejected() {
        let (catalog, timelines) = fixture();
        let model = StylizedCostModel::paper_fig4();
        let reqs = requests();
        let eval = WorkloadEvaluator::new(
            &catalog,
            &timelines,
            &model,
            DiscountRates::new(0.05, 0.05),
            &reqs,
        );
        let _ = eval.evaluate_order(&[0]);
    }
}
