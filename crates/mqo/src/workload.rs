//! Workload formation (paper §3.2, step 1).
//!
//! "For each query, we perform a query plan selection task as described
//! earlier and derive a range along the time axis that the query may run.
//! If the ranges of more than two queries are overlapped, we group them
//! into a workload for the next step."
//!
//! A query's *execution range* spans from its submission to the boundary
//! of its plan search (the latest release time that could still improve
//! its information value). Queries whose ranges overlap compete for the
//! same servers in the same period, so they are optimized together;
//! [`form_workloads`] computes the connected components of the interval
//! overlap graph with a sweep.

use ivdss_core::plan::{PlanContext, PlanError, QueryRequest};
use ivdss_core::planner::IvqpPlanner;
use ivdss_costmodel::query::QueryId;
use ivdss_simkernel::time::SimTime;

/// The time range along which one query may run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutionRange {
    /// The query.
    pub query: QueryId,
    /// Range start (the query's submission time).
    pub start: SimTime,
    /// Range end (latest useful release time, plus the plan's service
    /// time).
    pub end: SimTime,
}

impl ExecutionRange {
    /// Creates a range.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    #[must_use]
    pub fn new(query: QueryId, start: SimTime, end: SimTime) -> Self {
        assert!(end >= start, "range end must not precede start");
        ExecutionRange { query, start, end }
    }

    /// Returns `true` if the two ranges overlap (closed intervals).
    #[must_use]
    pub fn overlaps(&self, other: &ExecutionRange) -> bool {
        self.start <= other.end && other.start <= self.end
    }
}

/// Derives the execution range of each request by running the IVQP plan
/// search: the range spans from submission to
/// `max(search boundary, chosen finish)`.
///
/// # Errors
///
/// Propagates [`PlanError`] from the plan search.
pub fn execution_ranges(
    ctx: &PlanContext<'_>,
    requests: &[QueryRequest],
) -> Result<Vec<ExecutionRange>, PlanError> {
    let planner = IvqpPlanner::new();
    requests
        .iter()
        .map(|req| {
            let outcome = planner.search(ctx, req)?;
            let end = outcome.boundary.max(outcome.best.finish);
            Ok(ExecutionRange::new(req.id(), req.submitted_at, end))
        })
        .collect()
}

/// Groups ranges into workloads: connected components of the interval
/// overlap graph, each sorted by range start. Singleton components are
/// workloads of one (no multi-query optimization needed).
///
/// # Examples
///
/// ```
/// use ivdss_costmodel::query::QueryId;
/// use ivdss_mqo::workload::{form_workloads, ExecutionRange};
/// use ivdss_simkernel::time::SimTime;
///
/// let r = |q: u64, a: f64, b: f64| {
///     ExecutionRange::new(QueryId::new(q), SimTime::new(a), SimTime::new(b))
/// };
/// // 0–2 chain via transitive overlap; 3 is isolated.
/// let groups = form_workloads(&[r(0, 0.0, 5.0), r(1, 4.0, 9.0), r(2, 8.0, 12.0), r(3, 20.0, 25.0)]);
/// assert_eq!(groups.len(), 2);
/// assert_eq!(groups[0].len(), 3);
/// assert_eq!(groups[1], vec![QueryId::new(3)]);
/// ```
#[must_use]
pub fn form_workloads(ranges: &[ExecutionRange]) -> Vec<Vec<QueryId>> {
    let mut sorted: Vec<ExecutionRange> = ranges.to_vec();
    sorted.sort_by(|a, b| a.start.cmp(&b.start).then_with(|| a.query.cmp(&b.query)));

    let mut groups: Vec<Vec<QueryId>> = Vec::new();
    let mut current: Vec<QueryId> = Vec::new();
    let mut current_end: Option<SimTime> = None;
    for range in sorted {
        match current_end {
            Some(end) if range.start <= end => {
                current.push(range.query);
                current_end = Some(end.max(range.end));
            }
            _ => {
                if !current.is_empty() {
                    groups.push(std::mem::take(&mut current));
                }
                current.push(range.query);
                current_end = Some(range.end);
            }
        }
    }
    if !current.is_empty() {
        groups.push(current);
    }
    groups
}

/// Forms batch windows from a *live* admission queue (paper §3.2 applied
/// online): the pending requests of a serving engine are grouped into
/// workloads exactly as [`form_workloads`] groups an offline batch, except
/// that each range is clamped to start no earlier than `now` — a query
/// that has waited in the queue can no longer execute at its original
/// submission time, so its window begins at the present.
///
/// # Errors
///
/// Propagates [`PlanError`] from the per-query plan search.
pub fn live_batch_windows(
    ctx: &PlanContext<'_>,
    pending: &[QueryRequest],
    now: SimTime,
) -> Result<Vec<Vec<QueryId>>, PlanError> {
    let ranges = execution_ranges(ctx, pending)?;
    let clamped: Vec<ExecutionRange> = ranges
        .into_iter()
        .map(|r| {
            let start = r.start.max(now);
            ExecutionRange::new(r.query, start, r.end.max(start))
        })
        .collect();
    Ok(form_workloads(&clamped))
}

/// The average pairwise overlap rate of a set of ranges — the knob the
/// paper varies on the x-axis of Fig. 9(a). Defined as the fraction of
/// query pairs whose ranges overlap.
#[must_use]
pub fn overlap_rate(ranges: &[ExecutionRange]) -> f64 {
    let n = ranges.len();
    if n < 2 {
        return 0.0;
    }
    let mut overlapping = 0usize;
    let mut pairs = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            pairs += 1;
            if ranges[i].overlaps(&ranges[j]) {
                overlapping += 1;
            }
        }
    }
    overlapping as f64 / pairs as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(q: u64, a: f64, b: f64) -> ExecutionRange {
        ExecutionRange::new(QueryId::new(q), SimTime::new(a), SimTime::new(b))
    }

    #[test]
    fn overlap_predicate() {
        assert!(r(0, 0.0, 5.0).overlaps(&r(1, 5.0, 9.0))); // touching counts
        assert!(r(0, 0.0, 5.0).overlaps(&r(1, 2.0, 3.0))); // containment
        assert!(!r(0, 0.0, 5.0).overlaps(&r(1, 5.1, 9.0)));
    }

    #[test]
    fn disjoint_ranges_form_singletons() {
        let groups = form_workloads(&[r(0, 0.0, 1.0), r(1, 2.0, 3.0), r(2, 4.0, 5.0)]);
        assert_eq!(groups.len(), 3);
        for g in &groups {
            assert_eq!(g.len(), 1);
        }
    }

    #[test]
    fn transitive_overlap_merges() {
        // 0 overlaps 1, 1 overlaps 2, 0 does not overlap 2 — still one group.
        let groups = form_workloads(&[r(0, 0.0, 4.0), r(1, 3.0, 8.0), r(2, 7.0, 10.0)]);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 3);
    }

    #[test]
    fn unsorted_input_handled() {
        let groups = form_workloads(&[r(2, 8.0, 9.0), r(0, 0.0, 1.0), r(1, 0.5, 8.5)]);
        assert_eq!(groups.len(), 1);
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(form_workloads(&[]).is_empty());
    }

    #[test]
    fn overlap_rate_extremes() {
        assert_eq!(overlap_rate(&[]), 0.0);
        assert_eq!(overlap_rate(&[r(0, 0.0, 1.0)]), 0.0);
        // All overlap.
        let all = [r(0, 0.0, 10.0), r(1, 1.0, 9.0), r(2, 2.0, 8.0)];
        assert_eq!(overlap_rate(&all), 1.0);
        // None overlap.
        let none = [r(0, 0.0, 1.0), r(1, 2.0, 3.0), r(2, 4.0, 5.0)];
        assert_eq!(overlap_rate(&none), 0.0);
        // Half: 0-1 overlap, 0-2 and 1-2 don't → 1/3.
        let third = [r(0, 0.0, 2.0), r(1, 1.0, 3.0), r(2, 10.0, 11.0)];
        assert!((overlap_rate(&third) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "precede")]
    fn inverted_range_rejected() {
        let _ = r(0, 5.0, 1.0);
    }
}
