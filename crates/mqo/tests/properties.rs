//! Property-based tests for workload formation and scheduling.

use ivdss_catalog::ids::TableId;
use ivdss_catalog::replica::{ReplicaSpec, ReplicationPlan};
use ivdss_catalog::synthetic::{synthetic_catalog, SyntheticConfig};
use ivdss_catalog::Catalog;
use ivdss_core::plan::QueryRequest;
use ivdss_core::value::{BusinessValue, DiscountRates};
use ivdss_costmodel::model::StylizedCostModel;
use ivdss_costmodel::query::{QueryId, QuerySpec};
use ivdss_ga::engine::GaConfig;
use ivdss_mqo::evaluate::WorkloadEvaluator;
use ivdss_mqo::scheduler::{FifoScheduler, MqoScheduler, WorkloadScheduler};
use ivdss_mqo::workload::{execution_ranges, form_workloads, live_batch_windows, ExecutionRange};
use ivdss_replication::timelines::{SyncMode, SyncTimelines};
use ivdss_simkernel::time::SimTime;
use proptest::prelude::*;

fn fixture() -> (Catalog, SyncTimelines) {
    let base = synthetic_catalog(&SyntheticConfig {
        tables: 6,
        sites: 2,
        replicated_tables: 0,
        seed: 99,
        ..SyntheticConfig::default()
    })
    .unwrap();
    let mut plan = ReplicationPlan::new();
    for i in 0..4 {
        plan.add(TableId::new(i), ReplicaSpec::new(4.0));
    }
    let catalog = base.with_replication(plan).unwrap();
    let timelines = SyncTimelines::from_plan(catalog.replication(), SyncMode::Deterministic);
    (catalog, timelines)
}

proptest! {
    /// Workload formation: every query lands in exactly one group, and
    /// queries in different groups never overlap.
    #[test]
    fn workloads_partition_queries(
        ranges in prop::collection::vec((0.0..100.0f64, 0.0..20.0f64), 1..30)
    ) {
        let ranges: Vec<ExecutionRange> = ranges
            .iter()
            .enumerate()
            .map(|(i, &(start, len))| {
                ExecutionRange::new(
                    QueryId::new(i as u64),
                    SimTime::new(start),
                    SimTime::new(start + len),
                )
            })
            .collect();
        let groups = form_workloads(&ranges);
        let total: usize = groups.iter().map(Vec::len).sum();
        prop_assert_eq!(total, ranges.len());
        // Cross-group pairs never overlap.
        for (gi, g) in groups.iter().enumerate() {
            for (gj, h) in groups.iter().enumerate() {
                if gi == gj { continue; }
                for &qa in g {
                    for &qb in h {
                        let ra = ranges.iter().find(|r| r.query == qa).unwrap();
                        let rb = ranges.iter().find(|r| r.query == qb).unwrap();
                        prop_assert!(!ra.overlaps(rb));
                    }
                }
            }
        }
    }

    /// Any evaluated order yields exactly one plan per query, causally
    /// timed, and the reported total equals the sum of plan IVs.
    #[test]
    fn evaluated_orders_are_consistent(
        seed in any::<u64>(),
        n in 1usize..6,
        spacing in 0.1..5.0f64
    ) {
        let (catalog, timelines) = fixture();
        let model = StylizedCostModel::paper_fig4();
        let requests: Vec<QueryRequest> = (0..n)
            .map(|i| {
                QueryRequest::new(
                    QuerySpec::new(
                        QueryId::new(i as u64),
                        vec![TableId::new((i % 4) as u32)],
                    ),
                    SimTime::new(10.0 + spacing * i as f64),
                )
                .with_business_value(BusinessValue::new(1.0 + (seed % 3) as f64))
            })
            .collect();
        let evaluator = WorkloadEvaluator::new(
            &catalog,
            &timelines,
            &model,
            DiscountRates::new(0.1, 0.1),
            &requests,
        );
        // A deterministic pseudo-random order derived from the seed.
        let mut order: Vec<usize> = (0..n).collect();
        order.rotate_left((seed as usize) % n.max(1));
        let outcome = evaluator.evaluate_order(&order).unwrap();
        prop_assert_eq!(outcome.plans.len(), n);
        let sum: f64 = outcome
            .plans
            .iter()
            .map(|p| p.plan.information_value.value())
            .sum();
        prop_assert!((sum - outcome.total_information_value).abs() < 1e-9);
        for p in &outcome.plans {
            let req = &requests[p.request_index];
            prop_assert!(p.plan.execute_at >= req.submitted_at);
            prop_assert!(p.plan.finish >= p.plan.service_start);
        }
    }

    /// Live batch windows partition the pending queue, and with the
    /// clock at zero (before every submission) they agree exactly with
    /// offline workload formation over the unclamped execution ranges.
    #[test]
    fn live_batch_windows_partition_pending_queue(
        n in 1usize..8,
        spacing in 0.1..6.0f64,
        now in 0.0..40.0f64
    ) {
        let (catalog, timelines) = fixture();
        let model = StylizedCostModel::paper_fig4();
        let ctx = ivdss_core::plan::PlanContext {
            catalog: &catalog,
            timelines: &timelines,
            model: &model,
            rates: DiscountRates::new(0.1, 0.1),
            queues: &ivdss_core::plan::NoQueues,
        };
        let pending: Vec<QueryRequest> = (0..n)
            .map(|i| {
                QueryRequest::new(
                    QuerySpec::new(
                        QueryId::new(i as u64),
                        vec![TableId::new((i % 4) as u32), TableId::new(4)],
                    ),
                    SimTime::new(spacing * i as f64),
                )
            })
            .collect();

        let windows = live_batch_windows(&ctx, &pending, SimTime::new(now)).unwrap();
        let mut seen: Vec<u64> = windows
            .iter()
            .flatten()
            .map(|q| q.raw())
            .collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..n as u64).collect::<Vec<_>>());

        let offline = live_batch_windows(&ctx, &pending, SimTime::ZERO).unwrap();
        let ranges = execution_ranges(&ctx, &pending).unwrap();
        prop_assert_eq!(offline, form_workloads(&ranges));
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The GA scheduler never returns less total IV than FIFO (elitism +
    /// the identity permutation is seeded into the population).
    #[test]
    fn mqo_at_least_fifo(seed in any::<u64>(), n in 2usize..5) {
        let (catalog, timelines) = fixture();
        let model = StylizedCostModel::paper_fig4();
        let requests: Vec<QueryRequest> = (0..n)
            .map(|i| {
                QueryRequest::new(
                    QuerySpec::new(
                        QueryId::new(i as u64),
                        vec![TableId::new((i % 3) as u32), TableId::new(((i + 1) % 3) as u32)],
                    ),
                    SimTime::new(10.0 + 0.3 * i as f64),
                )
            })
            .collect();
        let evaluator = WorkloadEvaluator::new(
            &catalog,
            &timelines,
            &model,
            DiscountRates::new(0.15, 0.15),
            &requests,
        );
        let ga = GaConfig { seed, population: 10, generations: 8, parents: 4, elites: 2, mutation_rate: 0.3 };
        let mqo = MqoScheduler::with_config(ga).schedule(&evaluator).unwrap();
        let fifo = FifoScheduler::new().schedule(&evaluator).unwrap();
        prop_assert!(
            mqo.total_information_value >= fifo.total_information_value - 1e-9,
            "MQO {} < FIFO {}",
            mqo.total_information_value,
            fifo.total_information_value
        );
    }
}
