//! Cluster-vs-single differential suite.
//!
//! Two anchor properties over 100 seeded workloads each:
//!
//! 1. **Degeneracy**: a 1-shard cluster is *bit-identical* — same
//!    plans, same delivered IV, same metrics snapshot — to a bare
//!    [`ServeEngine`] fed the same arrival sequence. The cluster layer
//!    (routing, restricted timelines, steal pass, lockstep driving)
//!    must add exactly nothing when there is nothing to shard.
//! 2. **Stealing is non-destructive**: on a 2-shard cluster where one
//!    shard owns every replica (so the other is a pure helper that can
//!    only receive stolen work), total realized IV with work stealing
//!    enabled is ≥ the same seeded run without it — the IV guard only
//!    ever moves a query when the move strictly beats staying put.

use ivdss_catalog::catalog::Catalog;
use ivdss_catalog::ids::{ShardId, TableId};
use ivdss_catalog::placement::PlacementStrategy;
use ivdss_catalog::sharding::{ShardAssignment, ShardStrategy};
use ivdss_catalog::synthetic::{synthetic_catalog, SyntheticConfig};
use ivdss_cluster::{Cluster, ClusterConfig, ShardRouter, ShardTimelines};
use ivdss_core::plan::QueryRequest;
use ivdss_core::value::DiscountRates;
use ivdss_costmodel::model::StylizedCostModel;
use ivdss_costmodel::query::{QueryId, QuerySpec};
use ivdss_replication::timelines::{SyncMode, SyncTimelines};
use ivdss_serve::clock::DesClock;
use ivdss_serve::engine::{Completion, ServeConfig, ServeEngine};
use ivdss_serve::metrics::MetricsSnapshot;
use ivdss_simkernel::rng::SeedFactory;
use ivdss_simkernel::time::SimDuration;
use ivdss_workloads::stream::ArrivalStream;
use ivdss_workloads::synthetic::{random_queries, RandomQueryConfig};

const SEED_COUNT: u64 = 100;
const QUERIES: usize = 10;

fn scenario_catalog(seed: u64, replicated: usize) -> Catalog {
    synthetic_catalog(&SyntheticConfig {
        tables: 8,
        sites: 3,
        placement: PlacementStrategy::Skewed,
        replicated_tables: replicated,
        mean_sync_period: 5.0,
        seed,
        ..SyntheticConfig::default()
    })
    .expect("differential catalog configuration is valid")
}

fn arrivals(seed: u64) -> Vec<QueryRequest> {
    let seeds = SeedFactory::new(seed);
    let templates = random_queries(&RandomQueryConfig {
        queries: 5,
        tables: 8,
        max_tables_per_query: 4,
        weight_range: (0.8, 2.0),
        seed: seeds.seed_for("queries"),
    });
    ArrivalStream::new(templates, 2.0, seeds.seed_for("arrivals")).take_requests(QUERIES)
}

/// Runs a bare engine over the arrival sequence; returns its final
/// snapshot plus every completion in dispatch order.
fn run_bare(
    catalog: &Catalog,
    timelines: &SyncTimelines,
    config: ServeConfig,
    requests: &[QueryRequest],
) -> (MetricsSnapshot, Vec<Completion>) {
    let model = StylizedCostModel::paper_fig4();
    let mut engine = ServeEngine::new(catalog, timelines, &model, config, DesClock::new());
    let mut completed = Vec::new();
    for request in requests {
        let report = engine.submit(request.clone()).expect("bare submit plans");
        completed.extend(report.completed);
    }
    completed.extend(engine.drain().expect("bare drain plans"));
    (engine.snapshot(), completed)
}

/// Runs an N-shard cluster over the arrival sequence; returns the
/// per-shard snapshots plus every completion (with its shard tag) in
/// dispatch order, and the steal count.
fn run_cluster(
    catalog: &Catalog,
    n_shards: usize,
    config: ClusterConfig,
    requests: &[QueryRequest],
    seed: u64,
) -> (Vec<MetricsSnapshot>, Vec<(ShardId, Completion)>, u64) {
    let timelines = SyncTimelines::from_plan(catalog.replication(), SyncMode::Deterministic);
    let assignment = ShardAssignment::partition(catalog, n_shards, ShardStrategy::Balanced, seed);
    let router = ShardRouter::new(assignment);
    let shard_timelines = ShardTimelines::build(&timelines, &router);
    let model = StylizedCostModel::paper_fig4();
    let mut cluster = Cluster::new(
        catalog,
        &shard_timelines,
        &model,
        router,
        config,
        DesClock::new(),
    );
    let mut completed = Vec::new();
    for request in requests {
        let report = cluster
            .submit(request.clone())
            .expect("cluster submit plans");
        completed.extend(report.completed);
    }
    completed.extend(cluster.drain().expect("cluster drain plans").completed);
    let snapshot = cluster.snapshot();
    (snapshot.shards, completed, snapshot.steals)
}

#[test]
fn one_shard_cluster_is_bit_identical_to_a_bare_engine() {
    for seed in 0..SEED_COUNT {
        let catalog = scenario_catalog(SeedFactory::new(seed).seed_for("catalog"), 4);
        let timelines = SyncTimelines::from_plan(catalog.replication(), SyncMode::Deterministic);
        let requests = arrivals(seed);
        let config = ServeConfig::new(DiscountRates::new(0.01, 0.05));

        let (bare_snapshot, bare_completed) = run_bare(&catalog, &timelines, config, &requests);
        let cluster_config = ClusterConfig {
            serve: config,
            steal: true,
        };
        let (shards, cluster_completed, steals) =
            run_cluster(&catalog, 1, cluster_config, &requests, seed);

        assert_eq!(steals, 0, "seed {seed}: nothing to steal with one shard");
        assert_eq!(shards.len(), 1);
        // Plans and IV, completion by completion, bit for bit.
        assert_eq!(
            bare_completed.len(),
            cluster_completed.len(),
            "seed {seed}: completion counts diverged"
        );
        for (bare, (shard, clustered)) in bare_completed.iter().zip(&cluster_completed) {
            assert_eq!(*shard, ShardId::new(0));
            assert_eq!(bare, clustered, "seed {seed}: completion diverged");
        }
        // The full metrics registry, including histograms and
        // time-weighted queue depths.
        assert_eq!(
            bare_snapshot, shards[0],
            "seed {seed}: metrics snapshot diverged"
        );
        assert_eq!(
            bare_snapshot.to_text(),
            shards[0].to_text(),
            "seed {seed}: metrics exposition diverged"
        );
    }
}

/// A workload in which every query touches the single replicated table,
/// so with 2 shards every query routes to the owner (shard 0) and the
/// helper shard can only receive stolen work.
fn helper_shard_arrivals(catalog: &Catalog, seed: u64) -> Vec<QueryRequest> {
    let replicated: Vec<TableId> = catalog
        .replication()
        .iter()
        .map(|(table, _)| table)
        .collect();
    assert_eq!(replicated.len(), 1, "scenario wants exactly one replica");
    let anchor = replicated[0];
    let table_count = catalog.table_count() as u64;
    let templates: Vec<QuerySpec> = (0..4u64)
        .map(|i| {
            // Footprint: the replicated anchor plus one or two seeded
            // extra base tables — enough variety to exercise planning
            // without ever escaping the owner's coverage.
            let mut tables = vec![anchor];
            let extra = TableId::new(((seed.wrapping_mul(31) + i * 7) % table_count) as u32);
            if extra != anchor {
                tables.push(extra);
            }
            QuerySpec::new(QueryId::new(i), tables)
        })
        .collect();
    ArrivalStream::new(
        templates,
        0.5,
        SeedFactory::new(seed).seed_for("helper-arrivals"),
    )
    .take_requests(QUERIES)
}

#[test]
fn stealing_never_lowers_total_realized_iv() {
    let mut total_steals = 0u64;
    for seed in 0..SEED_COUNT {
        let catalog = scenario_catalog(SeedFactory::new(seed).seed_for("catalog"), 1);
        let requests = helper_shard_arrivals(&catalog, seed);
        // A zero-tolerance dispatch gate makes the owner's queue build
        // up between arrivals, giving the steal pass real work. A
        // CL-only discount makes IV strictly decreasing in finish time,
        // so executing now on the idle helper beats waiting out the
        // owner's backlog (steals fire), and removing work from a queue
        // can only ever pull the remaining finish times earlier — which
        // makes the ≥ assertion below exact rather than statistical.
        let mut serve = ServeConfig::new(DiscountRates::new(0.05, 0.0));
        serve.dispatch_backlog = SimDuration::ZERO;

        let (with_shards, _, steals) = run_cluster(
            &catalog,
            2,
            ClusterConfig { serve, steal: true },
            &requests,
            seed,
        );
        let (without_shards, _, no_steals) = run_cluster(
            &catalog,
            2,
            ClusterConfig {
                serve,
                steal: false,
            },
            &requests,
            seed,
        );
        assert_eq!(no_steals, 0, "seed {seed}: steal pass disabled");
        total_steals += steals;

        let iv_with: f64 = with_shards.iter().map(|s| s.total_delivered_iv).sum();
        let iv_without: f64 = without_shards.iter().map(|s| s.total_delivered_iv).sum();
        assert!(
            iv_with >= iv_without - 1e-9,
            "seed {seed}: stealing lowered total IV ({iv_with} < {iv_without})"
        );
        // No query is lost either way.
        let delivered_with: u64 = with_shards.iter().map(|s| s.queries_completed).sum();
        let shed_with: u64 = with_shards.iter().map(|s| s.queries_shed).sum();
        assert_eq!(
            delivered_with + shed_with,
            QUERIES as u64,
            "seed {seed}: completions + shed must cover every submission"
        );
    }
    assert!(
        total_steals > 0,
        "the scenario must actually exercise work stealing"
    );
}
