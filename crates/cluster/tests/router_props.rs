//! Property suite for the shard router, over ~200 random catalogs.
//!
//! The contract under test: every query either routes to a live shard
//! that *fully* covers its replicated footprint, or is explicitly
//! marked partial — with the uncovered tables enumerated so the shard's
//! planner serves them through the remote-base fallback. Routing is a
//! total function whenever any shard is live, deterministic, and
//! optimal (no live shard covers strictly more than the chosen one).

use std::collections::BTreeSet;

use ivdss_catalog::catalog::Catalog;
use ivdss_catalog::ids::{ShardId, TableId};
use ivdss_catalog::placement::PlacementStrategy;
use ivdss_catalog::sharding::{ShardAssignment, ShardStrategy};
use ivdss_catalog::synthetic::{synthetic_catalog, SyntheticConfig};
use ivdss_cluster::ShardRouter;
use ivdss_costmodel::query::QueryId;
use proptest::prelude::*;

/// Builds a random-but-valid catalog from raw draws.
fn build_catalog(tables: usize, sites: usize, replicated_raw: usize, seed: u64) -> Catalog {
    synthetic_catalog(&SyntheticConfig {
        tables,
        sites,
        placement: PlacementStrategy::Uniform,
        replicated_tables: replicated_raw % (tables + 1),
        mean_sync_period: 5.0,
        seed,
        ..SyntheticConfig::default()
    })
    .expect("synthetic catalog from bounded draws is valid")
}

/// Decodes a bitmask into a table footprint.
fn footprint(catalog: &Catalog, mask: u16) -> Vec<TableId> {
    (0..catalog.table_count())
        .filter(|i| mask & (1 << (i % 16)) != 0)
        .map(|i| TableId::new(i as u32))
        .collect()
}

/// Decodes a bitmask into a down-set.
fn down_set(n_shards: usize, mask: u8) -> BTreeSet<ShardId> {
    (0..n_shards)
        .filter(|i| mask & (1 << (i % 8)) != 0)
        .map(|i| ShardId::new(i as u32))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Full-coverage-or-explicit-fallback, optimality, tie-breaking and
    /// determinism of one routing decision.
    #[test]
    fn every_query_routes_fully_or_explicitly_partial(
        tables in 2usize..12,
        sites in 1usize..4,
        replicated_raw in 0usize..12,
        n_shards in 1usize..5,
        by_site in any::<bool>(),
        seed in any::<u64>(),
        query_raw in any::<u64>(),
        footprint_mask in any::<u16>(),
        down_mask in any::<u8>(),
    ) {
        let catalog = build_catalog(tables, sites, replicated_raw, seed);
        let strategy = if by_site { ShardStrategy::BySite } else { ShardStrategy::Balanced };
        let assignment = ShardAssignment::partition(&catalog, n_shards, strategy, seed);
        let router = ShardRouter::new(assignment);
        let query = QueryId::new(query_raw);
        let tables = footprint(&catalog, footprint_mask);
        let down = down_set(n_shards, down_mask);
        let live: Vec<ShardId> = router
            .assignment()
            .shards()
            .filter(|s| !down.contains(s))
            .collect();

        let decision = router.route(&catalog, query, &tables, &down);

        // Total iff any shard is live.
        prop_assert_eq!(decision.is_some(), !live.is_empty());
        let Some(decision) = decision else {
            continue;
        };

        // Never routes to a down shard.
        prop_assert!(!down.contains(&decision.shard));

        let replicated: Vec<TableId> = tables
            .iter()
            .copied()
            .filter(|t| catalog.is_replicated(*t))
            .collect();
        let owned = |shard: ShardId| -> usize {
            replicated
                .iter()
                .filter(|t| router.assignment().owner(**t) == Some(shard))
                .count()
        };

        // Coverage accounting is exact: covered + missing partitions the
        // replicated footprint, and `covered` is what the shard owns.
        prop_assert_eq!(decision.covered + decision.missing.len(), replicated.len());
        prop_assert_eq!(decision.covered, owned(decision.shard));
        for table in &decision.missing {
            prop_assert!(catalog.is_replicated(*table));
            prop_assert_ne!(router.assignment().owner(*table), Some(decision.shard));
        }
        // Full coverage is exactly "nothing missing": either the query
        // routes to a full-coverage shard, or the partial fallback is
        // explicit about every table it will read from base.
        prop_assert_eq!(decision.is_full(), decision.missing.is_empty());

        // Optimality: no live shard owns strictly more of the footprint.
        for shard in &live {
            prop_assert!(owned(*shard) <= decision.covered);
        }
        // Tie-break: among live shards with maximal coverage the lowest
        // id wins (unreplicated footprints spread by query id instead).
        if !replicated.is_empty() {
            let best = live
                .iter()
                .copied()
                .filter(|s| owned(*s) == decision.covered)
                .min()
                .expect("the chosen shard is live and maximal");
            prop_assert_eq!(decision.shard, best);
        }

        // Determinism: the same inputs route the same way.
        prop_assert_eq!(router.route(&catalog, query, &tables, &down), Some(decision));
    }
}
