//! Golden-trace snapshot of a seeded 3-shard cluster run.
//!
//! One fixed scenario — catalog, BySite shard assignment, fault plan,
//! a mid-run shard outage and a steal-friendly configuration — runs
//! with one shared recording trace and its rendered, shard-tagged log
//! is compared **byte for byte** against the checked-in fixture
//! `tests/fixtures/golden_cluster_trace.txt`. Any change to routing
//! order, steal decisions, failover accounting, event payloads or
//! float formatting shows up as a fixture diff that has to be reviewed
//! and re-blessed deliberately:
//!
//! ```text
//! GOLDEN_BLESS=1 cargo test -p ivdss-cluster --test golden_cluster_trace
//! ```
//!
//! A second in-process run of the identical scenario must also render
//! identical bytes, so run-to-run determinism is asserted even while a
//! bless is in progress.

use std::sync::Arc;

use ivdss_catalog::ids::ShardId;
use ivdss_catalog::placement::PlacementStrategy;
use ivdss_catalog::sharding::{ShardAssignment, ShardStrategy};
use ivdss_catalog::synthetic::{synthetic_catalog, SyntheticConfig};
use ivdss_cluster::{Cluster, ClusterConfig, ShardOutage, ShardRouter, ShardTimelines};
use ivdss_core::value::DiscountRates;
use ivdss_costmodel::model::StylizedCostModel;
use ivdss_faults::{FaultConfig, FaultPlan};
use ivdss_obs::{Trace, Tracer};
use ivdss_replication::timelines::{SyncMode, SyncTimelines};
use ivdss_serve::clock::DesClock;
use ivdss_serve::engine::ServeConfig;
use ivdss_simkernel::rng::SeedFactory;
use ivdss_simkernel::time::{SimDuration, SimTime};
use ivdss_workloads::stream::ArrivalStream;
use ivdss_workloads::synthetic::{random_queries, RandomQueryConfig};

const SEED: u64 = 0xC1u64;
const SHARDS: usize = 3;
const QUERIES: usize = 16;

/// Runs the fixed golden scenario once, recording into a fresh trace,
/// and returns the rendered bytes.
fn run_golden() -> String {
    let seeds = SeedFactory::new(SEED);
    let catalog = synthetic_catalog(&SyntheticConfig {
        tables: 9,
        sites: 3,
        placement: PlacementStrategy::Uniform,
        replicated_tables: 6,
        mean_sync_period: 5.0,
        seed: seeds.seed_for("catalog"),
        ..SyntheticConfig::default()
    })
    .expect("golden catalog configuration is valid");
    let timelines = SyncTimelines::from_plan(catalog.replication(), SyncMode::Deterministic);
    let assignment = ShardAssignment::partition(
        &catalog,
        SHARDS,
        ShardStrategy::BySite,
        seeds.seed_for("shards"),
    );
    let router = ShardRouter::new(assignment);
    let shard_timelines = ShardTimelines::build(&timelines, &router);
    let model = StylizedCostModel::paper_fig4();
    let faults = FaultPlan::generate(
        &FaultConfig {
            slip_probability: 0.3,
            drop_probability: 0.1,
            slip_delay: (1.0, 8.0),
            outage_mtbf: 120.0,
            outage_duration: (5.0, 15.0),
            jitter: (1.0, 1.3),
            horizon: SimTime::new(200.0),
        },
        &timelines,
        catalog.site_count(),
        seeds.seed_for("faults"),
    );
    let templates = random_queries(&RandomQueryConfig {
        queries: 6,
        tables: 9,
        max_tables_per_query: 3,
        weight_range: (0.8, 2.0),
        seed: seeds.seed_for("queries"),
    });
    let mut stream = ArrivalStream::new(templates, 0.6, seeds.seed_for("arrivals"));

    // A zero-tolerance dispatch gate and a CL-dominant discount keep
    // queues building and make idle shards worth stealing for, so the
    // trace exercises routing, stealing, outage failover and
    // completion in one run.
    let mut serve = ServeConfig::new(DiscountRates::new(0.05, 0.01));
    serve.dispatch_backlog = SimDuration::ZERO;

    let trace = Arc::new(Trace::new());
    let tracer = Tracer::recording(Arc::clone(&trace));
    let mut cluster = Cluster::new(
        &catalog,
        &shard_timelines,
        &model,
        router,
        ClusterConfig { serve, steal: true },
        DesClock::new(),
    )
    .with_tracer(tracer)
    .with_faults(faults)
    .with_shard_outages(vec![ShardOutage::new(
        ShardId::new(1),
        SimTime::new(4.0),
        SimTime::new(12.0),
    )]);

    for _ in 0..QUERIES {
        cluster
            .submit(stream.next_request())
            .expect("golden submission plans");
    }
    cluster.drain().expect("golden drain plans");
    trace.render()
}

#[test]
fn golden_cluster_trace_matches_fixture_byte_for_byte() {
    let rendered = run_golden();

    // In-process determinism first: two identical runs, identical bytes.
    let again = run_golden();
    assert_eq!(
        rendered.as_bytes(),
        again.as_bytes(),
        "two identical seeded cluster runs must render byte-identical traces"
    );

    // The scenario must exercise the interesting cluster paths, or the
    // golden file degenerates into a vacuous snapshot.
    for needle in [
        "shard_routed",
        "shard_stolen",
        "shard_outage_started",
        "shard_failover",
        " shard=0 ",
        " shard=1 ",
        " shard=2 ",
        "coverage=full",
        " submitted ",
        " completed ",
    ] {
        assert!(
            rendered.contains(needle),
            "golden cluster scenario no longer exercises {needle:?}"
        );
    }

    let fixture = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/golden_cluster_trace.txt"
    );
    if std::env::var_os("GOLDEN_BLESS").is_some() {
        std::fs::write(fixture, &rendered).expect("bless writes the fixture");
    }
    let expected = std::fs::read_to_string(fixture).expect(
        "golden fixture missing — regenerate with \
         GOLDEN_BLESS=1 cargo test -p ivdss-cluster --test golden_cluster_trace",
    );
    assert!(
        rendered == expected,
        "trace diverged from tests/fixtures/golden_cluster_trace.txt \
         (review the diff, then re-bless with GOLDEN_BLESS=1):\n\
         rendered {} bytes, fixture {} bytes",
        rendered.len(),
        expected.len()
    );
}
