//! The shared sync-phase memo across a cluster of engines.
//!
//! Three pins:
//!
//! 1. **Wiring**: every shard engine of a [`Cluster`] plans against the
//!    *same* [`PhaseMemo`] handle the cluster exposes, and cluster
//!    traffic actually populates it.
//! 2. **Cross-engine reuse**: an engine that shares another engine's
//!    memo answers phase-equivalent gather waves from the frontiers the
//!    first engine recorded — its [`PlanAudit`] memo-hit counters beat
//!    an identical engine running on a private memo — while choosing
//!    bit-identical plans (the memo only ever prunes dominated
//!    subsets).
//! 3. **Degeneracy**: with the memo shared and the plan cache off (so
//!    every dispatch runs the memoized fresh search), a 1-shard cluster
//!    is still bit-identical to a bare engine.
//!
//! Note on topology: under a *strict partition* two shards never own
//! the same replicated table, and [`PhaseKey`] encodes the replicated
//! subset, so routed cluster traffic cannot collide across shards —
//! which is exactly why sharing the memo leaves every golden trace
//! byte-identical. Cross-engine reuse therefore fires when engines see
//! the *same* replication plan (pin 2), and is proven safe-by-keying
//! for engines that do not (pin 1's disjoint shards).
//!
//! [`PhaseKey`]: ivdss_core::memo::PhaseKey
//! [`PlanAudit`]: ivdss_obs::PlanAudit

use std::sync::Arc;

use ivdss_catalog::catalog::Catalog;
use ivdss_catalog::ids::{ShardId, TableId};
use ivdss_catalog::placement::PlacementStrategy;
use ivdss_catalog::replica::{ReplicaSpec, ReplicationPlan};
use ivdss_catalog::sharding::{ShardAssignment, ShardStrategy};
use ivdss_catalog::synthetic::{synthetic_catalog, SyntheticConfig};
use ivdss_cluster::{Cluster, ClusterConfig, ShardRouter, ShardTimelines};
use ivdss_core::plan::QueryRequest;
use ivdss_core::value::DiscountRates;
use ivdss_costmodel::model::StylizedCostModel;
use ivdss_costmodel::query::{QueryId, QuerySpec};
use ivdss_replication::timelines::{SyncMode, SyncTimelines};
use ivdss_serve::clock::DesClock;
use ivdss_serve::engine::{Completion, ServeConfig, ServeEngine};
use ivdss_simkernel::rng::SeedFactory;
use ivdss_simkernel::time::SimTime;
use ivdss_workloads::stream::ArrivalStream;
use ivdss_workloads::synthetic::{random_queries, RandomQueryConfig};

/// A fresh-search configuration: the plan cache is off so every
/// dispatch runs the memoized scatter-and-gather search and leaves a
/// [`SearchAudit`](ivdss_obs::SearchAudit) with memo counters.
fn fresh_search_config() -> ServeConfig {
    let mut config = ServeConfig::new(DiscountRates::new(0.01, 0.05));
    config.use_cache = false;
    config
}

/// Two replicated tables on distinct cycles: enough gather waves per
/// search to fill the memo, and phase-equivalence across repeats.
fn two_replica_catalog() -> Catalog {
    let base = synthetic_catalog(&SyntheticConfig {
        tables: 4,
        sites: 2,
        replicated_tables: 0,
        ..SyntheticConfig::default()
    })
    .expect("base catalog configuration is valid");
    let mut plan = ReplicationPlan::new();
    plan.add(TableId::new(0), ReplicaSpec::new(8.0));
    plan.add(TableId::new(1), ReplicaSpec::new(2.0));
    base.with_replication(plan)
        .expect("replication plan fits the catalog")
}

/// The replicated-footprint workload of [`two_replica_catalog`]: the
/// same two-replica query shape submitted at a spread of phases.
fn replica_workload(first_id: u64) -> Vec<QueryRequest> {
    [11.0, 12.5, 17.0, 27.0]
        .iter()
        .enumerate()
        .map(|(i, &at)| {
            QueryRequest::new(
                QuerySpec::new(
                    QueryId::new(first_id + i as u64),
                    vec![TableId::new(0), TableId::new(1)],
                ),
                SimTime::new(at),
            )
        })
        .collect()
}

/// Drives `requests` through a bare engine; returns every completion in
/// dispatch order plus the summed memo-hit/miss counters of the
/// dispatch-time search audits.
fn run_engine(
    engine: &mut ServeEngine<'_, DesClock>,
    requests: &[QueryRequest],
) -> (Vec<Completion>, usize, usize) {
    let mut completed = Vec::new();
    for request in requests {
        let report = engine.submit(request.clone()).expect("submit plans");
        completed.extend(report.completed);
    }
    completed.extend(engine.drain().expect("drain plans"));
    let (mut hits, mut misses) = (0, 0);
    for request in requests {
        let audit = engine
            .plan_audit(request.id())
            .expect("audited fresh search");
        let search = audit.search.as_ref().expect("fresh search leaves a record");
        hits += search.memo_hits;
        misses += search.memo_misses;
    }
    (completed, hits, misses)
}

#[test]
fn every_shard_engine_plans_against_the_cluster_memo() {
    let catalog = synthetic_catalog(&SyntheticConfig {
        tables: 8,
        sites: 3,
        placement: PlacementStrategy::Skewed,
        replicated_tables: 6,
        mean_sync_period: 5.0,
        seed: 17,
        ..SyntheticConfig::default()
    })
    .expect("cluster catalog configuration is valid");
    let timelines = SyncTimelines::from_plan(catalog.replication(), SyncMode::Deterministic);
    let assignment = ShardAssignment::partition(&catalog, 3, ShardStrategy::Balanced, 17);
    let router = ShardRouter::new(assignment);
    let shard_timelines = ShardTimelines::build(&timelines, &router);
    let model = StylizedCostModel::paper_fig4();
    let mut cluster = Cluster::new(
        &catalog,
        &shard_timelines,
        &model,
        router,
        ClusterConfig {
            serve: fresh_search_config(),
            steal: true,
        },
        DesClock::new(),
    );
    let memo = cluster.shared_memo();
    for engine in cluster.engines() {
        assert!(
            Arc::ptr_eq(&memo, &engine.shared_memo()),
            "every shard engine must hold the cluster's memo"
        );
    }

    let seeds = SeedFactory::new(17);
    let templates = random_queries(&RandomQueryConfig {
        queries: 5,
        tables: 8,
        max_tables_per_query: 4,
        weight_range: (0.8, 2.0),
        seed: seeds.seed_for("queries"),
    });
    let requests = ArrivalStream::new(templates, 2.0, seeds.seed_for("arrivals")).take_requests(12);
    for request in requests {
        cluster.submit(request).expect("cluster submit plans");
    }
    cluster.drain().expect("cluster drain plans");

    let stats = memo.stats();
    assert!(
        stats.misses > 0 && stats.entries > 0,
        "routed cluster traffic must populate the shared memo (got {stats:?})"
    );
}

#[test]
fn phase_equivalent_searches_hit_frontiers_another_engine_recorded() {
    let catalog = two_replica_catalog();
    let timelines = SyncTimelines::from_plan(catalog.replication(), SyncMode::Deterministic);
    let model = StylizedCostModel::paper_fig4();
    let config = fresh_search_config();

    // Engine 1 records frontiers into the memo engine 2 will share.
    let mut warm = ServeEngine::new(&catalog, &timelines, &model, config, DesClock::new());
    let shared = warm.shared_memo();
    let (warm_completed, _, warm_misses) = run_engine(&mut warm, &replica_workload(0));
    assert!(warm_misses > 0, "the first engine must record frontiers");

    // Engine 2 (shard >= 2 of the logical cluster): same timelines, same
    // workload, shared memo.
    let mut sharing = ServeEngine::new(&catalog, &timelines, &model, config, DesClock::new())
        .with_phase_memo(Arc::clone(&shared));
    let (sharing_completed, sharing_hits, sharing_misses) =
        run_engine(&mut sharing, &replica_workload(0));

    // Control: identical engine and workload on a private memo — its
    // hits are whatever phase repetition yields within one engine.
    let mut private = ServeEngine::new(&catalog, &timelines, &model, config, DesClock::new());
    let (private_completed, private_hits, _) = run_engine(&mut private, &replica_workload(0));

    assert!(
        sharing_hits > 0,
        "the sharing engine must answer waves from recorded frontiers"
    );
    assert!(
        sharing_hits > private_hits,
        "sharing must add cross-engine hits beyond within-engine phase \
         repetition ({sharing_hits} vs {private_hits})"
    );
    assert!(
        sharing_misses < warm_misses,
        "waves the first engine paid for must be free on the second"
    );
    // The memo only prunes dominated subsets: plans are bit-identical
    // whether the frontier came from this engine, another engine, or
    // was recomputed from scratch.
    assert_eq!(warm_completed.len(), sharing_completed.len());
    for (a, b) in warm_completed.iter().zip(&sharing_completed) {
        assert_eq!(a.evaluation, b.evaluation, "shared memo changed a plan");
    }
    for (a, b) in private_completed.iter().zip(&sharing_completed) {
        assert_eq!(a, b, "shared memo changed a completion");
    }
}

#[test]
fn one_shard_cluster_with_shared_memo_stays_bit_identical_to_bare() {
    let catalog = two_replica_catalog();
    let timelines = SyncTimelines::from_plan(catalog.replication(), SyncMode::Deterministic);
    let model = StylizedCostModel::paper_fig4();
    let config = fresh_search_config();
    let requests = replica_workload(0);

    let mut bare = ServeEngine::new(&catalog, &timelines, &model, config, DesClock::new());
    let (bare_completed, _, _) = run_engine(&mut bare, &requests);

    let router = ShardRouter::new(ShardAssignment::partition(
        &catalog,
        1,
        ShardStrategy::Balanced,
        3,
    ));
    let shard_timelines = ShardTimelines::build(&timelines, &router);
    let mut cluster = Cluster::new(
        &catalog,
        &shard_timelines,
        &model,
        router,
        ClusterConfig {
            serve: config,
            steal: true,
        },
        DesClock::new(),
    );
    let mut cluster_completed = Vec::new();
    for request in &requests {
        let report = cluster
            .submit(request.clone())
            .expect("cluster submit plans");
        cluster_completed.extend(report.completed);
    }
    cluster_completed.extend(cluster.drain().expect("cluster drain plans").completed);

    assert_eq!(bare_completed.len(), cluster_completed.len());
    for (bare, (shard, clustered)) in bare_completed.iter().zip(&cluster_completed) {
        assert_eq!(*shard, ShardId::new(0));
        assert_eq!(bare, clustered, "1-shard cluster diverged from bare");
    }
    assert_eq!(bare.snapshot(), cluster.engine(ShardId::new(0)).snapshot());
}
