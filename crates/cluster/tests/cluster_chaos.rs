//! Cluster chaos suite: a single-shard outage mid-run loses nothing.
//!
//! Over a band of seeds, a 3-shard cluster with faults armed takes a
//! full-shard outage while queues are non-empty. Two families of
//! assertions:
//!
//! 1. **Conservation** — every submitted query is either completed
//!    somewhere or shed with its IV accounted; nothing disappears when
//!    a shard goes down (its queue is failed over to the survivors).
//! 2. **Reconciliation** — the shared trace and the metrics registries
//!    are two views of the same run and must agree *bit for bit*:
//!    per-shard completion counts, delivered-IV sums, fault-degradation
//!    IV sums (`f64::to_bits` equality, same accumulation order), and
//!    the cluster counters (routing, steals, failover) against their
//!    event counts.

use std::sync::Arc;

use ivdss_catalog::ids::ShardId;
use ivdss_catalog::placement::PlacementStrategy;
use ivdss_catalog::sharding::{ShardAssignment, ShardStrategy};
use ivdss_catalog::synthetic::{synthetic_catalog, SyntheticConfig};
use ivdss_cluster::{
    Cluster, ClusterConfig, ClusterSnapshot, ShardOutage, ShardRouter, ShardTimelines,
};
use ivdss_core::value::DiscountRates;
use ivdss_costmodel::model::StylizedCostModel;
use ivdss_faults::{FaultConfig, FaultPlan};
use ivdss_obs::{AdmissionVerdict, EventKind, Trace, TraceEvent, Tracer};
use ivdss_replication::timelines::{SyncMode, SyncTimelines};
use ivdss_serve::clock::DesClock;
use ivdss_serve::engine::ServeConfig;
use ivdss_simkernel::rng::SeedFactory;
use ivdss_simkernel::time::{SimDuration, SimTime};
use ivdss_workloads::stream::ArrivalStream;
use ivdss_workloads::synthetic::{random_queries, RandomQueryConfig};

const SEEDS: u64 = 20;
const SHARDS: usize = 3;
const QUERIES: usize = 24;

/// One seeded chaos run; returns the final snapshot and the trace.
fn run_chaos(seed: u64) -> (ClusterSnapshot, Vec<TraceEvent>) {
    let seeds = SeedFactory::new(seed);
    let catalog = synthetic_catalog(&SyntheticConfig {
        tables: 9,
        sites: 3,
        placement: PlacementStrategy::Uniform,
        replicated_tables: 6,
        mean_sync_period: 5.0,
        seed: seeds.seed_for("catalog"),
        ..SyntheticConfig::default()
    })
    .expect("chaos catalog configuration is valid");
    let timelines = SyncTimelines::from_plan(catalog.replication(), SyncMode::Deterministic);
    let assignment = ShardAssignment::partition(
        &catalog,
        SHARDS,
        ShardStrategy::BySite,
        seeds.seed_for("shards"),
    );
    let router = ShardRouter::new(assignment);
    let shard_timelines = ShardTimelines::build(&timelines, &router);
    let model = StylizedCostModel::paper_fig4();
    let faults = FaultPlan::generate(
        &FaultConfig {
            slip_probability: 0.25,
            drop_probability: 0.1,
            slip_delay: (1.0, 6.0),
            outage_mtbf: 90.0,
            outage_duration: (4.0, 10.0),
            jitter: (1.0, 1.3),
            horizon: SimTime::new(300.0),
        },
        &timelines,
        catalog.site_count(),
        seeds.seed_for("faults"),
    );
    let templates = random_queries(&RandomQueryConfig {
        queries: 6,
        tables: 9,
        max_tables_per_query: 3,
        weight_range: (0.8, 2.0),
        seed: seeds.seed_for("queries"),
    });
    let mut stream = ArrivalStream::new(templates, 0.5, seeds.seed_for("arrivals"));

    // Zero dispatch tolerance builds real queues, so the mid-run shard
    // outage evacuates a non-empty queue on most seeds.
    let mut serve = ServeConfig::new(DiscountRates::new(0.05, 0.01));
    serve.dispatch_backlog = SimDuration::ZERO;

    let trace = Arc::new(Trace::new());
    let tracer = Tracer::recording(Arc::clone(&trace));
    // The down shard rotates with the seed so every shard position gets
    // hit across the band.
    let victim = ShardId::new((seed % SHARDS as u64) as u32);
    let mut cluster = Cluster::new(
        &catalog,
        &shard_timelines,
        &model,
        router,
        ClusterConfig { serve, steal: true },
        DesClock::new(),
    )
    .with_tracer(tracer)
    .with_faults(faults)
    .with_shard_outages(vec![ShardOutage::new(
        victim,
        SimTime::new(3.0),
        SimTime::new(10.0),
    )]);

    for _ in 0..QUERIES {
        cluster
            .submit(stream.next_request())
            .expect("chaos submission plans");
    }
    cluster.drain().expect("chaos drain plans");
    (cluster.snapshot(), trace.events())
}

/// Folds `values` in event order — the same order the engine's metrics
/// accumulated in — so sums can be compared with `f64::to_bits`.
fn bitwise_sum(values: impl Iterator<Item = f64>) -> f64 {
    values.fold(0.0, |acc, v| acc + v)
}

/// Replays the engine's Welford accumulator (`OnlineStats::sum()` is
/// `mean * count`) over `values` in event order, reproducing the exact
/// float operations the metrics registry performed.
fn welford_sum(values: impl Iterator<Item = f64>) -> f64 {
    let mut count = 0u64;
    let mut mean = 0.0f64;
    for x in values {
        count += 1;
        mean += (x - mean) / count as f64;
    }
    mean * count as f64
}

#[test]
fn single_shard_outage_loses_no_queries_cluster_wide() {
    let mut total_failover_rerouted = 0u64;
    for seed in 0..SEEDS {
        let (snapshot, _) = run_chaos(seed);

        assert_eq!(
            snapshot.queries_submitted, QUERIES as u64,
            "seed {seed}: every arrival reaches the front door"
        );
        // With two shards always live, nothing is ever unroutable: a
        // query is completed somewhere or shed with its IV accounted in
        // the shedding shard's metrics.
        assert_eq!(snapshot.unroutable_shed, 0, "seed {seed}");
        assert_eq!(
            snapshot.queries_completed() + snapshot.queries_shed(),
            QUERIES as u64,
            "seed {seed}: completions + shed must cover every submission"
        );
        assert_eq!(snapshot.shard_outages, 1, "seed {seed}: one outage fired");
        assert_eq!(
            snapshot.failover_shed, 0,
            "seed {seed}: failover never drops while survivors are live"
        );
        total_failover_rerouted += snapshot.failover_rerouted;
    }
    assert!(
        total_failover_rerouted > 0,
        "the outage band must evacuate non-empty queues somewhere"
    );
}

#[test]
fn trace_and_metrics_reconcile_bit_for_bit() {
    for seed in 0..SEEDS {
        let (snapshot, events) = run_chaos(seed);

        // Per-shard reconciliation of the completion stream.
        for (idx, shard) in snapshot.shards.iter().enumerate() {
            let tag = Some(ShardId::new(idx as u32));
            let completions: Vec<(f64, f64)> = events
                .iter()
                .filter(|e| e.shard == tag)
                .filter_map(|e| match &e.kind {
                    EventKind::Completed {
                        delivered_iv,
                        iv_lost,
                        ..
                    } => Some((*delivered_iv, *iv_lost)),
                    _ => None,
                })
                .collect();
            assert_eq!(
                completions.len() as u64,
                shard.queries_completed,
                "seed {seed} shard {idx}: completion count"
            );
            let trace_iv = welford_sum(completions.iter().map(|(iv, _)| *iv));
            assert_eq!(
                trace_iv.to_bits(),
                shard.total_delivered_iv.to_bits(),
                "seed {seed} shard {idx}: delivered-IV sum must match bit for bit"
            );
            let trace_iv_lost = bitwise_sum(completions.iter().map(|(_, lost)| *lost));
            assert_eq!(
                trace_iv_lost.to_bits(),
                shard.faults_iv_lost_total.to_bits(),
                "seed {seed} shard {idx}: iv-lost sum must match bit for bit"
            );
            let shed_events = events
                .iter()
                .filter(|e| e.shard == tag)
                .filter(|e| {
                    matches!(
                        &e.kind,
                        EventKind::Admission { verdict, .. }
                            if !matches!(verdict, AdmissionVerdict::Admitted)
                    )
                })
                .count();
            assert_eq!(
                shed_events as u64, shard.queries_shed,
                "seed {seed} shard {idx}: one non-admit verdict per shed query"
            );
        }

        // Cluster counters against their (unscoped) event counts.
        let count = |name: &str| events.iter().filter(|e| e.kind.name() == name).count() as u64;
        assert_eq!(
            count("shard_routed"),
            snapshot.routed_full + snapshot.routed_partial,
            "seed {seed}: routed events"
        );
        assert_eq!(
            count("shard_stolen"),
            snapshot.steals,
            "seed {seed}: steals"
        );
        assert_eq!(
            count("shard_outage_started"),
            snapshot.shard_outages,
            "seed {seed}: outages"
        );
        let (rerouted, shed) = events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::ShardFailover { rerouted, shed, .. } => Some((*rerouted, *shed)),
                _ => None,
            })
            .fold((0u64, 0u64), |(r, s), (er, es)| {
                (r + er as u64, s + es as u64)
            });
        assert_eq!(
            (rerouted, shed),
            (snapshot.failover_rerouted, snapshot.failover_shed),
            "seed {seed}: failover accounting"
        );

        // The cluster-wide aggregates are the shard sums, bit for bit.
        let shard_iv = bitwise_sum(snapshot.shards.iter().map(|s| s.total_delivered_iv));
        assert_eq!(
            shard_iv.to_bits(),
            snapshot.total_delivered_iv().to_bits(),
            "seed {seed}: cluster IV is the ordered shard sum"
        );
    }
}
