//! Cluster-level counters and the aggregated snapshot.
//!
//! Each shard's [`ServeEngine`](ivdss_serve::engine::ServeEngine) keeps
//! its own full [`ServeMetrics`](ivdss_serve::metrics::ServeMetrics)
//! registry; the cluster adds only what no single engine can see —
//! routing coverage, steals, shard outages and failovers — and its
//! snapshot embeds every per-shard
//! [`MetricsSnapshot`] next to
//! the cross-shard sums. Latency/IV *histograms* aggregate through the
//! shared trace (all shards emit into one
//! [`Trace`](ivdss_obs::Trace), whose exposition derives them), so the
//! cluster never re-implements histogram merging.

use ivdss_serve::metrics::MetricsSnapshot;
use ivdss_simkernel::time::SimTime;

use crate::router::RouteDecision;

/// Counters of cross-shard decisions the front door makes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClusterMetrics {
    submitted: u64,
    routed_full: u64,
    routed_partial: u64,
    unroutable_shed: u64,
    steals: u64,
    steal_iv_gain: f64,
    shard_outages: u64,
    failover_rerouted: u64,
    failover_shed: u64,
}

impl ClusterMetrics {
    /// Fresh, all-zero counters.
    #[must_use]
    pub fn new() -> Self {
        ClusterMetrics::default()
    }

    /// Counts a query offered to the cluster front door.
    pub fn record_submitted(&mut self) {
        self.submitted += 1;
    }

    /// Counts a routing decision by its coverage.
    pub fn record_routed(&mut self, decision: &RouteDecision) {
        if decision.is_full() {
            self.routed_full += 1;
        } else {
            self.routed_partial += 1;
        }
    }

    /// Counts a query dropped because no live shard could take it.
    pub fn record_unroutable(&mut self) {
        self.unroutable_shed += 1;
    }

    /// Counts a work-stealing transfer and the strict IV improvement
    /// that justified it.
    pub fn record_steal(&mut self, iv_gain: f64) {
        self.steals += 1;
        self.steal_iv_gain += iv_gain;
    }

    /// Counts an observed shard-outage window.
    pub fn record_shard_outage(&mut self) {
        self.shard_outages += 1;
    }

    /// Counts the outcome of one shard failover.
    pub fn record_failover(&mut self, rerouted: u64, shed: u64) {
        self.failover_rerouted += rerouted;
        self.failover_shed += shed;
    }

    /// Queries offered to the front door so far.
    #[must_use]
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Work-stealing transfers so far.
    #[must_use]
    pub fn steals(&self) -> u64 {
        self.steals
    }

    /// Point-in-time snapshot combining the cluster counters with every
    /// shard's full metrics snapshot.
    #[must_use]
    pub fn snapshot(&self, at: SimTime, shards: Vec<MetricsSnapshot>) -> ClusterSnapshot {
        ClusterSnapshot {
            at,
            queries_submitted: self.submitted,
            routed_full: self.routed_full,
            routed_partial: self.routed_partial,
            unroutable_shed: self.unroutable_shed,
            steals: self.steals,
            steal_iv_gain: self.steal_iv_gain,
            shard_outages: self.shard_outages,
            failover_rerouted: self.failover_rerouted,
            failover_shed: self.failover_shed,
            shards,
        }
    }
}

/// A point-in-time copy of the cluster counters plus each shard's
/// metrics snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSnapshot {
    /// When the snapshot was taken.
    pub at: SimTime,
    /// Queries offered to the cluster front door.
    pub queries_submitted: u64,
    /// Queries routed to a shard covering their whole replicated
    /// footprint.
    pub routed_full: u64,
    /// Queries routed with partial coverage (remote-base fallback for
    /// the missing tables).
    pub routed_partial: u64,
    /// Queries dropped because every shard was down.
    pub unroutable_shed: u64,
    /// Work-stealing transfers between shards.
    pub steals: u64,
    /// Summed strict IV improvement over the stay-put plan across all
    /// steals.
    pub steal_iv_gain: f64,
    /// Shard-outage windows observed.
    pub shard_outages: u64,
    /// Queries re-admitted to surviving shards during failovers.
    pub failover_rerouted: u64,
    /// Queries dropped during failovers (no live shard).
    pub failover_shed: u64,
    /// Per-shard engine snapshots, in shard-id order.
    pub shards: Vec<MetricsSnapshot>,
}

impl ClusterSnapshot {
    /// Sum of queries completed across shards.
    #[must_use]
    pub fn queries_completed(&self) -> u64 {
        self.shards.iter().map(|s| s.queries_completed).sum()
    }

    /// Queries dropped anywhere: engine-side IV-aware shedding plus
    /// cluster-side unroutable drops.
    #[must_use]
    pub fn queries_shed(&self) -> u64 {
        self.shards.iter().map(|s| s.queries_shed).sum::<u64>() + self.unroutable_shed
    }

    /// Sum of delivered information value across shards.
    #[must_use]
    pub fn total_delivered_iv(&self) -> f64 {
        self.shards.iter().map(|s| s.total_delivered_iv).sum()
    }

    /// Sum of IV lost to injected degradation across shards.
    #[must_use]
    pub fn faults_iv_lost_total(&self) -> f64 {
        self.shards.iter().map(|s| s.faults_iv_lost_total).sum()
    }

    /// Renders the cluster counters followed by each shard's full
    /// Prometheus-flavoured dump.
    #[must_use]
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "# ivdss-cluster metrics at t={}", self.at.value());
        let _ = writeln!(out, "cluster_shards {}", self.shards.len());
        let _ = writeln!(out, "cluster_queries_submitted {}", self.queries_submitted);
        let _ = writeln!(out, "cluster_routed_full {}", self.routed_full);
        let _ = writeln!(out, "cluster_routed_partial {}", self.routed_partial);
        let _ = writeln!(out, "cluster_unroutable_shed {}", self.unroutable_shed);
        let _ = writeln!(out, "cluster_steals {}", self.steals);
        let _ = writeln!(out, "cluster_steal_iv_gain {}", self.steal_iv_gain);
        let _ = writeln!(out, "cluster_shard_outages {}", self.shard_outages);
        let _ = writeln!(out, "cluster_failover_rerouted {}", self.failover_rerouted);
        let _ = writeln!(out, "cluster_failover_shed {}", self.failover_shed);
        let _ = writeln!(
            out,
            "cluster_queries_completed {}",
            self.queries_completed()
        );
        let _ = writeln!(out, "cluster_queries_shed {}", self.queries_shed());
        let _ = writeln!(
            out,
            "cluster_total_delivered_iv {}",
            self.total_delivered_iv()
        );
        let _ = writeln!(
            out,
            "cluster_faults_iv_lost_total {}",
            self.faults_iv_lost_total()
        );
        for (idx, shard) in self.shards.iter().enumerate() {
            let _ = writeln!(out, "# shard {idx}");
            out.push_str(&shard.to_text());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivdss_catalog::ids::ShardId;
    use ivdss_catalog::ids::TableId;

    fn full(shard: u32) -> RouteDecision {
        RouteDecision {
            shard: ShardId::new(shard),
            covered: 2,
            missing: Vec::new(),
        }
    }

    #[test]
    fn counters_accumulate_and_snapshot() {
        let mut m = ClusterMetrics::new();
        m.record_submitted();
        m.record_submitted();
        m.record_routed(&full(0));
        m.record_routed(&RouteDecision {
            shard: ShardId::new(1),
            covered: 1,
            missing: vec![TableId::new(3)],
        });
        m.record_steal(0.25);
        m.record_shard_outage();
        m.record_failover(3, 1);
        m.record_unroutable();
        let snap = m.snapshot(SimTime::new(10.0), Vec::new());
        assert_eq!(snap.queries_submitted, 2);
        assert_eq!(snap.routed_full, 1);
        assert_eq!(snap.routed_partial, 1);
        assert_eq!(snap.steals, 1);
        assert_eq!(snap.steal_iv_gain, 0.25);
        assert_eq!(snap.shard_outages, 1);
        assert_eq!(snap.failover_rerouted, 3);
        assert_eq!(snap.failover_shed, 1);
        assert_eq!(snap.queries_shed(), 1, "unroutable counts as shed");
    }

    #[test]
    fn to_text_renders_cluster_lines_and_shard_sections() {
        let mut m = ClusterMetrics::new();
        m.record_submitted();
        let snap = m.snapshot(SimTime::new(1.0), Vec::new());
        let text = snap.to_text();
        assert!(text.contains("cluster_queries_submitted 1"));
        assert!(text.contains("cluster_shards 0"));
        assert!(text.starts_with("# ivdss-cluster metrics at t=1"));
    }
}
