//! The sharded cluster: N per-shard [`ServeEngine`]s behind one front
//! door.
//!
//! # Pipeline
//!
//! A submitted query is routed by the [`ShardRouter`] to the live shard
//! whose owned replicas best cover its footprint, then goes through
//! that shard's ordinary serve pipeline (IV-aware admission, plan
//! caching, calendar dispatch). Every engine runs against *restricted*
//! timelines — only the replicas its shard owns — so a shard planning a
//! query with partial coverage naturally falls back to remote base
//! reads for the missing tables: partial routing degrades IV, it never
//! fails.
//!
//! # Lockstep determinism
//!
//! All engines are driven from clones of one starting [`Clock`] and
//! advanced together, in shard-id order, at every front-door step.
//! Randomness never enters: routing, stealing and failover are pure
//! functions of the catalog, the assignment, the outage windows and
//! the arrival sequence, so identical seeded runs are bit-identical —
//! the property the differential and golden-trace suites pin down.
//!
//! # Work stealing
//!
//! After every step, an idle shard may take the *youngest* queued query
//! of the most backlogged shard — but only when executing it now on the
//! thief strictly beats the plan it would get by waiting out the
//! victim's backlog, both sides evaluated with the same
//! scatter-and-gather search that dispatch uses. Stealing therefore
//! never trades IV away, which is exactly the differential suite's
//! cluster-level assertion (total realized IV with stealing ≥ without).
//!
//! # Shard outages
//!
//! A [`ShardOutage`] window takes a whole shard out of routing. The
//! moment the cluster observes an open window it evacuates the down
//! shard's admission queue and re-admits every entry at the surviving
//! shards (original enqueue times kept, so waiting and aging accounting
//! stay honest). Queries are only ever dropped — with their IV
//! accounted — when *no* shard is live.

use std::collections::BTreeSet;
use std::sync::Arc;

use ivdss_catalog::catalog::Catalog;
use ivdss_catalog::ids::ShardId;
use ivdss_core::memo::PhaseMemo;
use ivdss_core::plan::{NoQueues, PlanContext, PlanError, QueryRequest};
use ivdss_core::search::ScatterGatherSearch;
use ivdss_core::value::DiscountRates;
use ivdss_costmodel::model::CostModel;
use ivdss_costmodel::query::QueryId;
use ivdss_faults::FaultPlan;
use ivdss_obs::{EventKind, Tracer};
use ivdss_replication::timelines::SyncTimelines;
use ivdss_serve::admission::QueuedQuery;
use ivdss_serve::clock::Clock;
use ivdss_serve::engine::{Completion, ServeConfig, ServeEngine, SubmitReport};
use ivdss_simkernel::time::SimTime;

use crate::metrics::{ClusterMetrics, ClusterSnapshot};
use crate::router::{RouteDecision, ShardRouter};

/// Tuning knobs of a [`Cluster`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// Per-shard engine configuration (every shard gets the same).
    pub serve: ServeConfig,
    /// Enables the cross-shard work-stealing pass (on by default).
    /// Stealing only ever fires when a finite
    /// [`ServeConfig::dispatch_backlog`] lets queues build.
    pub steal: bool,
}

impl ClusterConfig {
    /// The permissive serve defaults with stealing enabled.
    #[must_use]
    pub fn new(rates: DiscountRates) -> Self {
        ClusterConfig {
            serve: ServeConfig::new(rates),
            steal: true,
        }
    }
}

/// The per-shard restrictions of one published timeline set, built once
/// and borrowed by every engine of a [`Cluster`].
///
/// Two-phase construction (build the restrictions, then hand them to
/// [`Cluster::new`]) keeps the borrow graph acyclic: engines borrow
/// from this struct, never from the cluster that owns them.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardTimelines {
    shards: Vec<SyncTimelines>,
}

impl ShardTimelines {
    /// Restricts `full` to each shard's owned tables, in shard-id
    /// order. A single-shard assignment owns every replicated table, so
    /// its restriction *is* the full timeline set — the degenerate case
    /// the differential suite compares against a bare engine.
    #[must_use]
    pub fn build(full: &SyncTimelines, router: &ShardRouter) -> Self {
        let assignment = router.assignment();
        ShardTimelines {
            shards: assignment
                .shards()
                .map(|s| full.restricted(&assignment.owned_by(s)))
                .collect(),
        }
    }

    /// The timelines shard `shard` owns.
    #[must_use]
    pub fn shard(&self, shard: ShardId) -> &SyncTimelines {
        &self.shards[shard.index()]
    }

    /// Number of shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// `true` when built for zero shards (never the case for a valid
    /// assignment).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }
}

/// A scheduled full-shard outage window: the shard is excluded from
/// routing while `start <= now < end` and its queue is failed over to
/// the surviving shards when the window opens.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardOutage {
    /// The shard taken down.
    pub shard: ShardId,
    /// When the outage opens.
    pub start: SimTime,
    /// When the shard comes back.
    pub end: SimTime,
}

impl ShardOutage {
    /// Creates a window; `end` must not precede `start`.
    #[must_use]
    pub fn new(shard: ShardId, start: SimTime, end: SimTime) -> Self {
        assert!(start <= end, "outage window must not end before it starts");
        ShardOutage { shard, start, end }
    }

    /// `true` while the shard is down.
    #[must_use]
    pub fn covers(&self, at: SimTime) -> bool {
        self.start <= at && at < self.end
    }
}

/// What one cluster step (submit or advance) did, with every completion
/// and shed tagged by the shard it happened on.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ClusterReport {
    /// The routing decision of the submitted query (`None` for pure
    /// advances, and for submissions dropped because every shard was
    /// down).
    pub routed: Option<RouteDecision>,
    /// Queries dropped during this step: by a shard's IV-aware
    /// admission (tagged with the shard) or cluster-wide because no
    /// shard was live (`None`).
    pub shed: Vec<(Option<ShardId>, QueryId)>,
    /// Queries delivered during this step, in dispatch order per shard.
    pub completed: Vec<(ShardId, Completion)>,
}

impl ClusterReport {
    /// Sum of delivered IV across this step's completions.
    #[must_use]
    pub fn delivered_iv(&self) -> f64 {
        self.completed
            .iter()
            .map(|(_, c)| c.evaluation.information_value.value())
            .sum()
    }

    fn absorb(&mut self, shard: ShardId, report: SubmitReport) {
        if let Some(q) = report.shed {
            self.shed.push((Some(shard), q));
        }
        self.completed
            .extend(report.completed.into_iter().map(|c| (shard, c)));
    }
}

/// A sharded serving cluster: router, per-shard engines, stealing and
/// failover. See the module docs for the pipeline.
pub struct Cluster<'a, C: Clock + Clone> {
    catalog: &'a Catalog,
    timelines: &'a ShardTimelines,
    model: &'a dyn CostModel,
    router: ShardRouter,
    config: ClusterConfig,
    /// Pristine copy of the starting clock; every (re)built engine
    /// starts from a clone of it.
    clock0: C,
    engines: Vec<ServeEngine<'a, C>>,
    faults: Option<FaultPlan>,
    tracer: Tracer,
    metrics: ClusterMetrics,
    outages: Vec<ShardOutage>,
    /// Parallel to `outages`: whether the window's failover already ran.
    handled: Vec<bool>,
    search: ScatterGatherSearch,
    /// One sharded [`PhaseMemo`] shared by every engine: a sync phase
    /// explored on one shard prunes the same phase on every other.
    memo: Arc<PhaseMemo>,
}

impl<'a, C: Clock + Clone> Cluster<'a, C> {
    /// Creates a cluster of one engine per shard, all starting from
    /// clones of `clock`.
    ///
    /// # Panics
    ///
    /// Panics when `timelines` was built for a different shard count
    /// than the router's assignment.
    #[must_use]
    pub fn new(
        catalog: &'a Catalog,
        timelines: &'a ShardTimelines,
        model: &'a dyn CostModel,
        router: ShardRouter,
        config: ClusterConfig,
        clock: C,
    ) -> Self {
        assert_eq!(
            timelines.len(),
            router.assignment().n_shards(),
            "shard timelines must match the router's shard count"
        );
        let mut cluster = Cluster {
            catalog,
            timelines,
            model,
            router,
            config,
            clock0: clock,
            engines: Vec::new(),
            faults: None,
            tracer: Tracer::disabled(),
            metrics: ClusterMetrics::new(),
            outages: Vec::new(),
            handled: Vec::new(),
            search: ScatterGatherSearch::new(),
            memo: Arc::new(PhaseMemo::new()),
        };
        cluster.rebuild_engines();
        cluster
    }

    /// Attaches a tracer (builder-style, before any traffic): the
    /// cluster emits routing/stealing/failover events unscoped, and
    /// every engine re-emits its full pipeline trace scoped to its
    /// shard via [`Tracer::for_shard`] — one shared, interleaved,
    /// deterministic log.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self.rebuild_engines();
        self
    }

    /// Arms a fault plan (builder-style, before any traffic). Each
    /// engine replays the plan scoped to its own tables
    /// ([`FaultPlan::scoped_to_tables`]): sync revisions follow replica
    /// ownership while site outages and cost jitter — shared
    /// infrastructure — hit every shard.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = Some(faults);
        self.rebuild_engines();
        self
    }

    /// Schedules full-shard outage windows (builder-style, before any
    /// traffic). Windows are replayed in `(start, shard)` order.
    #[must_use]
    pub fn with_shard_outages(mut self, mut outages: Vec<ShardOutage>) -> Self {
        outages.sort_by(|a, b| {
            a.start
                .partial_cmp(&b.start)
                .expect("outage times are finite")
                .then(a.shard.cmp(&b.shard))
        });
        self.handled = vec![false; outages.len()];
        self.outages = outages;
        self
    }

    /// Engines are pure functions of the construction inputs plus the
    /// builder state (tracer, faults), so builder calls just rebuild
    /// them — valid only before traffic, which is when builders run.
    fn rebuild_engines(&mut self) {
        let assignment = self.router.assignment();
        let engines = assignment
            .shards()
            .map(|s| {
                let timelines = self.timelines.shard(s);
                let engine = match &self.faults {
                    Some(plan) => ServeEngine::with_faults(
                        self.catalog,
                        timelines,
                        self.model,
                        self.config.serve,
                        self.clock0.clone(),
                        plan.scoped_to_tables(&assignment.owned_by(s)),
                    ),
                    None => ServeEngine::new(
                        self.catalog,
                        timelines,
                        self.model,
                        self.config.serve,
                        self.clock0.clone(),
                    ),
                };
                engine
                    .with_phase_memo(Arc::clone(&self.memo))
                    .with_tracer(self.tracer.for_shard(s))
            })
            .collect();
        self.engines = engines;
    }

    /// The [`PhaseMemo`] every shard engine plans against. Shards with
    /// distinct replication plans never collide — [`PhaseKey`] encodes
    /// the replicated subset — so sharing is safe *and* lets
    /// phase-equivalent queries routed to different shards reuse each
    /// other's pruned frontiers.
    ///
    /// [`PhaseKey`]: ivdss_core::memo::PhaseKey
    #[must_use]
    pub fn shared_memo(&self) -> Arc<PhaseMemo> {
        Arc::clone(&self.memo)
    }

    /// The cluster's current time (all engines move in lockstep).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.engines[0].now()
    }

    /// The router.
    #[must_use]
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The cluster-level counters.
    #[must_use]
    pub fn metrics(&self) -> &ClusterMetrics {
        &self.metrics
    }

    /// The per-shard engines, in shard-id order.
    #[must_use]
    pub fn engines(&self) -> &[ServeEngine<'a, C>] {
        &self.engines
    }

    /// One shard's engine.
    #[must_use]
    pub fn engine(&self, shard: ShardId) -> &ServeEngine<'a, C> {
        &self.engines[shard.index()]
    }

    /// Shards currently inside a scheduled outage window.
    #[must_use]
    pub fn down_shards(&self, at: SimTime) -> BTreeSet<ShardId> {
        self.outages
            .iter()
            .filter(|o| o.covers(at))
            .map(|o| o.shard)
            .collect()
    }

    /// Point-in-time snapshot: cluster counters plus every shard's full
    /// metrics snapshot.
    #[must_use]
    pub fn snapshot(&self) -> ClusterSnapshot {
        self.metrics.snapshot(
            self.now(),
            self.engines.iter().map(ServeEngine::snapshot).collect(),
        )
    }

    /// Prometheus-style text exposition: the cluster dump (with every
    /// shard's section), followed — when a tracer is attached — by the
    /// shared trace's event counters and derived histograms, which
    /// aggregate *all* shards' completions.
    #[must_use]
    pub fn exposition(&self) -> String {
        let mut out = self.snapshot().to_text();
        if let Some(trace) = self.tracer.trace() {
            out.push_str(&trace.exposition());
        }
        out
    }

    /// Submits a query: the cluster advances to the submission time
    /// (running any due failovers), routes the query to the
    /// best-covering live shard, and runs a stealing pass.
    ///
    /// # Errors
    ///
    /// Propagates [`PlanError`] from planning dispatched queries.
    pub fn submit(&mut self, request: QueryRequest) -> Result<ClusterReport, PlanError> {
        let to = if request.submitted_at > self.now() {
            request.submitted_at
        } else {
            self.now()
        };
        let mut report = ClusterReport::default();
        self.step_to(to, &mut report)?;
        self.metrics.record_submitted();
        let down = self.down_shards(to);
        match self
            .router
            .route(self.catalog, request.id(), request.query.tables(), &down)
        {
            None => {
                self.metrics.record_unroutable();
                report.shed.push((None, request.id()));
            }
            Some(decision) => {
                self.metrics.record_routed(&decision);
                let (query, shard) = (request.id(), decision.shard);
                let (covered, missing) = (decision.covered, decision.missing.len());
                self.tracer.emit_with(to, || EventKind::ShardRouted {
                    query,
                    shard,
                    covered,
                    missing,
                });
                let engine_report = self.engines[shard.index()].submit(request)?;
                report.absorb(shard, engine_report);
                report.routed = Some(decision);
            }
        }
        self.steal_pass(to, &mut report)?;
        Ok(report)
    }

    /// Moves every engine to `to` (if in the future), running due
    /// failovers and a stealing pass.
    ///
    /// # Errors
    ///
    /// Propagates [`PlanError`] from planning dispatched queries.
    pub fn advance_to(&mut self, to: SimTime) -> Result<ClusterReport, PlanError> {
        let to = if to > self.now() { to } else { self.now() };
        let mut report = ClusterReport::default();
        self.step_to(to, &mut report)?;
        self.steal_pass(to, &mut report)?;
        Ok(report)
    }

    /// Force-dispatches everything still queued, shard by shard in
    /// shard-id order (after a final stealing pass).
    ///
    /// # Errors
    ///
    /// Propagates [`PlanError`] from planning dispatched queries.
    pub fn drain(&mut self) -> Result<ClusterReport, PlanError> {
        let mut report = ClusterReport::default();
        self.steal_pass(self.now(), &mut report)?;
        for (idx, engine) in self.engines.iter_mut().enumerate() {
            let completed = engine.drain()?;
            report
                .completed
                .extend(completed.into_iter().map(|c| (ShardId::new(idx as u32), c)));
        }
        Ok(report)
    }

    /// Advances the whole cluster to `to`: evacuates shards whose
    /// outage window opens (before their engine could dispatch at
    /// `to`), advances every engine in shard-id order, then re-admits
    /// the evacuated queries at the surviving shards.
    fn step_to(&mut self, to: SimTime, report: &mut ClusterReport) -> Result<(), PlanError> {
        // Phase 1: open due outage windows and evacuate their queues.
        let mut displaced: Vec<(ShardId, Vec<QueuedQuery>)> = Vec::new();
        for idx in 0..self.outages.len() {
            let outage = self.outages[idx];
            if self.handled[idx] || outage.start > to {
                continue;
            }
            self.handled[idx] = true;
            self.metrics.record_shard_outage();
            self.tracer.emit_with(to, || EventKind::ShardOutageStarted {
                shard: outage.shard,
                until: outage.end,
            });
            if outage.end <= to {
                // The whole window fell between driving points: the
                // shard was never down at an instant the cluster acted
                // on, so there is nothing to fail over.
                continue;
            }
            let queue = self.engines[outage.shard.index()].evacuate();
            displaced.push((outage.shard, queue));
        }

        // Phase 2: lockstep advance, shard-id order.
        for (idx, engine) in self.engines.iter_mut().enumerate() {
            let completed = engine.advance_to(to)?;
            report
                .completed
                .extend(completed.into_iter().map(|c| (ShardId::new(idx as u32), c)));
        }

        // Phase 3: re-admit evacuated queries among the survivors.
        let down = self.down_shards(to);
        for (from, queue) in displaced {
            let mut rerouted = 0u64;
            let mut dropped = 0u64;
            for queued in queue {
                let routed = self.router.route(
                    self.catalog,
                    queued.request.id(),
                    queued.request.query.tables(),
                    &down,
                );
                match routed {
                    None => {
                        dropped += 1;
                        self.metrics.record_unroutable();
                        report.shed.push((None, queued.request.id()));
                    }
                    Some(decision) => {
                        rerouted += 1;
                        self.metrics.record_routed(&decision);
                        let (query, shard) = (queued.request.id(), decision.shard);
                        let (covered, missing) = (decision.covered, decision.missing.len());
                        self.tracer.emit_with(to, || EventKind::ShardRouted {
                            query,
                            shard,
                            covered,
                            missing,
                        });
                        let engine_report = self.engines[shard.index()].accept(queued)?;
                        report.absorb(shard, engine_report);
                    }
                }
            }
            self.metrics.record_failover(rerouted, dropped);
            self.tracer.emit_with(to, || EventKind::ShardFailover {
                shard: from,
                rerouted: rerouted as usize,
                shed: dropped as usize,
            });
        }
        Ok(())
    }

    /// The stateless planning context of one shard (its restricted
    /// timeline belief, no queue model) — what the steal guard
    /// evaluates both sides of a transfer under.
    fn plan_ctx(&self, idx: usize) -> PlanContext<'_> {
        PlanContext {
            catalog: self.catalog,
            timelines: self.engines[idx].timelines(),
            model: self.model,
            rates: self.config.serve.rates,
            queues: &NoQueues,
        }
    }

    /// One stealing sweep: each idle live shard may take the youngest
    /// queued query of the most backlogged live shard, but only when
    /// executing it on the thief *now* strictly beats the plan the
    /// victim would produce after waiting out its own backlog. At most
    /// one steal per thief per sweep keeps the pass linear and the
    /// trace readable.
    fn steal_pass(&mut self, now: SimTime, report: &mut ClusterReport) -> Result<(), PlanError> {
        if !self.config.steal || self.engines.len() < 2 {
            return Ok(());
        }
        let down = self.down_shards(now);
        for thief_idx in 0..self.engines.len() {
            let thief = ShardId::new(thief_idx as u32);
            if down.contains(&thief) || self.engines[thief_idx].queue_depth() != 0 {
                continue;
            }
            if self.engines[thief_idx].backlog() > self.config.serve.dispatch_backlog {
                continue; // Not actually idle: it could not dispatch.
            }
            let victim_idx = (0..self.engines.len())
                .filter(|i| *i != thief_idx)
                .filter(|i| !down.contains(&ShardId::new(*i as u32)))
                .filter(|i| self.engines[*i].queue_depth() > 0)
                .max_by_key(|i| (self.engines[*i].queue_depth(), std::cmp::Reverse(*i)));
            let Some(victim_idx) = victim_idx else {
                continue;
            };
            let candidate = match self.engines[victim_idx].queued().last() {
                Some(queued) => queued.request.clone(),
                None => continue,
            };
            let stay_at = now + self.engines[victim_idx].backlog();
            let stay_iv = self
                .search
                .search_from(&self.plan_ctx(victim_idx), &candidate, stay_at)?
                .best
                .information_value
                .value();
            let move_iv = self
                .search
                .search_from(&self.plan_ctx(thief_idx), &candidate, now)?
                .best
                .information_value
                .value();
            if move_iv <= stay_iv {
                continue;
            }
            let Some(stolen) = self.engines[victim_idx].steal_youngest() else {
                continue;
            };
            self.metrics.record_steal(move_iv - stay_iv);
            let (query, from) = (stolen.request.id(), ShardId::new(victim_idx as u32));
            self.tracer.emit_with(now, || EventKind::ShardStolen {
                query,
                from,
                to: thief,
            });
            let engine_report = self.engines[thief_idx].accept(stolen)?;
            report.absorb(thief, engine_report);
        }
        Ok(())
    }
}
