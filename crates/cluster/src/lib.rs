//! # ivdss-cluster — sharded multi-engine cluster serving
//!
//! Scales the single [`ServeEngine`](ivdss_serve::engine::ServeEngine)
//! out to a deterministic cluster: a footprint-based
//! [`ShardRouter`] in front of N per-shard
//! engines, each owning a disjoint slice of the replicated tables
//! (its [restricted](ivdss_replication::timelines::SyncTimelines::restricted)
//! sync timelines) and running the full IV-aware serve pipeline.
//!
//! Layer by layer:
//!
//! - [`router`] — route each query to the live shard whose owned
//!   replicas best cover its replicated footprint; whatever the chosen
//!   shard does not own is explicit *partial coverage*, served through
//!   the planner's remote-base fallback rather than failed.
//! - [`cluster`] — the front door: lockstep clock driving in shard-id
//!   order, IV-guarded cross-shard work stealing when a shard idles,
//!   and full-shard outage failover (evacuate, re-route, re-admit)
//!   that never silently loses a query.
//! - [`metrics`] — cluster counters plus per-shard snapshots;
//!   histograms and traces aggregate through the shared
//!   [`Trace`](ivdss_obs::Trace) every engine emits into, scoped per
//!   shard via [`Tracer::for_shard`](ivdss_obs::Tracer::for_shard).
//!
//! Everything is driven by one starting [`Clock`](ivdss_serve::clock::Clock)
//! and contains no randomness of its own, so seeded cluster runs are
//! bit-for-bit replayable. The differential suite pins the two anchor
//! properties down: a 1-shard cluster is *identical* (plans, IV,
//! metrics) to a bare engine, and stealing never lowers total realized
//! IV.

pub mod cluster;
pub mod metrics;
pub mod router;

pub use cluster::{Cluster, ClusterConfig, ClusterReport, ShardOutage, ShardTimelines};
pub use metrics::{ClusterMetrics, ClusterSnapshot};
pub use router::{RouteDecision, ShardRouter};
