//! Footprint-based query routing.
//!
//! A query goes to the live shard whose owned replicas cover the most
//! of its *replicated* footprint (ties break toward the lowest shard
//! id, so routing is a pure function of the catalog, the assignment
//! and the down-set). Whatever replicated tables the chosen shard does
//! *not* own are reported as `missing`: that shard's restricted
//! timelines have no replica for them, so its planner falls back to
//! remote base reads for exactly those tables — partial coverage is a
//! degradation in IV, never an error.
//!
//! Queries whose footprint touches no replicated table have no shard
//! affinity at all; they are spread deterministically by query id.

use std::collections::BTreeSet;

use ivdss_catalog::catalog::Catalog;
use ivdss_catalog::ids::{ShardId, TableId};
use ivdss_catalog::sharding::ShardAssignment;
use ivdss_costmodel::query::QueryId;

/// Where a query was sent and how well the shard covers it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteDecision {
    /// The chosen shard.
    pub shard: ShardId,
    /// Replicated footprint tables the shard owns a replica of.
    pub covered: usize,
    /// Replicated footprint tables the shard does *not* own: it serves
    /// them via remote base reads (the explicit partial-coverage
    /// fallback).
    pub missing: Vec<TableId>,
}

impl RouteDecision {
    /// `true` if the shard owns a replica of every replicated table in
    /// the query's footprint.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.missing.is_empty()
    }
}

/// The cluster front door's routing table: a shard assignment consulted
/// per query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRouter {
    assignment: ShardAssignment,
}

impl ShardRouter {
    /// Creates a router over a shard assignment.
    #[must_use]
    pub fn new(assignment: ShardAssignment) -> Self {
        ShardRouter { assignment }
    }

    /// The underlying assignment.
    #[must_use]
    pub fn assignment(&self) -> &ShardAssignment {
        &self.assignment
    }

    /// Routes a query by footprint. Returns `None` only when every
    /// shard is down.
    ///
    /// Selection: among live shards, maximize owned coverage of the
    /// replicated footprint; break ties toward the lowest shard id.
    /// A footprint with no replicated tables is spread by
    /// `query id % live shards` (any shard serves it identically from
    /// base tables).
    #[must_use]
    pub fn route(
        &self,
        catalog: &Catalog,
        query: QueryId,
        footprint: &[TableId],
        down: &BTreeSet<ShardId>,
    ) -> Option<RouteDecision> {
        let live: Vec<ShardId> = self
            .assignment
            .shards()
            .filter(|s| !down.contains(s))
            .collect();
        if live.is_empty() {
            return None;
        }
        let replicated: Vec<TableId> = footprint
            .iter()
            .copied()
            .filter(|t| catalog.is_replicated(*t))
            .collect();
        if replicated.is_empty() {
            let shard = live[(query.raw() as usize) % live.len()];
            return Some(RouteDecision {
                shard,
                covered: 0,
                missing: Vec::new(),
            });
        }
        let coverage = |shard: ShardId| {
            replicated
                .iter()
                .filter(|t| self.assignment.owner(**t) == Some(shard))
                .count()
        };
        let shard = live
            .iter()
            .copied()
            .max_by(|a, b| {
                // Max coverage; on ties the *lowest* id must win, so
                // reverse the id ordering fed to `max_by`.
                coverage(*a).cmp(&coverage(*b)).then_with(|| b.cmp(a))
            })
            .expect("live is non-empty");
        let missing: Vec<TableId> = replicated
            .iter()
            .copied()
            .filter(|t| self.assignment.owner(*t) != Some(shard))
            .collect();
        Some(RouteDecision {
            shard,
            covered: replicated.len() - missing.len(),
            missing,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivdss_catalog::ids::SiteId;
    use ivdss_catalog::replica::{ReplicaSpec, ReplicationPlan};
    use ivdss_catalog::sharding::ShardStrategy;
    use ivdss_catalog::table::TableMeta;

    /// 3 sites × 2 tables; the first table of each site is replicated.
    /// Table `2·site + k` lives at site `site`.
    fn catalog() -> Catalog {
        let mut tables = Vec::new();
        let mut placement = Vec::new();
        let mut plan = ReplicationPlan::new();
        for site in 0..3u32 {
            for k in 0..2u32 {
                let id = TableId::new(site * 2 + k);
                tables.push(TableMeta::new(id, format!("t{site}_{k}"), 1000, 100));
                placement.push(SiteId::new(site));
                if k == 0 {
                    plan.add(id, ReplicaSpec::new(10.0));
                }
            }
        }
        Catalog::new(tables, 3, placement, plan).expect("test catalog is valid")
    }

    fn t(site: u32, k: u32) -> TableId {
        TableId::new(site * 2 + k)
    }

    #[test]
    fn routes_to_the_covering_shard() {
        let cat = catalog();
        let assignment = ShardAssignment::partition(&cat, 3, ShardStrategy::BySite, 7);
        let router = ShardRouter::new(assignment);
        let table = t(1, 0);
        let owner = router.assignment().owner(table).expect("replicated");
        let d = router
            .route(&cat, QueryId::new(1), &[table], &BTreeSet::new())
            .expect("live shards exist");
        assert_eq!(d.shard, owner);
        assert_eq!(d.covered, 1);
        assert!(d.is_full());
    }

    #[test]
    fn partial_coverage_reports_missing_tables() {
        let cat = catalog();
        // BySite puts each site's replica on its own shard, so a query
        // spanning two sites' replicas can only be partially covered.
        let assignment = ShardAssignment::partition(&cat, 3, ShardStrategy::BySite, 7);
        let router = ShardRouter::new(assignment);
        let d = router
            .route(&cat, QueryId::new(2), &[t(0, 0), t(1, 0)], &BTreeSet::new())
            .expect("live shards exist");
        assert_eq!(d.covered, 1);
        assert_eq!(d.missing.len(), 1);
        assert!(!d.is_full());
        let missing_owner = router.assignment().owner(d.missing[0]);
        assert_ne!(missing_owner, Some(d.shard), "missing = not owned here");
    }

    #[test]
    fn down_shards_are_excluded_and_fallback_is_partial() {
        let cat = catalog();
        let assignment = ShardAssignment::partition(&cat, 3, ShardStrategy::BySite, 7);
        let router = ShardRouter::new(assignment);
        let table = t(1, 0);
        let owner = router.assignment().owner(table).expect("replicated");
        let down: BTreeSet<ShardId> = [owner].into_iter().collect();
        let d = router
            .route(&cat, QueryId::new(3), &[table], &down)
            .expect("two shards still live");
        assert_ne!(d.shard, owner);
        assert_eq!(d.covered, 0);
        assert_eq!(d.missing, vec![table], "served via remote base elsewhere");
    }

    #[test]
    fn unreplicated_footprints_spread_by_query_id() {
        let cat = catalog();
        let assignment = ShardAssignment::partition(&cat, 2, ShardStrategy::Balanced, 7);
        let router = ShardRouter::new(assignment);
        let table = t(0, 1); // never replicated
        let d0 = router
            .route(&cat, QueryId::new(0), &[table], &BTreeSet::new())
            .expect("live");
        let d1 = router
            .route(&cat, QueryId::new(1), &[table], &BTreeSet::new())
            .expect("live");
        assert_ne!(d0.shard, d1.shard, "consecutive ids alternate shards");
        assert!(d0.is_full() && d1.is_full());
    }

    #[test]
    fn all_shards_down_routes_nowhere() {
        let cat = catalog();
        let assignment = ShardAssignment::partition(&cat, 2, ShardStrategy::Balanced, 7);
        let router = ShardRouter::new(assignment);
        let down: BTreeSet<ShardId> = router.assignment().shards().collect();
        assert_eq!(router.route(&cat, QueryId::new(4), &[t(0, 0)], &down), None);
    }

    #[test]
    fn ties_break_toward_the_lowest_shard_id() {
        let cat = catalog();
        let assignment = ShardAssignment::partition(&cat, 3, ShardStrategy::BySite, 7);
        let router = ShardRouter::new(assignment);
        // Both owners cover exactly one table: the lower shard id wins.
        let owners: Vec<ShardId> = [t(0, 0), t(1, 0)]
            .iter()
            .map(|table| router.assignment().owner(*table).expect("replicated"))
            .collect();
        let d = router
            .route(&cat, QueryId::new(5), &[t(0, 0), t(1, 0)], &BTreeSet::new())
            .expect("live");
        assert_eq!(d.shard, *owners.iter().min().expect("non-empty"));
    }
}
