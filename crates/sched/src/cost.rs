//! Per-table refresh costs and the fixed-schedule budget.
//!
//! A refresh cost abstracts whatever a synchronization spends —
//! bandwidth, ETL time, warehouse load slots. The budget the adaptive
//! optimizers may spend is defined *from the paper's fixed schedules*:
//! [`fixed_budget`] charges every completion the fixed timelines place in
//! `(0, horizon]` at its table's cost, so "adaptive vs fixed at equal
//! budget" is an identity, not a calibration.

use std::collections::BTreeMap;

use ivdss_catalog::catalog::Catalog;
use ivdss_catalog::ids::TableId;
use ivdss_replication::timelines::SyncTimelines;
use ivdss_simkernel::time::SimTime;

/// Per-table cost of one replica refresh. Costs are strictly positive
/// and finite.
#[derive(Debug, Clone, PartialEq)]
pub struct RefreshCosts {
    costs: BTreeMap<TableId, f64>,
}

impl RefreshCosts {
    /// Unit cost for every listed table: the budget counts refreshes.
    #[must_use]
    pub fn uniform(tables: &[TableId]) -> Self {
        let mut out = RefreshCosts {
            costs: BTreeMap::new(),
        };
        for &table in tables {
            out.insert(table, 1.0);
        }
        out
    }

    /// Costs proportional to table size in the catalog, normalized so the
    /// mean cost over `tables` is 1.0 (a budget of `n` still buys about
    /// `n` refreshes, but big tables cost more of it).
    ///
    /// # Panics
    ///
    /// Panics if `tables` is empty or any table is unknown to `catalog`.
    #[must_use]
    pub fn from_catalog(catalog: &Catalog, tables: &[TableId]) -> Self {
        assert!(!tables.is_empty(), "need at least one table to cost");
        let sizes: Vec<f64> = tables
            .iter()
            .map(|&t| catalog.table(t).size_bytes() as f64)
            .collect();
        let mean = sizes.iter().sum::<f64>() / sizes.len() as f64;
        assert!(mean > 0.0, "catalog tables must have positive size");
        let mut out = RefreshCosts {
            costs: BTreeMap::new(),
        };
        for (&table, &size) in tables.iter().zip(&sizes) {
            out.insert(table, size / mean);
        }
        out
    }

    /// Sets `table`'s refresh cost.
    ///
    /// # Panics
    ///
    /// Panics unless `cost` is strictly positive and finite.
    pub fn insert(&mut self, table: TableId, cost: f64) {
        assert!(
            cost.is_finite() && cost > 0.0,
            "refresh cost must be positive and finite, got {cost}"
        );
        self.costs.insert(table, cost);
    }

    /// The cost of one refresh of `table`.
    ///
    /// # Panics
    ///
    /// Panics if the table has no cost.
    #[must_use]
    pub fn cost(&self, table: TableId) -> f64 {
        *self
            .costs
            .get(&table)
            .unwrap_or_else(|| panic!("no refresh cost for {table:?}"))
    }

    /// The cost of one refresh of `table`, if known.
    #[must_use]
    pub fn get(&self, table: TableId) -> Option<f64> {
        self.costs.get(&table).copied()
    }

    /// Tables with a cost, in id order.
    pub fn tables(&self) -> impl Iterator<Item = TableId> + '_ {
        self.costs.keys().copied()
    }

    /// Number of costed tables.
    #[must_use]
    pub fn len(&self) -> usize {
        self.costs.len()
    }

    /// Returns `true` if no table has a cost.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.costs.is_empty()
    }
}

/// The refresh budget the fixed timelines spend over `(0, horizon]`:
/// every completion is charged at its table's cost. The adaptive
/// optimizers receive exactly this amount, which is what makes the
/// never-worse differential an equal-budget comparison.
///
/// # Panics
///
/// Panics if a scheduled table has no cost.
#[must_use]
pub fn fixed_budget(timelines: &SyncTimelines, costs: &RefreshCosts, horizon: SimTime) -> f64 {
    timelines
        .iter()
        .map(|(table, schedule)| {
            costs.cost(table) * schedule.count_in(SimTime::ZERO, horizon) as f64
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivdss_replication::schedule::Schedule;

    fn t(i: u32) -> TableId {
        TableId::new(i)
    }

    #[test]
    fn uniform_costs_count_refreshes() {
        let costs = RefreshCosts::uniform(&[t(0), t(1)]);
        assert_eq!(costs.cost(t(0)), 1.0);
        assert_eq!(costs.len(), 2);

        let mut tl = SyncTimelines::new();
        tl.insert(t(0), Schedule::periodic(10.0, 0.0));
        tl.insert(t(1), Schedule::periodic(5.0, 0.0));
        // (0, 40]: table 0 syncs at 10,20,30,40 (4); table 1 at 5..40 (8).
        let budget = fixed_budget(&tl, &costs, SimTime::new(40.0));
        assert_eq!(budget, 12.0);
    }

    #[test]
    fn weighted_costs_scale_the_budget() {
        let mut costs = RefreshCosts::uniform(&[t(0)]);
        costs.insert(t(0), 2.5);
        let mut tl = SyncTimelines::new();
        tl.insert(t(0), Schedule::periodic(10.0, 0.0));
        assert_eq!(fixed_budget(&tl, &costs, SimTime::new(40.0)), 10.0);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn non_positive_cost_rejected() {
        let mut costs = RefreshCosts::uniform(&[t(0)]);
        costs.insert(t(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "no refresh cost")]
    fn missing_cost_panics() {
        let costs = RefreshCosts::uniform(&[t(0)]);
        let _ = costs.cost(t(7));
    }
}
