//! Workload-IV evaluation of candidate schedules.
//!
//! A candidate schedule's fitness is the total information value the
//! *existing* planner delivers for a seeded query workload replayed
//! under that schedule — `mqo::WorkloadEvaluator` replays the requests
//! in submission order against fresh server queues, planning each query
//! with the scatter-and-gather search and committing its service window,
//! so schedule fitness and query planning share one source of truth
//! (same search, same cost model, same queueing).

use std::sync::Arc;

use ivdss_catalog::catalog::Catalog;
use ivdss_core::parallel::PlannerPool;
use ivdss_core::plan::QueryRequest;
use ivdss_core::value::DiscountRates;
use ivdss_costmodel::model::CostModel;
use ivdss_mqo::evaluate::WorkloadEvaluator;
use ivdss_replication::timelines::SyncTimelines;

/// Evaluates schedules by replaying a fixed workload under them.
pub struct ScheduleEvaluator<'a> {
    catalog: &'a Catalog,
    model: &'a dyn CostModel,
    rates: DiscountRates,
    requests: &'a [QueryRequest],
    pool: Arc<PlannerPool>,
}

impl<'a> ScheduleEvaluator<'a> {
    /// Creates an evaluator over `requests` (replayed in slice order,
    /// which callers should keep as submission order — the serving
    /// engine's FIFO).
    ///
    /// # Panics
    ///
    /// Panics if `requests` is empty.
    #[must_use]
    pub fn new(
        catalog: &'a Catalog,
        model: &'a dyn CostModel,
        rates: DiscountRates,
        requests: &'a [QueryRequest],
    ) -> Self {
        assert!(!requests.is_empty(), "workload must contain a query");
        ScheduleEvaluator {
            catalog,
            model,
            rates,
            requests,
            pool: Arc::new(PlannerPool::sequential()),
        }
    }

    /// Shares a planner pool (builder-style):
    /// [`ScheduleEvaluator::workload_iv_batch`] fans independent
    /// candidate schedules out over it. One schedule's replay stays
    /// sequential — each query's plan depends on the queues committed by
    /// the queries before it.
    #[must_use]
    pub fn with_pool(mut self, pool: Arc<PlannerPool>) -> Self {
        self.pool = pool;
        self
    }

    /// The pool candidate schedules are evaluated on.
    #[must_use]
    pub fn pool(&self) -> &Arc<PlannerPool> {
        &self.pool
    }

    /// The requests under evaluation.
    #[must_use]
    pub fn requests(&self) -> &[QueryRequest] {
        self.requests
    }

    /// Total workload IV delivered under `timelines`: the submission
    /// order replayed with queue commitment.
    ///
    /// # Panics
    ///
    /// Panics if plan selection fails, which indicates an inconsistent
    /// evaluator (the search only generates valid candidates).
    #[must_use]
    pub fn workload_iv(&self, timelines: &SyncTimelines) -> f64 {
        let order: Vec<usize> = (0..self.requests.len()).collect();
        WorkloadEvaluator::new(
            self.catalog,
            timelines,
            self.model,
            self.rates,
            self.requests,
        )
        .evaluate_order(&order)
        .expect("workload evaluation cannot fail on valid context")
        .total_information_value
    }

    /// Evaluates a batch of candidate schedules, fanned over the pool.
    /// Returns IVs in input order, identical to mapping
    /// [`ScheduleEvaluator::workload_iv`].
    #[must_use]
    pub fn workload_iv_batch(&self, candidates: &[SyncTimelines]) -> Vec<f64> {
        self.pool
            .run_indexed(candidates.len(), |i| self.workload_iv(&candidates[i]))
    }
}

impl std::fmt::Debug for ScheduleEvaluator<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScheduleEvaluator")
            .field("queries", &self.requests.len())
            .field("rates", &self.rates)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivdss_catalog::ids::TableId;
    use ivdss_catalog::replica::{ReplicaSpec, ReplicationPlan};
    use ivdss_catalog::synthetic::{synthetic_catalog, SyntheticConfig};
    use ivdss_costmodel::model::StylizedCostModel;
    use ivdss_costmodel::query::{QueryId, QuerySpec};
    use ivdss_replication::timelines::SyncMode;
    use ivdss_simkernel::time::SimTime;

    fn t(i: u32) -> TableId {
        TableId::new(i)
    }

    fn fixture() -> (Catalog, SyncTimelines, Vec<QueryRequest>) {
        let base = synthetic_catalog(&SyntheticConfig {
            tables: 5,
            sites: 2,
            replicated_tables: 0,
            seed: 23,
            ..SyntheticConfig::default()
        })
        .unwrap();
        let mut plan = ReplicationPlan::new();
        for i in 0..3 {
            plan.add(t(i), ReplicaSpec::new(6.0 + f64::from(i)));
        }
        let catalog = base.with_replication(plan).unwrap();
        let timelines = SyncTimelines::from_plan(catalog.replication(), SyncMode::Deterministic);
        let requests = vec![
            QueryRequest::new(
                QuerySpec::new(QueryId::new(0), vec![t(0), t(1)]),
                SimTime::new(9.0),
            ),
            QueryRequest::new(
                QuerySpec::new(QueryId::new(1), vec![t(1), t(2)]),
                SimTime::new(12.0),
            ),
        ];
        (catalog, timelines, requests)
    }

    #[test]
    fn workload_iv_is_deterministic_and_positive() {
        let (catalog, timelines, requests) = fixture();
        let model = StylizedCostModel::paper_fig4();
        let eval =
            ScheduleEvaluator::new(&catalog, &model, DiscountRates::new(0.02, 0.08), &requests);
        let a = eval.workload_iv(&timelines);
        let b = eval.workload_iv(&timelines);
        assert_eq!(a.to_bits(), b.to_bits());
        assert!(a > 0.0);
    }

    #[test]
    fn batch_matches_pointwise_on_a_pool() {
        let (catalog, timelines, requests) = fixture();
        let model = StylizedCostModel::paper_fig4();
        let eval =
            ScheduleEvaluator::new(&catalog, &model, DiscountRates::new(0.02, 0.08), &requests)
                .with_pool(Arc::new(PlannerPool::new(3)));
        assert_eq!(eval.pool().threads(), 3);
        let candidates = vec![timelines.clone(), timelines.clone(), timelines];
        let batch = eval.workload_iv_batch(&candidates);
        let pointwise: Vec<f64> = candidates.iter().map(|tl| eval.workload_iv(tl)).collect();
        assert_eq!(batch, pointwise);
    }

    #[test]
    #[should_panic(expected = "workload must contain")]
    fn empty_workload_rejected() {
        let (catalog, _, _) = fixture();
        let model = StylizedCostModel::paper_fig4();
        let requests: Vec<QueryRequest> = Vec::new();
        let _ = ScheduleEvaluator::new(&catalog, &model, DiscountRates::new(0.02, 0.08), &requests);
    }
}
