//! The adaptive scheduler: greedy + GA search under a never-worse guard.
//!
//! [`AdaptiveScheduler::optimize`] takes the paper's fixed timelines,
//! derives the refresh budget they spend, runs the greedy marginal-IV
//! pass and (optionally) the GA search at that budget, and commits the
//! best of **{fixed, greedy, GA}** by workload IV. The fixed schedules
//! stay in the candidate set and are only displaced by a *strict*
//! improvement, so the committed schedule never underperforms the
//! paper's — structurally, on every input. The differential suite
//! re-derives the chosen IV from the chosen timelines to keep this
//! honest.

use std::sync::Arc;

use ivdss_catalog::catalog::Catalog;
use ivdss_catalog::ids::TableId;
use ivdss_core::parallel::PlannerPool;
use ivdss_core::plan::QueryRequest;
use ivdss_core::value::DiscountRates;
use ivdss_costmodel::model::CostModel;
use ivdss_ga::engine::{optimize_permutation_batch, GaConfig};
use ivdss_obs::{EventKind, Tracer};
use ivdss_replication::timelines::SyncTimelines;
use ivdss_simkernel::time::SimTime;

use crate::alloc::ScheduleAllocation;
use crate::cost::{fixed_budget, RefreshCosts};
use crate::evaluate::ScheduleEvaluator;
use crate::genome::UpgradePool;
use crate::greedy::{greedy_schedule, GreedyOutcome};

/// Configuration of one adaptive optimization run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Scheduling horizon: budgets and allocations cover `(0, horizon]`.
    pub horizon: SimTime,
    /// GA search configuration; `None` runs the greedy pass only.
    pub ga: Option<GaConfig>,
    /// Optional bound on any single table's refresh count (also caps the
    /// GA genome length).
    pub max_refreshes_per_table: Option<usize>,
}

impl AdaptiveConfig {
    /// Greedy + paper-configured GA over the given horizon.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is not strictly positive.
    #[must_use]
    pub fn new(horizon: SimTime) -> Self {
        assert!(horizon > SimTime::ZERO, "horizon must be positive");
        AdaptiveConfig {
            horizon,
            ga: Some(GaConfig::paper()),
            max_refreshes_per_table: None,
        }
    }

    /// Drops the GA stage (builder-style).
    #[must_use]
    pub fn greedy_only(mut self) -> Self {
        self.ga = None;
        self
    }
}

/// Which candidate the guard committed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleSource {
    /// The paper's fixed schedules (no candidate strictly improved).
    Fixed,
    /// The greedy marginal-IV allocation.
    Greedy,
    /// The GA search's best allocation.
    Ga,
}

impl ScheduleSource {
    /// Stable label, as rendered in traces.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ScheduleSource::Fixed => "fixed",
            ScheduleSource::Greedy => "greedy",
            ScheduleSource::Ga => "ga",
        }
    }
}

/// The GA stage's result.
#[derive(Debug, Clone, PartialEq)]
pub struct GaScheduleOutcome {
    /// The best allocation found.
    pub allocation: ScheduleAllocation,
    /// Its emitted timelines.
    pub timelines: SyncTimelines,
    /// Workload IV under those timelines.
    pub iv: f64,
    /// Budget the allocation spends (≤ the run's budget).
    pub budget_used: f64,
    /// Workload evaluations the GA performed.
    pub evaluations: usize,
    /// Best fitness per generation (monotone, from elitism).
    pub history: Vec<f64>,
    /// Genome length (refresh-increment items).
    pub genome_len: usize,
}

/// One adaptive optimization run's full result.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveOutcome {
    /// The refresh budget, as spent by the fixed schedules.
    pub budget: f64,
    /// Workload IV under the fixed schedules — the never-worse floor.
    pub fixed_iv: f64,
    /// The greedy pass's result (raw, unguarded).
    pub greedy: GreedyOutcome,
    /// The GA stage's result, when configured and the genome is
    /// non-degenerate.
    pub ga: Option<GaScheduleOutcome>,
    /// Which candidate the guard committed.
    pub source: ScheduleSource,
    /// The committed timelines.
    pub chosen: SyncTimelines,
    /// Workload IV under the committed timelines (max of the candidate
    /// IVs — never below `fixed_iv`).
    pub chosen_iv: f64,
    /// Budget the committed timelines spend.
    pub chosen_budget_used: f64,
}

impl AdaptiveOutcome {
    /// Absolute IV improvement of the committed schedule over fixed
    /// (never negative).
    #[must_use]
    pub fn gain(&self) -> f64 {
        self.chosen_iv - self.fixed_iv
    }
}

/// Searches sync-schedule space for maximum expected workload IV.
pub struct AdaptiveScheduler<'a> {
    evaluator: ScheduleEvaluator<'a>,
    costs: RefreshCosts,
    tracer: Tracer,
}

impl<'a> AdaptiveScheduler<'a> {
    /// Creates a scheduler evaluating candidates against `requests`
    /// (submission order) with the given planner inputs and per-table
    /// refresh costs.
    ///
    /// # Panics
    ///
    /// Panics if `requests` is empty.
    #[must_use]
    pub fn new(
        catalog: &'a Catalog,
        model: &'a dyn CostModel,
        rates: DiscountRates,
        requests: &'a [QueryRequest],
        costs: RefreshCosts,
    ) -> Self {
        AdaptiveScheduler {
            evaluator: ScheduleEvaluator::new(catalog, model, rates, requests),
            costs,
            tracer: Tracer::disabled(),
        }
    }

    /// Fans candidate evaluations out over `pool` (builder-style).
    #[must_use]
    pub fn with_pool(mut self, pool: Arc<PlannerPool>) -> Self {
        self.evaluator = self.evaluator.with_pool(pool);
        self
    }

    /// Emits scheduler decisions (`sched_budget`, `sched_pick`,
    /// `sched_chosen`) into `tracer` (builder-style).
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// The evaluator candidates are scored with.
    #[must_use]
    pub fn evaluator(&self) -> &ScheduleEvaluator<'a> {
        &self.evaluator
    }

    /// The per-table refresh costs.
    #[must_use]
    pub fn costs(&self) -> &RefreshCosts {
        &self.costs
    }

    /// Optimizes the sync schedules at the budget the `fixed` timelines
    /// spend over `config.horizon`.
    ///
    /// # Panics
    ///
    /// Panics if `fixed` is empty or a scheduled table has no cost.
    #[must_use]
    pub fn optimize(&self, fixed: &SyncTimelines, config: &AdaptiveConfig) -> AdaptiveOutcome {
        assert!(!fixed.is_empty(), "need at least one replicated table");
        let tables: Vec<TableId> = fixed.iter().map(|(t, _)| t).collect();
        let budget = fixed_budget(fixed, &self.costs, config.horizon);
        let fixed_iv = self.evaluator.workload_iv(fixed);
        self.tracer
            .emit_with(SimTime::ZERO, || EventKind::SchedBudget {
                tables: tables.len(),
                budget,
                fixed_iv,
            });

        let greedy = greedy_schedule(
            &self.evaluator,
            &self.costs,
            budget,
            &tables,
            config.horizon,
            config.max_refreshes_per_table,
            &self.tracer,
        );

        let ga = config.ga.and_then(|ga_config| {
            let seed_picks: Vec<TableId> = greedy.picks.iter().map(|p| p.table).collect();
            let pool = UpgradePool::new(
                &tables,
                config.horizon,
                &self.costs,
                budget,
                &seed_picks,
                config.max_refreshes_per_table,
            );
            if pool.len() < 2 {
                return None;
            }
            let result = optimize_permutation_batch(pool.len(), &ga_config, |generation| {
                let candidates: Vec<SyncTimelines> = generation
                    .iter()
                    .map(|perm| pool.decode(perm).to_timelines())
                    .collect();
                self.evaluator.workload_iv_batch(&candidates)
            });
            let allocation = pool.decode(&result.best);
            let budget_used = allocation.spend(&self.costs);
            Some(GaScheduleOutcome {
                timelines: allocation.to_timelines(),
                iv: result.best_fitness,
                budget_used,
                evaluations: result.evaluations,
                history: result.history,
                genome_len: pool.len(),
                allocation,
            })
        });

        // The never-worse guard: fixed is the incumbent; greedy, then
        // GA, must each *strictly* improve on the best so far to
        // displace it. Ties keep the earlier candidate.
        let mut source = ScheduleSource::Fixed;
        let mut chosen = fixed.clone();
        let mut chosen_iv = fixed_iv;
        let mut chosen_budget_used = budget;
        if greedy.iv > chosen_iv {
            source = ScheduleSource::Greedy;
            chosen = greedy.timelines.clone();
            chosen_iv = greedy.iv;
            chosen_budget_used = greedy.budget_used;
        }
        if let Some(ga_outcome) = &ga {
            if ga_outcome.iv > chosen_iv {
                source = ScheduleSource::Ga;
                chosen = ga_outcome.timelines.clone();
                chosen_iv = ga_outcome.iv;
                chosen_budget_used = ga_outcome.budget_used;
            }
        }
        self.tracer
            .emit_with(SimTime::ZERO, || EventKind::SchedChosen {
                source: source.label(),
                iv: chosen_iv,
                budget_used: chosen_budget_used,
            });

        AdaptiveOutcome {
            budget,
            fixed_iv,
            greedy,
            ga,
            source,
            chosen,
            chosen_iv,
            chosen_budget_used,
        }
    }
}

impl std::fmt::Debug for AdaptiveScheduler<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptiveScheduler")
            .field("evaluator", &self.evaluator)
            .field("costs", &self.costs)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivdss_catalog::replica::{ReplicaSpec, ReplicationPlan};
    use ivdss_catalog::synthetic::{synthetic_catalog, SyntheticConfig};
    use ivdss_costmodel::model::StylizedCostModel;
    use ivdss_costmodel::query::{QueryId, QuerySpec};
    use ivdss_replication::timelines::SyncMode;

    fn t(i: u32) -> TableId {
        TableId::new(i)
    }

    fn fixture() -> (Catalog, SyncTimelines, Vec<QueryRequest>) {
        let base = synthetic_catalog(&SyntheticConfig {
            tables: 5,
            sites: 2,
            replicated_tables: 0,
            seed: 77,
            ..SyntheticConfig::default()
        })
        .unwrap();
        let mut plan = ReplicationPlan::new();
        plan.add(t(0), ReplicaSpec::new(9.0));
        plan.add(t(1), ReplicaSpec::new(7.0));
        plan.add(t(2), ReplicaSpec::new(11.0));
        let catalog = base.with_replication(plan).unwrap();
        let timelines = SyncTimelines::from_plan(catalog.replication(), SyncMode::Deterministic);
        let requests = vec![
            QueryRequest::new(
                QuerySpec::new(QueryId::new(0), vec![t(0), t(1)]),
                SimTime::new(8.0),
            ),
            QueryRequest::new(
                QuerySpec::new(QueryId::new(1), vec![t(1), t(3)]),
                SimTime::new(15.0),
            ),
            QueryRequest::new(
                QuerySpec::new(QueryId::new(2), vec![t(2), t(4)]),
                SimTime::new(22.0),
            ),
        ];
        (catalog, timelines, requests)
    }

    fn small_ga() -> GaConfig {
        GaConfig {
            population: 6,
            generations: 4,
            parents: 3,
            mutation_rate: 0.3,
            elites: 1,
            seed: 0x5EED,
        }
    }

    #[test]
    fn optimize_never_loses_to_fixed() {
        let (catalog, fixed, requests) = fixture();
        let model = StylizedCostModel::paper_fig4();
        let costs = RefreshCosts::uniform(&[t(0), t(1), t(2)]);
        let sched = AdaptiveScheduler::new(
            &catalog,
            &model,
            DiscountRates::new(0.02, 0.08),
            &requests,
            costs,
        );
        let mut config = AdaptiveConfig::new(SimTime::new(36.0));
        config.ga = Some(small_ga());
        let out = sched.optimize(&fixed, &config);
        assert!(out.chosen_iv >= out.fixed_iv);
        assert!(out.gain() >= 0.0);
        assert!(out.greedy.budget_used <= out.budget + 1e-9);
        if let Some(ga) = &out.ga {
            assert!(ga.budget_used <= out.budget + 1e-9);
        }
        // The committed IV is real: re-evaluating the chosen timelines
        // reproduces it bit-for-bit.
        let re = sched.evaluator().workload_iv(&out.chosen);
        assert_eq!(re.to_bits(), out.chosen_iv.to_bits());
    }

    #[test]
    fn optimize_is_deterministic() {
        let (catalog, fixed, requests) = fixture();
        let model = StylizedCostModel::paper_fig4();
        let costs = RefreshCosts::uniform(&[t(0), t(1), t(2)]);
        let sched = AdaptiveScheduler::new(
            &catalog,
            &model,
            DiscountRates::new(0.02, 0.08),
            &requests,
            costs,
        );
        let mut config = AdaptiveConfig::new(SimTime::new(36.0));
        config.ga = Some(small_ga());
        let a = sched.optimize(&fixed, &config);
        let b = sched.optimize(&fixed, &config);
        assert_eq!(a, b);
    }

    #[test]
    fn greedy_only_skips_the_ga() {
        let (catalog, fixed, requests) = fixture();
        let model = StylizedCostModel::paper_fig4();
        let costs = RefreshCosts::uniform(&[t(0), t(1), t(2)]);
        let sched = AdaptiveScheduler::new(
            &catalog,
            &model,
            DiscountRates::new(0.02, 0.08),
            &requests,
            costs,
        );
        let config = AdaptiveConfig::new(SimTime::new(36.0)).greedy_only();
        let out = sched.optimize(&fixed, &config);
        assert!(out.ga.is_none());
        assert_ne!(out.source, ScheduleSource::Ga);
    }

    #[test]
    fn pooled_run_matches_sequential() {
        let (catalog, fixed, requests) = fixture();
        let model = StylizedCostModel::paper_fig4();
        let costs = RefreshCosts::uniform(&[t(0), t(1), t(2)]);
        let mut config = AdaptiveConfig::new(SimTime::new(36.0));
        config.ga = Some(small_ga());
        let sequential = AdaptiveScheduler::new(
            &catalog,
            &model,
            DiscountRates::new(0.02, 0.08),
            &requests,
            costs.clone(),
        )
        .optimize(&fixed, &config);
        let pooled = AdaptiveScheduler::new(
            &catalog,
            &model,
            DiscountRates::new(0.02, 0.08),
            &requests,
            costs,
        )
        .with_pool(Arc::new(PlannerPool::new(3)))
        .optimize(&fixed, &config);
        assert_eq!(sequential, pooled, "pooling must not change the search");
    }

    #[test]
    fn tracer_sees_budget_picks_and_choice() {
        use ivdss_obs::Trace;

        let (catalog, fixed, requests) = fixture();
        let model = StylizedCostModel::paper_fig4();
        let costs = RefreshCosts::uniform(&[t(0), t(1), t(2)]);
        let trace = Arc::new(Trace::new());
        let sched = AdaptiveScheduler::new(
            &catalog,
            &model,
            DiscountRates::new(0.02, 0.08),
            &requests,
            costs,
        )
        .with_tracer(Tracer::recording(Arc::clone(&trace)));
        let config = AdaptiveConfig::new(SimTime::new(36.0)).greedy_only();
        let out = sched.optimize(&fixed, &config);
        let counts = trace.counts();
        assert_eq!(counts.get("sched_budget").copied().unwrap_or(0), 1);
        assert_eq!(
            counts.get("sched_pick").copied().unwrap_or(0),
            out.greedy.picks.len() as u64
        );
        assert_eq!(counts.get("sched_chosen").copied().unwrap_or(0), 1);
    }
}
