//! Schedule allocations: per-table refresh counts over a horizon.
//!
//! The optimizers search over allocations, not raw timelines — an
//! allocation gives each replicated table a number of refreshes, and
//! [`ScheduleAllocation::to_timelines`] lays each table's refreshes out
//! on the staleness-optimal uniform grid. The emitted object is an
//! ordinary `SyncTimelines`, so everything downstream of replication
//! consumes adaptive schedules unchanged.

use std::collections::BTreeMap;

use ivdss_catalog::ids::TableId;
use ivdss_replication::schedule::Schedule;
use ivdss_replication::timelines::SyncTimelines;
use ivdss_simkernel::time::SimTime;

use crate::cost::RefreshCosts;

/// Per-table refresh counts over `(0, horizon]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleAllocation {
    counts: BTreeMap<TableId, usize>,
    horizon: SimTime,
}

impl ScheduleAllocation {
    /// An allocation giving every listed table zero refreshes.
    ///
    /// # Panics
    ///
    /// Panics if `tables` is empty or `horizon` is not strictly positive.
    #[must_use]
    pub fn empty(tables: &[TableId], horizon: SimTime) -> Self {
        assert!(!tables.is_empty(), "allocation needs at least one table");
        assert!(
            horizon > SimTime::ZERO,
            "allocation horizon must be positive"
        );
        ScheduleAllocation {
            counts: tables.iter().map(|&t| (t, 0)).collect(),
            horizon,
        }
    }

    /// The allocation an existing set of timelines spends: each table's
    /// completion count in `(0, horizon]`. This is how the fixed periodic
    /// schedules enter the search as a baseline.
    ///
    /// # Panics
    ///
    /// Panics if `timelines` is empty or `horizon` is not strictly
    /// positive.
    #[must_use]
    pub fn from_timelines(timelines: &SyncTimelines, horizon: SimTime) -> Self {
        assert!(!timelines.is_empty(), "allocation needs at least one table");
        assert!(
            horizon > SimTime::ZERO,
            "allocation horizon must be positive"
        );
        ScheduleAllocation {
            counts: timelines
                .iter()
                .map(|(t, s)| (t, s.count_in(SimTime::ZERO, horizon)))
                .collect(),
            horizon,
        }
    }

    /// The allocation horizon.
    #[must_use]
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// `table`'s refresh count.
    ///
    /// # Panics
    ///
    /// Panics if the table is not part of the allocation.
    #[must_use]
    pub fn count(&self, table: TableId) -> usize {
        *self
            .counts
            .get(&table)
            .unwrap_or_else(|| panic!("{table:?} is not in the allocation"))
    }

    /// Grants `table` one more refresh.
    ///
    /// # Panics
    ///
    /// Panics if the table is not part of the allocation.
    pub fn add(&mut self, table: TableId) {
        *self
            .counts
            .get_mut(&table)
            .unwrap_or_else(|| panic!("{table:?} is not in the allocation")) += 1;
    }

    /// Iterates `(table, count)` in table order.
    pub fn iter(&self) -> impl Iterator<Item = (TableId, usize)> + '_ {
        self.counts.iter().map(|(&t, &c)| (t, c))
    }

    /// The allocated tables, in id order.
    pub fn tables(&self) -> impl Iterator<Item = TableId> + '_ {
        self.counts.keys().copied()
    }

    /// Total refreshes across all tables.
    #[must_use]
    pub fn total_refreshes(&self) -> usize {
        self.counts.values().sum()
    }

    /// The budget this allocation spends under `costs`.
    ///
    /// # Panics
    ///
    /// Panics if an allocated table has no cost.
    #[must_use]
    pub fn spend(&self, costs: &RefreshCosts) -> f64 {
        self.iter().map(|(t, c)| costs.cost(t) * c as f64).sum()
    }

    /// Emits the allocation as synchronization timelines.
    ///
    /// A table with `m ≥ 1` refreshes gets the uniform mid-phase grid
    /// `Periodic { period: H/m, phase: H/(2m) }`: exactly `m` completions
    /// in `(0, H]` at `(k − ½)·H/m`, robust to floating-point rounding
    /// (every completion sits half a period away from the window edges,
    /// where the one-ulp ambiguity of `k·(H/m)` vs `H` lives), and the
    /// spacing that minimizes mean staleness for uniformly arriving
    /// queries. A table with zero refreshes keeps only its initial
    /// version, as an explicit `trace([0])`.
    #[must_use]
    pub fn to_timelines(&self) -> SyncTimelines {
        let mut out = SyncTimelines::new();
        for (table, &count) in &self.counts {
            let schedule = if count == 0 {
                Schedule::trace(vec![SimTime::ZERO])
            } else {
                let period = self.horizon.value() / count as f64;
                Schedule::periodic(period, period / 2.0)
            };
            out.insert(*table, schedule);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TableId {
        TableId::new(i)
    }

    #[test]
    fn emitted_counts_match_allocation_exactly() {
        let horizon = SimTime::new(41.7);
        let mut alloc = ScheduleAllocation::empty(&[t(0), t(1), t(2)], horizon);
        for _ in 0..7 {
            alloc.add(t(0));
        }
        alloc.add(t(1));
        let tl = alloc.to_timelines();
        for (table, count) in alloc.iter() {
            let schedule = tl.schedule(table).expect("every table emitted");
            assert_eq!(
                schedule.count_in(SimTime::ZERO, horizon),
                count,
                "emitted completions must equal the allocated count for {table:?}"
            );
        }
        // The zero-count table still has its initial version.
        assert_eq!(tl.last_sync(t(2), SimTime::new(41.0)), Some(SimTime::ZERO));
    }

    #[test]
    fn mid_phase_grid_is_robust_across_counts() {
        // Sweep awkward horizons and counts; the emitted count must be
        // exact every time (this is where a phase-0 grid loses a
        // completion to one-ulp rounding of m·(H/m)).
        for &h in &[10.0, 33.3, 41.7, 100.0 / 3.0, 59.049] {
            let horizon = SimTime::new(h);
            for m in 1..60usize {
                let mut alloc = ScheduleAllocation::empty(&[t(0)], horizon);
                for _ in 0..m {
                    alloc.add(t(0));
                }
                let tl = alloc.to_timelines();
                assert_eq!(
                    tl.schedule(t(0)).unwrap().count_in(SimTime::ZERO, horizon),
                    m,
                    "horizon {h}, count {m}"
                );
            }
        }
    }

    #[test]
    fn from_timelines_reads_back_fixed_spending() {
        let mut tl = SyncTimelines::new();
        tl.insert(t(0), Schedule::periodic(10.0, 0.0));
        tl.insert(t(1), Schedule::periodic(4.0, 0.0));
        let alloc = ScheduleAllocation::from_timelines(&tl, SimTime::new(40.0));
        assert_eq!(alloc.count(t(0)), 4);
        assert_eq!(alloc.count(t(1)), 10);
        assert_eq!(alloc.total_refreshes(), 14);
        let costs = RefreshCosts::uniform(&[t(0), t(1)]);
        assert_eq!(alloc.spend(&costs), 14.0);
    }

    #[test]
    #[should_panic(expected = "not in the allocation")]
    fn foreign_table_rejected() {
        let mut alloc = ScheduleAllocation::empty(&[t(0)], SimTime::new(10.0));
        alloc.add(t(3));
    }
}
