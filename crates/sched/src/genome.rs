//! Permutation genome for the GA schedule search.
//!
//! A genome item is one *refresh increment* of one table. Decoding a
//! permutation walks the items in chromosome order and grants each
//! increment if its table's cost still fits the remaining budget (else
//! the item is skipped) — so **every** permutation decodes to a feasible
//! allocation and the budget is respected by construction.
//!
//! The item list puts the greedy pass's picks first, in pick order, so
//! the identity permutation — which `ga::optimize_permutation_batch`
//! always seeds into the initial population — decodes to the greedy
//! allocation (plus whatever leftover budget can still buy). The GA
//! starts its search at the greedy incumbent rather than from scratch.

use ivdss_catalog::ids::TableId;
use ivdss_ga::permutation::Permutation;
use ivdss_simkernel::time::SimTime;

use crate::alloc::ScheduleAllocation;
use crate::cost::RefreshCosts;

/// The refresh-increment items the GA permutes.
#[derive(Debug, Clone, PartialEq)]
pub struct UpgradePool {
    items: Vec<TableId>,
    tables: Vec<TableId>,
    costs: RefreshCosts,
    budget: f64,
    horizon: SimTime,
}

impl UpgradePool {
    /// Builds the pool. Each table contributes as many items as its cost
    /// fits into the budget (bounded by `cap`, when given); the first
    /// items replay `seed_picks` (the greedy pick sequence), the rest
    /// fill remaining capacity in table order.
    ///
    /// # Panics
    ///
    /// Panics if `tables` is empty, a table has no cost, the budget is
    /// negative or non-finite, or `seed_picks` overruns a table's
    /// capacity.
    #[must_use]
    pub fn new(
        tables: &[TableId],
        horizon: SimTime,
        costs: &RefreshCosts,
        budget: f64,
        seed_picks: &[TableId],
        cap: Option<usize>,
    ) -> Self {
        assert!(!tables.is_empty(), "pool needs at least one table");
        assert!(
            budget.is_finite() && budget >= 0.0,
            "budget must be finite and non-negative, got {budget}"
        );
        let mut sorted: Vec<TableId> = tables.to_vec();
        sorted.sort_unstable();
        sorted.dedup();

        let capacity = |table: TableId| -> usize {
            let by_budget = (budget / costs.cost(table)).floor() as usize;
            cap.map_or(by_budget, |c| by_budget.min(c))
        };

        let mut items: Vec<TableId> = Vec::new();
        let mut used: std::collections::BTreeMap<TableId, usize> =
            sorted.iter().map(|&t| (t, 0)).collect();
        for &pick in seed_picks {
            let slot = used
                .get_mut(&pick)
                .unwrap_or_else(|| panic!("seed pick {pick:?} is not a pooled table"));
            assert!(
                *slot < capacity(pick),
                "seed picks overrun {pick:?}'s capacity"
            );
            *slot += 1;
            items.push(pick);
        }
        for &table in &sorted {
            let have = used[&table];
            for _ in have..capacity(table) {
                items.push(table);
            }
        }

        UpgradePool {
            items,
            tables: sorted,
            costs: costs.clone(),
            budget,
            horizon,
        }
    }

    /// Number of genome items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` if no table can afford a single refresh.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The pooled tables, in id order.
    #[must_use]
    pub fn tables(&self) -> &[TableId] {
        &self.tables
    }

    /// The pool's budget.
    #[must_use]
    pub fn budget(&self) -> f64 {
        self.budget
    }

    /// Decodes a chromosome into a feasible allocation: walk the items
    /// in chromosome order, grant each increment its table's cost still
    /// affords, skip the rest.
    ///
    /// # Panics
    ///
    /// Panics if `perm` does not permute `0..len`.
    #[must_use]
    pub fn decode(&self, perm: &Permutation) -> ScheduleAllocation {
        assert_eq!(perm.len(), self.items.len(), "chromosome length mismatch");
        let mut allocation = ScheduleAllocation::empty(&self.tables, self.horizon);
        let mut remaining = self.budget;
        for idx in perm.iter() {
            let table = self.items[idx];
            let cost = self.costs.cost(table);
            if cost <= remaining {
                allocation.add(table);
                remaining -= cost;
            }
        }
        allocation
    }

    /// Encodes an allocation as a chromosome whose decode reproduces at
    /// least it: each table's granted increments come first (in table
    /// order), the remaining items follow in pool order. Because
    /// [`UpgradePool::decode`] keeps spending leftover budget, the
    /// round-trip law is `decode(encode(decode(p))) == decode(p)` for
    /// every permutation `p` — allocations that saturate their budget
    /// round-trip exactly (`tests/sched_props.rs` pins both).
    ///
    /// Returns `None` if a table's count exceeds its pooled capacity or
    /// the allocation's tables differ from the pool's.
    #[must_use]
    pub fn encode(&self, allocation: &ScheduleAllocation) -> Option<Permutation> {
        let alloc_tables: Vec<TableId> = allocation.tables().collect();
        if alloc_tables != self.tables {
            return None;
        }
        // Item indices per table, in pool order.
        let mut by_table: std::collections::BTreeMap<TableId, Vec<usize>> =
            std::collections::BTreeMap::new();
        for (idx, &table) in self.items.iter().enumerate() {
            by_table.entry(table).or_default().push(idx);
        }
        let mut front: Vec<usize> = Vec::new();
        let mut taken = vec![false; self.items.len()];
        for (table, count) in allocation.iter() {
            let slots = by_table.get(&table).map_or(&[][..], Vec::as_slice);
            if count > slots.len() {
                return None;
            }
            for &idx in &slots[..count] {
                front.push(idx);
                taken[idx] = true;
            }
        }
        front.extend((0..self.items.len()).filter(|&i| !taken[i]));
        Some(Permutation::new(front).expect("indices form a permutation"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::RefreshCosts;

    fn t(i: u32) -> TableId {
        TableId::new(i)
    }

    fn pool() -> UpgradePool {
        let tables = [t(0), t(1)];
        let costs = RefreshCosts::uniform(&tables);
        UpgradePool::new(&tables, SimTime::new(20.0), &costs, 4.0, &[t(1)], None)
    }

    #[test]
    fn identity_decode_starts_with_seed_picks() {
        let p = pool();
        // Budget 4, unit costs: 4 items per table minus seeding overlap.
        assert_eq!(p.len(), 8);
        let alloc = p.decode(&Permutation::identity(p.len()));
        // Identity spends the whole budget: seed pick first (table 1),
        // then fills table 0's capacity.
        assert_eq!(alloc.total_refreshes(), 4);
        assert_eq!(alloc.count(t(1)), 1);
        assert_eq!(alloc.count(t(0)), 3);
    }

    #[test]
    fn every_permutation_decodes_within_budget() {
        let p = pool();
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(9);
        for _ in 0..50 {
            let perm = Permutation::random(p.len(), &mut rng);
            let alloc = p.decode(&perm);
            assert!(alloc.spend(&RefreshCosts::uniform(&[t(0), t(1)])) <= p.budget());
        }
    }

    #[test]
    fn decode_encode_decode_is_stable() {
        let p = pool();
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(11);
        for _ in 0..50 {
            let perm = Permutation::random(p.len(), &mut rng);
            let alloc = p.decode(&perm);
            let re = p.encode(&alloc).expect("decoded allocations encode");
            assert_eq!(p.decode(&re), alloc);
        }
    }

    #[test]
    fn overfull_allocation_does_not_encode() {
        let p = pool();
        let mut alloc = ScheduleAllocation::empty(&[t(0), t(1)], SimTime::new(20.0));
        for _ in 0..5 {
            alloc.add(t(0));
        }
        assert!(p.encode(&alloc).is_none());
    }
}
