//! The marginal-IV greedy baseline.
//!
//! Start from zero refreshes and repeatedly buy the single refresh with
//! the highest workload-IV gain *per unit cost*, until the budget is
//! exhausted or no affordable refresh improves the workload. Candidate
//! evaluations within one step are independent and fan out over the
//! evaluator's `PlannerPool`.
//!
//! Tie-breaking is by gain-per-cost, then raw gain, then smaller table
//! id — a total order on exact `f64` equality, so the pick sequence is a
//! pure function of the candidate *set*, independent of the order tables
//! are presented in (`tests/sched_props.rs` pins this).

use ivdss_catalog::ids::TableId;
use ivdss_obs::{EventKind, Tracer};
use ivdss_replication::timelines::SyncTimelines;
use ivdss_simkernel::time::SimTime;

use crate::alloc::ScheduleAllocation;
use crate::cost::RefreshCosts;
use crate::evaluate::ScheduleEvaluator;

/// Gains at or below this threshold stop the greedy loop: buying noise
/// would spend budget without a meaningful IV return.
const GAIN_FLOOR: f64 = 1e-12;

/// One greedy decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GreedyPick {
    /// The table granted a refresh.
    pub table: TableId,
    /// The table's refresh count after the pick.
    pub refreshes: usize,
    /// The refresh's cost, charged against the budget.
    pub cost: f64,
    /// The workload-IV gain the pick bought.
    pub gain: f64,
    /// Total workload IV after the pick.
    pub iv_after: f64,
}

/// The greedy pass's result.
#[derive(Debug, Clone, PartialEq)]
pub struct GreedyOutcome {
    /// The final allocation.
    pub allocation: ScheduleAllocation,
    /// The allocation's emitted timelines.
    pub timelines: SyncTimelines,
    /// Workload IV under those timelines.
    pub iv: f64,
    /// Budget actually spent (≤ the given budget).
    pub budget_used: f64,
    /// Every pick, in decision order.
    pub picks: Vec<GreedyPick>,
    /// Workload evaluations performed.
    pub evaluations: usize,
}

/// Runs the greedy marginal-IV pass. `tables` is the candidate set (the
/// replicated tables); `cap` optionally bounds any one table's refresh
/// count. Picks are emitted to `tracer` as `sched_pick` events stamped
/// at [`SimTime::ZERO`] (schedule decisions precede the horizon).
///
/// # Panics
///
/// Panics if `tables` is empty, a table has no cost, or the budget is
/// negative or non-finite.
#[must_use]
pub fn greedy_schedule(
    evaluator: &ScheduleEvaluator<'_>,
    costs: &RefreshCosts,
    budget: f64,
    tables: &[TableId],
    horizon: SimTime,
    cap: Option<usize>,
    tracer: &Tracer,
) -> GreedyOutcome {
    assert!(
        budget.is_finite() && budget >= 0.0,
        "budget must be finite and non-negative, got {budget}"
    );
    let mut allocation = ScheduleAllocation::empty(tables, horizon);
    let mut iv = evaluator.workload_iv(&allocation.to_timelines());
    let mut evaluations = 1;
    let mut remaining = budget;
    let mut picks = Vec::new();

    loop {
        let candidates: Vec<TableId> = allocation
            .tables()
            .filter(|&t| costs.cost(t) <= remaining)
            .filter(|&t| cap.is_none_or(|c| allocation.count(t) < c))
            .collect();
        if candidates.is_empty() {
            break;
        }
        let trials: Vec<SyncTimelines> = candidates
            .iter()
            .map(|&t| {
                let mut next = allocation.clone();
                next.add(t);
                next.to_timelines()
            })
            .collect();
        let ivs = evaluator.workload_iv_batch(&trials);
        evaluations += ivs.len();

        // Best (gain/cost, gain, smaller id): a total order under exact
        // f64 comparison, so the winner is presentation-order-free.
        let best = candidates
            .iter()
            .zip(&ivs)
            .map(|(&t, &trial_iv)| {
                let cost = costs.cost(t);
                let gain = trial_iv - iv;
                (t, cost, gain, gain / cost, trial_iv)
            })
            .max_by(|a, b| {
                a.3.partial_cmp(&b.3)
                    .expect("gain per cost is finite")
                    .then(a.2.partial_cmp(&b.2).expect("gain is finite"))
                    .then(b.0.cmp(&a.0))
            })
            .expect("candidates are non-empty");
        let (table, cost, gain, _, trial_iv) = best;
        if gain <= GAIN_FLOOR {
            break;
        }
        allocation.add(table);
        remaining -= cost;
        iv = trial_iv;
        let pick = GreedyPick {
            table,
            refreshes: allocation.count(table),
            cost,
            gain,
            iv_after: trial_iv,
        };
        tracer.emit_with(SimTime::ZERO, || EventKind::SchedPick {
            table: pick.table,
            refreshes: pick.refreshes,
            cost: pick.cost,
            gain: pick.gain,
        });
        picks.push(pick);
    }

    GreedyOutcome {
        timelines: allocation.to_timelines(),
        iv,
        budget_used: budget - remaining,
        picks,
        evaluations,
        allocation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivdss_catalog::catalog::Catalog;
    use ivdss_catalog::replica::{ReplicaSpec, ReplicationPlan};
    use ivdss_catalog::synthetic::{synthetic_catalog, SyntheticConfig};
    use ivdss_core::plan::QueryRequest;
    use ivdss_core::value::DiscountRates;
    use ivdss_costmodel::model::StylizedCostModel;
    use ivdss_costmodel::query::{QueryId, QuerySpec};

    fn t(i: u32) -> TableId {
        TableId::new(i)
    }

    fn fixture() -> (Catalog, Vec<QueryRequest>) {
        let base = synthetic_catalog(&SyntheticConfig {
            tables: 4,
            sites: 2,
            replicated_tables: 0,
            seed: 5,
            ..SyntheticConfig::default()
        })
        .unwrap();
        let mut plan = ReplicationPlan::new();
        plan.add(t(0), ReplicaSpec::new(8.0));
        plan.add(t(1), ReplicaSpec::new(8.0));
        let catalog = base.with_replication(plan).unwrap();
        let requests = vec![
            QueryRequest::new(
                QuerySpec::new(QueryId::new(0), vec![t(0), t(2)]),
                SimTime::new(10.0),
            ),
            QueryRequest::new(
                QuerySpec::new(QueryId::new(1), vec![t(0), t(3)]),
                SimTime::new(20.0),
            ),
        ];
        (catalog, requests)
    }

    #[test]
    fn greedy_respects_budget_and_gains() {
        let (catalog, requests) = fixture();
        let model = StylizedCostModel::paper_fig4();
        let eval =
            ScheduleEvaluator::new(&catalog, &model, DiscountRates::new(0.02, 0.08), &requests);
        let costs = RefreshCosts::uniform(&[t(0), t(1)]);
        let out = greedy_schedule(
            &eval,
            &costs,
            6.0,
            &[t(0), t(1)],
            SimTime::new(30.0),
            None,
            &Tracer::disabled(),
        );
        assert!(out.budget_used <= 6.0);
        assert_eq!(out.budget_used, out.allocation.spend(&costs));
        // Every pick must strictly gain, and the IV trajectory must be
        // the cumulative sum of gains.
        let mut iv = eval.workload_iv(
            &ScheduleAllocation::empty(&[t(0), t(1)], SimTime::new(30.0)).to_timelines(),
        );
        for pick in &out.picks {
            assert!(pick.gain > 0.0);
            iv += pick.gain;
            assert!((iv - pick.iv_after).abs() < 1e-9);
        }
        assert_eq!(out.iv, out.picks.last().map_or(iv, |p| p.iv_after));
        // Only the queried table is worth refreshing: table 1 serves no
        // query, so greedy must not spend on it.
        assert_eq!(out.allocation.count(t(1)), 0);
        assert!(out.allocation.count(t(0)) >= 1);
    }

    #[test]
    fn cap_bounds_any_single_table() {
        let (catalog, requests) = fixture();
        let model = StylizedCostModel::paper_fig4();
        let eval =
            ScheduleEvaluator::new(&catalog, &model, DiscountRates::new(0.02, 0.08), &requests);
        let costs = RefreshCosts::uniform(&[t(0), t(1)]);
        let out = greedy_schedule(
            &eval,
            &costs,
            10.0,
            &[t(0), t(1)],
            SimTime::new(30.0),
            Some(2),
            &Tracer::disabled(),
        );
        assert!(out.allocation.count(t(0)) <= 2);
        assert!(out.allocation.count(t(1)) <= 2);
    }

    #[test]
    fn zero_budget_buys_nothing() {
        let (catalog, requests) = fixture();
        let model = StylizedCostModel::paper_fig4();
        let eval =
            ScheduleEvaluator::new(&catalog, &model, DiscountRates::new(0.02, 0.08), &requests);
        let costs = RefreshCosts::uniform(&[t(0), t(1)]);
        let out = greedy_schedule(
            &eval,
            &costs,
            0.0,
            &[t(0), t(1)],
            SimTime::new(30.0),
            None,
            &Tracer::disabled(),
        );
        assert!(out.picks.is_empty());
        assert_eq!(out.budget_used, 0.0);
        assert_eq!(out.allocation.total_refreshes(), 0);
    }
}
