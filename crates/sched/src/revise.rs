//! Online re-scheduling as ordinary timeline revisions.
//!
//! A running system cannot conjure refreshes it never provisioned — but
//! it *can* re-time or cancel the ones still ahead. ([`SyncTimelines::revise`]
//! has exactly this shape: it moves or drops existing completions and
//! cannot add new ones.) [`reschedule_revisions`] therefore expresses
//! "steer the current schedule toward the adaptive target" as a list of
//! plain [`TimelineRevision`]s: the `i`-th future completion of each
//! table is moved onto the target's `i`-th future completion, surplus
//! completions are dropped, and target completions beyond the current
//! schedule's remaining count are unreachable and ignored. Applying the
//! revisions can only *reduce* the remaining refresh spend — online
//! re-scheduling never exceeds the already-provisioned budget.

use ivdss_core::repair::ReplanCache;
use ivdss_replication::events::TimelineRevision;
use ivdss_replication::timelines::SyncTimelines;
use ivdss_simkernel::time::SimTime;

/// Computes the revisions that steer `current`'s future completions (in
/// `(from, horizon]`) onto `target`'s, pairing them in time order per
/// table. All revisions carry `revealed_at = from` — the re-scheduling
/// decision instant — and arrive sorted by `(revealed_at, table)`, the
/// order `RevisionCursor` delivers.
///
/// Tables present in `current` but absent from `target` have all their
/// future completions dropped; tables only in `target` are ignored
/// (revisions cannot add completions).
#[must_use]
pub fn reschedule_revisions(
    current: &SyncTimelines,
    target: &SyncTimelines,
    from: SimTime,
    horizon: SimTime,
) -> Vec<TimelineRevision> {
    let mut out = Vec::new();
    for (table, schedule) in current.iter() {
        let cur = schedule.completions_in(from, horizon);
        let tgt = target
            .schedule(table)
            .map_or_else(Vec::new, |s| s.completions_in(from, horizon));
        for (i, &scheduled) in cur.iter().enumerate() {
            match tgt.get(i) {
                Some(&new_time) if new_time == scheduled => {}
                Some(&new_time) => out.push(TimelineRevision {
                    revealed_at: from,
                    table,
                    scheduled,
                    new_time: Some(new_time),
                }),
                None => out.push(TimelineRevision {
                    revealed_at: from,
                    table,
                    scheduled,
                    new_time: None,
                }),
            }
        }
    }
    out
}

/// Computes *and applies* the reschedule in one step: clones `current`,
/// lands every [`reschedule_revisions`] revision on the clone, and —
/// when a [`ReplanCache`] is steering dispatch — invalidates each
/// revision's dirty window so subsequent repaired searches stay
/// bit-identical to from-scratch searches over the revised timelines.
///
/// Returns the revised timelines plus the revisions that were applied
/// (the caller typically forwards them to engines as fault events).
///
/// # Panics
///
/// Panics if a computed revision fails to land — impossible for
/// revisions derived from `current`'s own future completions.
#[must_use]
pub fn apply_reschedule(
    current: &SyncTimelines,
    target: &SyncTimelines,
    from: SimTime,
    horizon: SimTime,
    repair: Option<&ReplanCache>,
) -> (SyncTimelines, Vec<TimelineRevision>) {
    let revisions = reschedule_revisions(current, target, from, horizon);
    let mut revised = current.clone();
    for revision in &revisions {
        assert!(
            revised.revise(revision, horizon),
            "reschedule revision must land: {revision:?}"
        );
        if let Some(cache) = repair {
            cache.invalidate_revision(revision);
        }
    }
    (revised, revisions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivdss_catalog::ids::TableId;
    use ivdss_replication::schedule::Schedule;

    fn t(i: u32) -> TableId {
        TableId::new(i)
    }

    fn apply(
        timelines: &SyncTimelines,
        revisions: &[TimelineRevision],
        horizon: SimTime,
    ) -> SyncTimelines {
        let mut out = timelines.clone();
        for r in revisions {
            assert!(out.revise(r, horizon), "revision must land: {r:?}");
        }
        out
    }

    #[test]
    fn revisions_steer_current_onto_target() {
        let horizon = SimTime::new(40.0);
        let mut current = SyncTimelines::new();
        current.insert(t(0), Schedule::periodic(10.0, 0.0)); // 10, 20, 30, 40
        let mut target = SyncTimelines::new();
        target.insert(t(0), Schedule::periodic(20.0, 10.0)); // 10, 30 (in (5, 40])

        let revisions = reschedule_revisions(&current, &target, SimTime::new(5.0), horizon);
        let revised = apply(&current, &revisions, horizon);
        assert_eq!(
            revised
                .schedule(t(0))
                .unwrap()
                .completions_in(SimTime::new(5.0), horizon),
            vec![SimTime::new(10.0), SimTime::new(30.0)],
            "future completions must land on the target grid (truncated to the current count)"
        );
        // The completion at 0 (before `from`) is untouched.
        assert_eq!(
            revised.last_sync(t(0), SimTime::new(5.0)),
            Some(SimTime::ZERO)
        );
    }

    #[test]
    fn rescheduling_never_adds_refreshes() {
        let horizon = SimTime::new(40.0);
        let mut current = SyncTimelines::new();
        current.insert(t(0), Schedule::periodic(20.0, 0.0)); // 20, 40
        let mut target = SyncTimelines::new();
        target.insert(t(0), Schedule::periodic(5.0, 2.5)); // 8 future completions

        let from = SimTime::new(1.0);
        let before = current.schedule(t(0)).unwrap().count_in(from, horizon);
        let revisions = reschedule_revisions(&current, &target, from, horizon);
        let revised = apply(&current, &revisions, horizon);
        let after = revised.schedule(t(0)).unwrap().count_in(from, horizon);
        assert!(after <= before, "rescheduling cannot add completions");
        assert_eq!(after, 2, "both provisioned refreshes are re-timed");
    }

    #[test]
    fn missing_target_table_drops_all_future_completions() {
        let horizon = SimTime::new(30.0);
        let mut current = SyncTimelines::new();
        current.insert(t(0), Schedule::periodic(10.0, 0.0));
        let target = SyncTimelines::new();

        let from = SimTime::new(0.0);
        let revisions = reschedule_revisions(&current, &target, from, horizon);
        assert_eq!(revisions.len(), 3);
        assert!(revisions.iter().all(|r| r.new_time.is_none()));
        let revised = apply(&current, &revisions, horizon);
        assert_eq!(revised.schedule(t(0)).unwrap().count_in(from, horizon), 0);
    }

    #[test]
    fn identical_schedules_need_no_revisions() {
        let mut current = SyncTimelines::new();
        current.insert(t(0), Schedule::periodic(10.0, 0.0));
        current.insert(t(1), Schedule::periodic(4.0, 1.0));
        let revisions = reschedule_revisions(
            &current,
            &current.clone(),
            SimTime::ZERO,
            SimTime::new(50.0),
        );
        assert!(revisions.is_empty());
    }

    #[test]
    fn apply_reschedule_lands_revisions_and_invalidates_the_replan_cache() {
        use ivdss_catalog::replica::{ReplicaSpec, ReplicationPlan};
        use ivdss_catalog::synthetic::{synthetic_catalog, SyntheticConfig};
        use ivdss_core::plan::{NoQueues, PlanContext, QueryRequest};
        use ivdss_core::repair::ReplanCache;
        use ivdss_core::search::ScatterGatherSearch;
        use ivdss_core::value::DiscountRates;
        use ivdss_costmodel::model::StylizedCostModel;
        use ivdss_costmodel::query::{QueryId, QuerySpec};
        use ivdss_replication::timelines::SyncMode;

        let base = synthetic_catalog(&SyntheticConfig {
            tables: 4,
            sites: 2,
            replicated_tables: 0,
            ..SyntheticConfig::default()
        })
        .expect("base catalog configuration is valid");
        let mut plan = ReplicationPlan::new();
        plan.add(t(0), ReplicaSpec::new(8.0));
        plan.add(t(1), ReplicaSpec::new(2.0));
        let catalog = base.with_replication(plan).expect("replication fits");
        let current = SyncTimelines::from_plan(catalog.replication(), SyncMode::Deterministic);
        let model = StylizedCostModel::paper_fig4();
        let rates = DiscountRates::new(0.01, 0.05);
        let request = QueryRequest::new(
            QuerySpec::new(QueryId::new(7), vec![t(0), t(1)]),
            SimTime::new(11.0),
        );
        let search = ScatterGatherSearch::new();
        let cache = ReplanCache::new();
        // Warm the cache under the pre-reschedule timelines.
        let warm_ctx = PlanContext {
            catalog: &catalog,
            timelines: &current,
            model: &model,
            rates,
            queues: &NoQueues,
        };
        let before = search
            .search_from_repaired(&warm_ctx, &request, request.submitted_at, &cache)
            .expect("warming search plans");

        // Steer table 1's refreshes onto a sparser, shifted grid.
        let mut target = current.clone();
        target.insert(t(1), Schedule::periodic(4.0, 1.0));
        let horizon = SimTime::new(200.0);
        let (revised, revisions) =
            apply_reschedule(&current, &target, SimTime::new(11.0), horizon, Some(&cache));
        assert!(!revisions.is_empty(), "the reschedule must change table 1");
        assert!(
            cache.stats().invalidated > 0,
            "warm scores in the dirty window must be discarded"
        );

        // A repaired search over the revised timelines must equal the
        // from-scratch search bit for bit — the invalidation left only
        // scores whose slots precede every dirty window.
        let revised_ctx = PlanContext {
            catalog: &catalog,
            timelines: &revised,
            model: &model,
            rates,
            queues: &NoQueues,
        };
        let repaired = search
            .search_from_repaired(&revised_ctx, &request, request.submitted_at, &cache)
            .expect("repaired search plans");
        let scratch = search
            .search_from(&revised_ctx, &request, request.submitted_at)
            .expect("from-scratch search plans");
        assert_eq!(repaired, scratch, "repair diverged after a reschedule");
        // The warm search ran at the same phase, so any surviving scores
        // were genuinely reusable — and the counters prove the pin is
        // not vacuous: the repaired search really consulted the cache.
        let stats = cache.stats();
        assert!(
            stats.hits > 0,
            "scatter scores before the dirty floor must survive the reschedule"
        );
        assert_eq!(
            stats.hits + stats.misses,
            (before.plans_explored + repaired.plans_explored) as u64,
            "every scored candidate probes the cache exactly once"
        );
    }

    #[test]
    fn revisions_are_sorted_for_the_cursor() {
        let horizon = SimTime::new(30.0);
        let mut current = SyncTimelines::new();
        current.insert(t(2), Schedule::periodic(10.0, 0.0));
        current.insert(t(0), Schedule::periodic(10.0, 0.0));
        let target = SyncTimelines::new();
        let revisions = reschedule_revisions(&current, &target, SimTime::ZERO, horizon);
        let mut sorted = revisions.clone();
        sorted.sort_by(|a, b| {
            a.revealed_at
                .cmp(&b.revealed_at)
                .then(a.table.cmp(&b.table))
        });
        assert_eq!(revisions, sorted);
    }
}
