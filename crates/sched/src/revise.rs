//! Online re-scheduling as ordinary timeline revisions.
//!
//! A running system cannot conjure refreshes it never provisioned — but
//! it *can* re-time or cancel the ones still ahead. ([`SyncTimelines::revise`]
//! has exactly this shape: it moves or drops existing completions and
//! cannot add new ones.) [`reschedule_revisions`] therefore expresses
//! "steer the current schedule toward the adaptive target" as a list of
//! plain [`TimelineRevision`]s: the `i`-th future completion of each
//! table is moved onto the target's `i`-th future completion, surplus
//! completions are dropped, and target completions beyond the current
//! schedule's remaining count are unreachable and ignored. Applying the
//! revisions can only *reduce* the remaining refresh spend — online
//! re-scheduling never exceeds the already-provisioned budget.

use ivdss_replication::events::TimelineRevision;
use ivdss_replication::timelines::SyncTimelines;
use ivdss_simkernel::time::SimTime;

/// Computes the revisions that steer `current`'s future completions (in
/// `(from, horizon]`) onto `target`'s, pairing them in time order per
/// table. All revisions carry `revealed_at = from` — the re-scheduling
/// decision instant — and arrive sorted by `(revealed_at, table)`, the
/// order `RevisionCursor` delivers.
///
/// Tables present in `current` but absent from `target` have all their
/// future completions dropped; tables only in `target` are ignored
/// (revisions cannot add completions).
#[must_use]
pub fn reschedule_revisions(
    current: &SyncTimelines,
    target: &SyncTimelines,
    from: SimTime,
    horizon: SimTime,
) -> Vec<TimelineRevision> {
    let mut out = Vec::new();
    for (table, schedule) in current.iter() {
        let cur = schedule.completions_in(from, horizon);
        let tgt = target
            .schedule(table)
            .map_or_else(Vec::new, |s| s.completions_in(from, horizon));
        for (i, &scheduled) in cur.iter().enumerate() {
            match tgt.get(i) {
                Some(&new_time) if new_time == scheduled => {}
                Some(&new_time) => out.push(TimelineRevision {
                    revealed_at: from,
                    table,
                    scheduled,
                    new_time: Some(new_time),
                }),
                None => out.push(TimelineRevision {
                    revealed_at: from,
                    table,
                    scheduled,
                    new_time: None,
                }),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivdss_catalog::ids::TableId;
    use ivdss_replication::schedule::Schedule;

    fn t(i: u32) -> TableId {
        TableId::new(i)
    }

    fn apply(
        timelines: &SyncTimelines,
        revisions: &[TimelineRevision],
        horizon: SimTime,
    ) -> SyncTimelines {
        let mut out = timelines.clone();
        for r in revisions {
            assert!(out.revise(r, horizon), "revision must land: {r:?}");
        }
        out
    }

    #[test]
    fn revisions_steer_current_onto_target() {
        let horizon = SimTime::new(40.0);
        let mut current = SyncTimelines::new();
        current.insert(t(0), Schedule::periodic(10.0, 0.0)); // 10, 20, 30, 40
        let mut target = SyncTimelines::new();
        target.insert(t(0), Schedule::periodic(20.0, 10.0)); // 10, 30 (in (5, 40])

        let revisions = reschedule_revisions(&current, &target, SimTime::new(5.0), horizon);
        let revised = apply(&current, &revisions, horizon);
        assert_eq!(
            revised
                .schedule(t(0))
                .unwrap()
                .completions_in(SimTime::new(5.0), horizon),
            vec![SimTime::new(10.0), SimTime::new(30.0)],
            "future completions must land on the target grid (truncated to the current count)"
        );
        // The completion at 0 (before `from`) is untouched.
        assert_eq!(
            revised.last_sync(t(0), SimTime::new(5.0)),
            Some(SimTime::ZERO)
        );
    }

    #[test]
    fn rescheduling_never_adds_refreshes() {
        let horizon = SimTime::new(40.0);
        let mut current = SyncTimelines::new();
        current.insert(t(0), Schedule::periodic(20.0, 0.0)); // 20, 40
        let mut target = SyncTimelines::new();
        target.insert(t(0), Schedule::periodic(5.0, 2.5)); // 8 future completions

        let from = SimTime::new(1.0);
        let before = current.schedule(t(0)).unwrap().count_in(from, horizon);
        let revisions = reschedule_revisions(&current, &target, from, horizon);
        let revised = apply(&current, &revisions, horizon);
        let after = revised.schedule(t(0)).unwrap().count_in(from, horizon);
        assert!(after <= before, "rescheduling cannot add completions");
        assert_eq!(after, 2, "both provisioned refreshes are re-timed");
    }

    #[test]
    fn missing_target_table_drops_all_future_completions() {
        let horizon = SimTime::new(30.0);
        let mut current = SyncTimelines::new();
        current.insert(t(0), Schedule::periodic(10.0, 0.0));
        let target = SyncTimelines::new();

        let from = SimTime::new(0.0);
        let revisions = reschedule_revisions(&current, &target, from, horizon);
        assert_eq!(revisions.len(), 3);
        assert!(revisions.iter().all(|r| r.new_time.is_none()));
        let revised = apply(&current, &revisions, horizon);
        assert_eq!(revised.schedule(t(0)).unwrap().count_in(from, horizon), 0);
    }

    #[test]
    fn identical_schedules_need_no_revisions() {
        let mut current = SyncTimelines::new();
        current.insert(t(0), Schedule::periodic(10.0, 0.0));
        current.insert(t(1), Schedule::periodic(4.0, 1.0));
        let revisions = reschedule_revisions(
            &current,
            &current.clone(),
            SimTime::ZERO,
            SimTime::new(50.0),
        );
        assert!(revisions.is_empty());
    }

    #[test]
    fn revisions_are_sorted_for_the_cursor() {
        let horizon = SimTime::new(30.0);
        let mut current = SyncTimelines::new();
        current.insert(t(2), Schedule::periodic(10.0, 0.0));
        current.insert(t(0), Schedule::periodic(10.0, 0.0));
        let target = SyncTimelines::new();
        let revisions = reschedule_revisions(&current, &target, SimTime::ZERO, horizon);
        let mut sorted = revisions.clone();
        sorted.sort_by(|a, b| {
            a.revealed_at
                .cmp(&b.revealed_at)
                .then(a.table.cmp(&b.table))
        });
        assert_eq!(revisions, sorted);
    }
}
