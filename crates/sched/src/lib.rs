//! Adaptive synchronization scheduling — refresh schedules as a
//! *decision variable*.
//!
//! The paper treats sync timelines as a given input to query planning:
//! replicas refresh on fixed periodic schedules and the planner works
//! around the staleness that induces. This crate inverts that. Given
//!
//! * a per-table refresh-cost model ([`RefreshCosts`]),
//! * a total refresh budget — by construction, exactly what the paper's
//!   fixed schedules spend over the horizon ([`fixed_budget`]), and
//! * a seeded query workload,
//!
//! it searches the space of synchronization schedules for the one that
//! maximizes expected **workload information value**, evaluating every
//! candidate with the same planner and cost model the serving path uses
//! ([`ScheduleEvaluator`] wraps `mqo::WorkloadEvaluator`), so schedule
//! fitness and query planning share one source of truth.
//!
//! Two optimizers are layered on one allocation representation
//! ([`ScheduleAllocation`]: per-table refresh counts over a horizon):
//!
//! * **Greedy marginal-IV** ([`greedy_schedule`]): repeatedly buy the
//!   refresh with the highest workload-IV gain per unit cost until the
//!   budget runs out or no refresh gains.
//! * **GA search** ([`AdaptiveScheduler::optimize`] with
//!   [`AdaptiveConfig::ga`]): refresh increments become genome items
//!   ([`UpgradePool`]); `ga::optimize_permutation_batch` searches item
//!   orders, each decoded by spending the budget left-to-right, with
//!   generations fanned over the shared `PlannerPool`.
//!
//! The committed result is **never worse than the fixed schedules**: the
//! fixed timelines stay in the candidate set and
//! [`AdaptiveScheduler::optimize`] only displaces them on a strict
//! workload-IV improvement. The 120-seed differential suite
//! (`tests/adaptive_differential.rs`) pins this on every seed.
//!
//! Schedules are emitted as ordinary `SyncTimelines`
//! ([`ScheduleAllocation::to_timelines`]) and re-scheduling decisions as
//! ordinary `TimelineRevision`s ([`reschedule_revisions`]), so serve,
//! cluster, faults, obs and net consume them unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod cost;
pub mod evaluate;
pub mod genome;
pub mod greedy;
pub mod optimizer;
pub mod revise;

pub use alloc::ScheduleAllocation;
pub use cost::{fixed_budget, RefreshCosts};
pub use evaluate::ScheduleEvaluator;
pub use genome::UpgradePool;
pub use greedy::{greedy_schedule, GreedyOutcome, GreedyPick};
pub use optimizer::{
    AdaptiveConfig, AdaptiveOutcome, AdaptiveScheduler, GaScheduleOutcome, ScheduleSource,
};
pub use revise::{apply_reschedule, reschedule_revisions};
