//! Shared scenario builder for the `ivdss-sched` integration suites.
//!
//! Every suite (differential, chaos, golden) optimizes the same *shape*
//! of seeded scenario — a small skewed federation with three replicated
//! tables and a four-query workload — so counterexample seeds pinned by
//! one suite are reproducible in another.

#![allow(dead_code)] // each integration test binary uses a subset

use ivdss_catalog::catalog::Catalog;
use ivdss_catalog::ids::TableId;
use ivdss_catalog::placement::PlacementStrategy;
use ivdss_catalog::synthetic::{synthetic_catalog, SyntheticConfig};
use ivdss_core::plan::QueryRequest;
use ivdss_core::value::DiscountRates;
use ivdss_ga::engine::GaConfig;
use ivdss_replication::timelines::{SyncMode, SyncTimelines};
use ivdss_sched::RefreshCosts;
use ivdss_simkernel::rng::{SeedFactory, Stream, UniformStream};
use ivdss_simkernel::time::SimTime;
use ivdss_workloads::synthetic::{random_queries, RandomQueryConfig};

/// Scheduling horizon shared by every suite.
pub fn horizon() -> SimTime {
    SimTime::new(40.0)
}

/// Discount rates shared by every suite.
pub fn rates() -> DiscountRates {
    DiscountRates::new(0.01, 0.05)
}

/// A GA configuration small enough for 120-seed sweeps in debug builds.
pub fn small_ga() -> GaConfig {
    GaConfig {
        population: 6,
        generations: 4,
        parents: 3,
        mutation_rate: 0.3,
        elites: 1,
        seed: 0x5EED,
    }
}

/// One seeded scenario: a 6-table / 2-site skewed federation with 3
/// replicated tables, its fixed periodic timelines, a sorted 4-query
/// workload and uniform refresh costs.
pub fn scenario(seed: u64) -> (Catalog, SyncTimelines, Vec<QueryRequest>, RefreshCosts) {
    let seeds = SeedFactory::new(0xD1FF ^ seed.rotate_left(17));
    let catalog = synthetic_catalog(&SyntheticConfig {
        tables: 6,
        sites: 2,
        placement: PlacementStrategy::Skewed,
        replicated_tables: 3,
        mean_sync_period: 8.0,
        seed: seeds.seed_for("catalog"),
        ..SyntheticConfig::default()
    })
    .expect("scenario catalog configuration is valid");
    let fixed = SyncTimelines::from_plan(catalog.replication(), SyncMode::Deterministic);
    let templates = random_queries(&RandomQueryConfig {
        queries: 4,
        tables: 6,
        max_tables_per_query: 3,
        weight_range: (0.8, 2.0),
        seed: seeds.seed_for("queries"),
    });
    let mut arrivals = UniformStream::new(2.0, 34.0, seeds.seed_for("arrivals"));
    let mut times: Vec<f64> = (0..templates.len())
        .map(|_| arrivals.next_sample())
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("arrival times are finite"));
    let requests: Vec<QueryRequest> = templates
        .into_iter()
        .zip(times)
        .map(|(spec, at)| QueryRequest::new(spec, SimTime::new(at)))
        .collect();
    let tables: Vec<TableId> = fixed.iter().map(|(t, _)| t).collect();
    let costs = RefreshCosts::uniform(&tables);
    (catalog, fixed, requests, costs)
}
