//! Property suite for the scheduling layer.
//!
//! Four laws, randomized over costs, budgets, allocations and genome
//! orders:
//!
//! 1. **Budget safety** — neither greedy nor any decoded genome ever
//!    spends more than the budget.
//! 2. **Emission validity** — every emitted `SyncTimelines` delivers
//!    exactly the allocated refresh count in `(0, horizon]`, with
//!    strictly increasing completion times and a
//!    `last_completion_at`/`next_completion_after` view consistent with
//!    the materialized trace.
//! 3. **Presentation-order freedom** — greedy's outcome is a pure
//!    function of the candidate *set*: shuffling the table order
//!    changes nothing.
//! 4. **Round-trip stability** — decoding, encoding and re-decoding a
//!    genome is a fixed point: `decode(encode(decode(p))) == decode(p)`.

mod util;

use ivdss_catalog::ids::TableId;
use ivdss_costmodel::model::StylizedCostModel;
use ivdss_ga::Permutation;
use ivdss_obs::Tracer;
use ivdss_replication::timelines::SyncTimelines;
use ivdss_sched::{
    greedy_schedule, RefreshCosts, ScheduleAllocation, ScheduleEvaluator, UpgradePool,
};
use ivdss_simkernel::rng::{Stream, UniformStream};
use ivdss_simkernel::time::SimTime;
use proptest::prelude::*;

fn t(i: u32) -> TableId {
    TableId::new(i)
}

/// A seeded Fisher–Yates shuffle (proptest supplies the seed; the
/// shuffle itself rides the workspace's deterministic streams).
fn shuffled(len: usize, seed: u64) -> Permutation {
    let mut items: Vec<usize> = (0..len).collect();
    let mut draws = UniformStream::new(0.0, 1.0, seed);
    for i in (1..items.len()).rev() {
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let j = (draws.next_sample() * (i + 1) as f64) as usize;
        items.swap(i, j.min(i));
    }
    Permutation::new(items).expect("shuffle yields a valid permutation")
}

fn costs_from(raw: &[f64]) -> (Vec<TableId>, RefreshCosts) {
    let tables: Vec<TableId> = (0..raw.len() as u32).map(t).collect();
    let mut costs = RefreshCosts::uniform(&tables);
    for (&table, &c) in tables.iter().zip(raw) {
        costs.insert(table, c);
    }
    (tables, costs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Law 2: the mid-phase periodic grid delivers *exactly* the
    /// allocated count, strictly increasing, for arbitrary counts and
    /// awkward horizons — and the schedule's point queries agree with
    /// its materialized trace.
    #[test]
    fn emitted_timelines_are_valid(
        counts in prop::collection::vec(0usize..40, 1..4),
        horizon in 7.0..120.0f64,
    ) {
        let tables: Vec<TableId> = (0..counts.len() as u32).map(t).collect();
        let horizon = SimTime::new(horizon);
        let mut alloc = ScheduleAllocation::empty(&tables, horizon);
        for (&table, &n) in tables.iter().zip(&counts) {
            for _ in 0..n {
                alloc.add(table);
            }
        }
        let timelines: SyncTimelines = alloc.to_timelines();
        for (&table, &n) in tables.iter().zip(&counts) {
            let schedule = timelines.schedule(table).expect("table emitted");
            let completions = schedule.completions_in(SimTime::ZERO, horizon);
            prop_assert_eq!(
                completions.len(), n,
                "table {:?}: allocated {} refreshes, emitted {}",
                table, n, completions.len()
            );
            prop_assert_eq!(schedule.count_in(SimTime::ZERO, horizon), n);
            for pair in completions.windows(2) {
                prop_assert!(pair[0] < pair[1], "completions must strictly increase");
            }
            // Point queries agree with the trace: each completion is its
            // own last-completion, and `next_completion_after` walks the
            // same sequence.
            let mut prev = SimTime::ZERO;
            for &c in &completions {
                prop_assert_eq!(schedule.last_completion_at(c), Some(c));
                prop_assert_eq!(schedule.next_completion_after(prev), Some(c));
                prev = c;
            }
            if let Some(&last) = completions.last() {
                prop_assert_eq!(schedule.last_completion_at(horizon), Some(last));
            }
        }
    }

    /// Law 1 (genome half): any chromosome order decodes to an
    /// allocation within budget, and Law 4: decode∘encode is a fixed
    /// point on decoded allocations.
    #[test]
    fn decoded_genomes_respect_budget_and_round_trip(
        raw_costs in prop::collection::vec(0.4..3.0f64, 2..4),
        budget in 3.1..14.0f64,
        shuffle_seed in 0u64..1_000_000,
    ) {
        let (tables, costs) = costs_from(&raw_costs);
        let horizon = SimTime::new(40.0);
        let pool = UpgradePool::new(&tables, horizon, &costs, budget, &[], None);
        // Budget exceeds the dearest cost, so every table affords ≥ 1 item.
        prop_assert!(!pool.is_empty());

        let perm = shuffled(pool.len(), shuffle_seed);
        let alloc = pool.decode(&perm);
        prop_assert!(
            alloc.spend(&costs) <= budget + 1e-9,
            "decoded allocation spends {} over budget {}",
            alloc.spend(&costs), budget
        );

        let encoded = pool.encode(&alloc).expect("decoded allocations encode");
        let again = pool.decode(&encoded);
        prop_assert_eq!(alloc, again, "decode ∘ encode must be a fixed point");
    }

    /// Laws 1 and 3 (greedy half): greedy never overspends, and its
    /// outcome is identical under any presentation order of the
    /// candidate tables.
    #[test]
    fn greedy_is_budget_safe_and_presentation_order_free(
        scenario_seed in 0u64..40,
        budget in 0.0..10.0f64,
        shuffle_seed in 0u64..1_000_000,
    ) {
        let (catalog, fixed, requests, costs) = util::scenario(scenario_seed);
        let model = StylizedCostModel::paper_fig4();
        let evaluator = ScheduleEvaluator::new(&catalog, &model, util::rates(), &requests);
        let tables: Vec<TableId> = fixed.iter().map(|(table, _)| table).collect();

        let out = greedy_schedule(
            &evaluator, &costs, budget, &tables, util::horizon(), None, &Tracer::disabled(),
        );
        prop_assert!(
            out.budget_used <= budget + 1e-9,
            "greedy spent {} over budget {}", out.budget_used, budget
        );
        prop_assert!((out.budget_used - out.allocation.spend(&costs)).abs() < 1e-9);

        let order = shuffled(tables.len(), shuffle_seed);
        let reordered: Vec<TableId> = order.iter().map(|i| tables[i]).collect();
        let shuffled_out = greedy_schedule(
            &evaluator, &costs, budget, &reordered, util::horizon(), None, &Tracer::disabled(),
        );
        prop_assert_eq!(
            out, shuffled_out,
            "greedy must be a pure function of the candidate set"
        );
    }
}
