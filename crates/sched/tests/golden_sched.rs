//! Golden-trace snapshot of one seeded adaptive scheduling run.
//!
//! The fixed scenario (seed 7 of `tests/util`) runs the full adaptive
//! optimization with a recording tracer, then drives the *committed*
//! timelines through a faulted serving engine — so the fixture
//! snapshots the scheduler's decision events (`sched_budget`,
//! `sched_pick`, `sched_chosen`), the fault-plan header generated
//! against the adaptive schedule, and the serve pipeline consuming it,
//! in one byte-exact artifact. Any change to decision ordering, payload
//! fields or float formatting is a fixture diff to review and re-bless:
//!
//! ```text
//! GOLDEN_BLESS=1 cargo test -p ivdss-sched --test golden_sched
//! ```
//!
//! As in the serve/cluster golden suites, a second in-process run must
//! render identical bytes even while a bless is in progress.

mod util;

use std::sync::Arc;

use ivdss_core::value::BusinessValue;
use ivdss_costmodel::model::StylizedCostModel;
use ivdss_faults::observe::emit_fault_plan;
use ivdss_faults::{FaultConfig, FaultPlan};
use ivdss_obs::{Trace, Tracer};
use ivdss_sched::{AdaptiveConfig, AdaptiveScheduler};
use ivdss_serve::clock::DesClock;
use ivdss_serve::engine::{ServeConfig, ServeEngine};
use ivdss_serve::loadgen::{run_open_loop, OpenLoopConfig};
use ivdss_simkernel::time::SimTime;
use ivdss_workloads::synthetic::{random_queries, RandomQueryConfig};

const SCENARIO_SEED: u64 = 7;

/// Runs the fixed golden scenario once into a fresh trace and returns
/// the rendered bytes.
fn run_golden() -> String {
    let (catalog, fixed, requests, costs) = util::scenario(SCENARIO_SEED);
    let model = StylizedCostModel::paper_fig4();
    let trace = Arc::new(Trace::new());
    let tracer = Tracer::recording(Arc::clone(&trace));

    let sched = AdaptiveScheduler::new(&catalog, &model, util::rates(), &requests, costs)
        .with_tracer(tracer.clone());
    let mut config = AdaptiveConfig::new(util::horizon());
    config.ga = Some(util::small_ga());
    let outcome = sched.optimize(&fixed, &config);

    let faults = FaultPlan::generate(
        &FaultConfig {
            slip_probability: 0.35,
            drop_probability: 0.1,
            slip_delay: (1.0, 6.0),
            outage_mtbf: 50.0,
            outage_duration: (4.0, 12.0),
            jitter: (1.0, 1.3),
            horizon: SimTime::new(120.0),
        },
        &outcome.chosen,
        catalog.site_count(),
        0x601D ^ SCENARIO_SEED,
    );
    emit_fault_plan(&faults, &tracer);

    let templates = random_queries(&RandomQueryConfig {
        queries: 4,
        tables: 6,
        max_tables_per_query: 3,
        weight_range: (0.8, 2.0),
        seed: 0x90,
    });
    let mut engine = ServeEngine::with_faults(
        &catalog,
        &outcome.chosen,
        &model,
        ServeConfig::new(util::rates()),
        DesClock::new(),
        faults,
    )
    .with_tracer(tracer);
    let open = OpenLoopConfig {
        queries: 10,
        mean_interarrival: 2.0,
        seed: 0x91,
        business_value: BusinessValue::UNIT,
    };
    run_open_loop(&mut engine, templates, &open).expect("golden serve run is feasible");
    trace.render()
}

#[test]
fn golden_adaptive_trace_matches_fixture_byte_for_byte() {
    let rendered = run_golden();

    // In-process determinism first: two identical runs, identical bytes.
    let again = run_golden();
    assert_eq!(
        rendered.as_bytes(),
        again.as_bytes(),
        "two identical seeded adaptive runs must render byte-identical traces"
    );

    // The scenario must exercise the whole composition, or the fixture
    // degenerates into a vacuous snapshot.
    for needle in [
        "sched_budget",
        "sched_pick",
        "sched_chosen",
        "fault_slip_planned",
        "fault_outage_planned",
        "submitted",
        "sync_delivered",
        " completed ",
    ] {
        assert!(
            rendered.contains(needle),
            "golden adaptive scenario no longer exercises {needle:?}"
        );
    }

    let fixture = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/golden_sched_trace.txt"
    );
    if std::env::var_os("GOLDEN_BLESS").is_some() {
        std::fs::write(fixture, &rendered).expect("bless writes the fixture");
    }
    let expected = std::fs::read_to_string(fixture).expect(
        "golden fixture missing — regenerate with \
         GOLDEN_BLESS=1 cargo test -p ivdss-sched --test golden_sched",
    );
    assert!(
        rendered == expected,
        "trace diverged from tests/fixtures/golden_sched_trace.txt \
         (review the diff, then re-bless with GOLDEN_BLESS=1):\n\
         rendered {} bytes, fixture {} bytes",
        rendered.len(),
        expected.len()
    );
}
