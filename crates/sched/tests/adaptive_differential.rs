//! The never-worse differential suite — 120 seeded scenarios.
//!
//! Every seed builds its own federation, workload and fixed periodic
//! timelines (see `tests/util`), runs the full adaptive optimization
//! (greedy + GA at the fixed schedules' budget) and asserts, per seed:
//!
//! * the committed schedule's IV is **never below** the fixed
//!   schedules' IV — the acceptance bar this PR is pinned by;
//! * the committed IV is *honest*: re-evaluating the committed
//!   timelines from scratch reproduces it bit-for-bit (the guard can't
//!   quietly report a fitness the timelines don't deliver);
//! * the committed schedule never spends more than the fixed budget.
//!
//! The raw (unguarded) candidates are deliberately *not* required to
//! beat fixed — greedy rebuilt from zero loses to fixed on most seeds
//! here, which is exactly why the guard keeps fixed in the candidate
//! set. The pinned counterexamples below freeze that structure the way
//! PR 2 pinned slip-can-help: if a refactor makes them vanish, the
//! suite demands a deliberate re-pin, not a silent drift.

mod util;

use ivdss_costmodel::model::StylizedCostModel;
use ivdss_sched::{AdaptiveConfig, AdaptiveOutcome, AdaptiveScheduler, ScheduleSource};

const SEEDS: u64 = 120;

fn optimize(seed: u64) -> AdaptiveOutcome {
    let (catalog, fixed, requests, costs) = util::scenario(seed);
    let model = StylizedCostModel::paper_fig4();
    let sched = AdaptiveScheduler::new(&catalog, &model, util::rates(), &requests, costs);
    let mut config = AdaptiveConfig::new(util::horizon());
    config.ga = Some(util::small_ga());
    sched.optimize(&fixed, &config)
}

/// Re-derives the committed IV from the committed timelines with a
/// fresh evaluator, so the outcome's bookkeeping can't vouch for
/// itself.
fn reevaluate_chosen(seed: u64, out: &AdaptiveOutcome) -> f64 {
    let (catalog, _, requests, _) = util::scenario(seed);
    let model = StylizedCostModel::paper_fig4();
    let sched = AdaptiveScheduler::new(
        &catalog,
        &model,
        util::rates(),
        &requests,
        ivdss_sched::RefreshCosts::uniform(&out.chosen.iter().map(|(t, _)| t).collect::<Vec<_>>()),
    );
    sched.evaluator().workload_iv(&out.chosen)
}

#[test]
fn adaptive_is_never_worse_than_fixed_on_every_seed() {
    let mut strict_improvements = 0u64;
    let mut sources = [0u64; 3];
    let mut greedy_below_fixed = 0u64;
    let mut ga_above_greedy = 0u64;
    let mut total_gain = 0.0;

    for seed in 0..SEEDS {
        let out = optimize(seed);

        assert!(
            out.chosen_iv >= out.fixed_iv,
            "seed {seed}: committed IV {} fell below fixed {} — the never-worse \
             guard is broken",
            out.chosen_iv,
            out.fixed_iv
        );
        assert!(
            out.chosen_budget_used <= out.budget + 1e-9,
            "seed {seed}: committed schedule spends {} over budget {}",
            out.chosen_budget_used,
            out.budget
        );
        assert!(
            out.greedy.budget_used <= out.budget + 1e-9,
            "seed {seed}: greedy overspent"
        );
        if let Some(ga) = &out.ga {
            assert!(
                ga.budget_used <= out.budget + 1e-9,
                "seed {seed}: GA overspent"
            );
        }

        let re = reevaluate_chosen(seed, &out);
        assert_eq!(
            re.to_bits(),
            out.chosen_iv.to_bits(),
            "seed {seed}: committed IV is not reproducible from the committed \
             timelines ({} vs {})",
            re,
            out.chosen_iv
        );

        if out.chosen_iv > out.fixed_iv {
            strict_improvements += 1;
        }
        if out.greedy.iv < out.fixed_iv {
            greedy_below_fixed += 1;
        }
        if out.ga.as_ref().is_some_and(|ga| ga.iv > out.greedy.iv) {
            ga_above_greedy += 1;
        }
        sources[match out.source {
            ScheduleSource::Fixed => 0,
            ScheduleSource::Greedy => 1,
            ScheduleSource::Ga => 2,
        }] += 1;
        total_gain += out.gain();
    }

    // Aggregate shape of the sweep: the optimizer is not a no-op (most
    // seeds strictly improve), the guard is not dead code (every source
    // is exercised), and the mean gain is strictly positive.
    assert!(
        strict_improvements >= SEEDS / 2,
        "only {strict_improvements}/{SEEDS} seeds strictly improved — the search \
         has degraded"
    );
    assert!(
        sources.iter().all(|&n| n > 0),
        "every guard outcome must occur across the sweep, got \
         fixed/greedy/ga = {sources:?}"
    );
    assert!(
        greedy_below_fixed > 0,
        "greedy rebuilt from zero should lose to fixed somewhere — if it never \
         does, the guard's motivation needs re-examining"
    );
    assert!(
        ga_above_greedy > strict_improvements / 2,
        "the GA should out-search greedy on most improving seeds"
    );
    assert!(
        total_gain / SEEDS as f64 > 0.0,
        "mean gain over fixed must be strictly positive"
    );
}

/// Seed 0: greedy alone commits *less* IV than the fixed schedules —
/// the counterexample that makes the never-worse guard load-bearing
/// rather than decorative.
#[test]
fn pinned_seed_0_greedy_alone_regresses_below_fixed() {
    let out = optimize(0);
    assert!(
        out.greedy.iv < out.fixed_iv,
        "seed 0 no longer shows greedy below fixed ({} vs {}) — find and pin a \
         new counterexample before changing this",
        out.greedy.iv,
        out.fixed_iv
    );
    assert!(
        out.chosen_iv >= out.fixed_iv,
        "the guard still saves seed 0"
    );
    assert_eq!(
        out.source,
        ScheduleSource::Ga,
        "seed 0 commits the GA schedule"
    );
}

/// Seed 16: the GA's best is strictly *below* greedy — search with a
/// seeded genome is not guaranteed to dominate its seed, because the
/// identity chromosome also spends the leftover budget greedy left on
/// the table.
#[test]
fn pinned_seed_16_ga_can_lose_to_greedy() {
    let out = optimize(16);
    let ga = out.ga.as_ref().expect("seed 16 runs the GA stage");
    assert!(
        ga.iv < out.greedy.iv,
        "seed 16 no longer shows GA below greedy ({} vs {}) — find and pin a \
         new counterexample before changing this",
        ga.iv,
        out.greedy.iv
    );
    assert!(out.chosen_iv >= out.fixed_iv);
}

/// Seed 66: GA exactly *ties* greedy, and greedy strictly beats fixed —
/// the tie must keep the earlier candidate (greedy), pinning the
/// guard's strict-displacement rule.
#[test]
fn pinned_seed_66_tie_keeps_the_earlier_candidate() {
    let out = optimize(66);
    let ga = out.ga.as_ref().expect("seed 66 runs the GA stage");
    assert_eq!(
        ga.iv.to_bits(),
        out.greedy.iv.to_bits(),
        "seed 66 no longer ties GA and greedy — find and pin a new tie seed \
         before changing this"
    );
    assert!(out.greedy.iv > out.fixed_iv);
    assert_eq!(
        out.source,
        ScheduleSource::Greedy,
        "a tie must not displace the earlier candidate"
    );
}

/// Seed 4: neither greedy nor the GA improves on the paper's fixed
/// periodic schedules, and the guard commits fixed verbatim — the
/// committed timelines evaluate bit-identically to the input.
#[test]
fn pinned_seed_4_fixed_can_win_outright() {
    let out = optimize(4);
    assert_eq!(
        out.source,
        ScheduleSource::Fixed,
        "seed 4 no longer commits fixed — find and pin a new fixed-wins seed \
         before changing this"
    );
    assert_eq!(out.chosen_iv.to_bits(), out.fixed_iv.to_bits());
    assert_eq!(out.gain(), 0.0);
}

/// The suite's teeth: a schedule that *does* regress below fixed (all
/// budget dumped on one table at equal spend) is measurably worse on a
/// pinned seed, so the per-seed `chosen_iv >= fixed_iv` assertion is a
/// real tripwire, not a tautology of the evaluator.
#[test]
fn a_regressing_schedule_is_detected_by_the_same_evaluator() {
    use ivdss_replication::timelines::SyncTimelines;
    use ivdss_sched::{fixed_budget, ScheduleAllocation};

    let (catalog, fixed, requests, costs) = util::scenario(0);
    let model = StylizedCostModel::paper_fig4();
    let sched = AdaptiveScheduler::new(&catalog, &model, util::rates(), &requests, costs);
    let fixed_iv = sched.evaluator().workload_iv(&fixed);

    // Same budget, pathological allocation: everything on the first
    // replicated table, nothing on the others.
    let tables: Vec<_> = fixed.iter().map(|(t, _)| t).collect();
    let budget = fixed_budget(&fixed, sched.costs(), util::horizon());
    let mut alloc = ScheduleAllocation::empty(&tables, util::horizon());
    for _ in 0..(budget / sched.costs().cost(tables[0])).floor() as usize {
        alloc.add(tables[0]);
    }
    let bad: SyncTimelines = alloc.to_timelines();
    let bad_iv = sched.evaluator().workload_iv(&bad);
    assert!(
        bad_iv < fixed_iv,
        "the anti-schedule should lose to fixed ({bad_iv} vs {fixed_iv}); if it \
         stopped losing, the regression tripwire needs a new pathological input"
    );
}

/// The full sweep is a pure function of its seeds: running a sample of
/// seeds twice reproduces identical outcomes, so any flake in the
/// 120-seed suite is a real nondeterminism bug, not noise.
#[test]
fn sweep_outcomes_are_deterministic() {
    for seed in [0, 16, 59, 66, 113] {
        assert_eq!(
            optimize(seed),
            optimize(seed),
            "seed {seed}: optimization must be deterministic"
        );
    }
}
