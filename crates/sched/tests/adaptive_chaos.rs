//! Chaos composition: adaptive scheduling under injected faults.
//!
//! The scheduler's output is an ordinary `SyncTimelines`, so the whole
//! existing fault machinery composes with it unchanged: a seeded
//! [`FaultPlan`] generated *against the committed adaptive schedule*
//! degrades it, the scheduler re-optimizes on the degraded picture, and
//! [`reschedule_revisions`] steers the degraded schedule toward the new
//! target as plain `TimelineRevision`s. This band sweeps seeds and
//! asserts the composition is deterministic, never panics, never
//! conjures refreshes, and that re-optimizing a degraded schedule never
//! commits below the degraded baseline. (The serving-engine side of the
//! composition — fault-free shadow runs with bit-for-bit
//! trace-vs-metrics reconciliation — lives in
//! `ivdss_dsim::experiments::adaptive_sync`, which drives the chosen
//! timelines through `ServeEngine::with_faults`.)

mod util;

use ivdss_costmodel::model::StylizedCostModel;
use ivdss_faults::{FaultConfig, FaultPlan};
use ivdss_sched::{reschedule_revisions, AdaptiveConfig, AdaptiveOutcome, AdaptiveScheduler};
use ivdss_simkernel::time::SimTime;

const SEEDS: u64 = 24;

fn storm(horizon: SimTime) -> FaultConfig {
    FaultConfig {
        slip_probability: 0.3,
        drop_probability: 0.15,
        slip_delay: (1.0, 6.0),
        outage_mtbf: 100.0,
        outage_duration: (4.0, 15.0),
        jitter: (1.0, 1.3),
        horizon,
    }
}

/// Runs the full composition for one seed: optimize, fault the chosen
/// schedule, re-optimize on the degraded picture, steer toward the new
/// target. Returns (first outcome, degraded re-optimization outcome,
/// revision count).
fn compose(seed: u64) -> (AdaptiveOutcome, AdaptiveOutcome, usize) {
    let (catalog, fixed, requests, costs) = util::scenario(seed);
    let model = StylizedCostModel::paper_fig4();
    let sched = AdaptiveScheduler::new(&catalog, &model, util::rates(), &requests, costs);
    let mut config = AdaptiveConfig::new(util::horizon());
    config.ga = Some(util::small_ga());

    let out = sched.optimize(&fixed, &config);

    let faults = FaultPlan::generate(
        &storm(util::horizon()),
        &out.chosen,
        catalog.site_count(),
        0xFA17 ^ seed,
    );
    let degraded = faults.degraded_timelines(&out.chosen);

    // Re-optimize with the degraded schedule as the new baseline: the
    // budget is whatever the degraded schedule still spends, and the
    // guard's floor is the degraded IV.
    let re = sched.optimize(&degraded, &config);

    let revisions = reschedule_revisions(&degraded, &re.chosen, SimTime::ZERO, util::horizon());
    (out, re, revisions.len())
}

#[test]
fn composition_is_deterministic_and_never_panics() {
    for seed in 0..SEEDS {
        let (a_out, a_re, a_revs) = compose(seed);
        let (b_out, b_re, b_revs) = compose(seed);
        assert_eq!(
            a_out, b_out,
            "seed {seed}: first optimization must reproduce"
        );
        assert_eq!(
            a_re, b_re,
            "seed {seed}: degraded re-optimization must reproduce"
        );
        assert_eq!(
            a_revs, b_revs,
            "seed {seed}: steering revisions must reproduce"
        );
    }
}

#[test]
fn reoptimizing_a_degraded_schedule_never_commits_below_it() {
    let mut faulted_seeds = 0u64;
    for seed in 0..SEEDS {
        let (out, re, _) = compose(seed);
        assert!(
            re.chosen_iv >= re.fixed_iv,
            "seed {seed}: degraded re-optimization fell below its own baseline \
             ({} vs {})",
            re.chosen_iv,
            re.fixed_iv
        );
        assert!(
            re.budget <= out.chosen_budget_used + 1e-9,
            "seed {seed}: faults can only shrink the spend the degraded schedule \
             re-budgets ({} vs {})",
            re.budget,
            out.chosen_budget_used
        );
        if re.budget < out.chosen_budget_used - 1e-9 {
            faulted_seeds += 1;
        }
    }
    assert!(
        faulted_seeds > SEEDS / 2,
        "the storm config should actually drop refreshes on most seeds, \
         got {faulted_seeds}/{SEEDS}"
    );
}

#[test]
fn steering_revisions_apply_and_never_add_refreshes() {
    for seed in 0..SEEDS {
        let (catalog, fixed, requests, costs) = util::scenario(seed);
        let model = StylizedCostModel::paper_fig4();
        let sched = AdaptiveScheduler::new(&catalog, &model, util::rates(), &requests, costs);
        let mut config = AdaptiveConfig::new(util::horizon());
        config.ga = Some(util::small_ga());
        let out = sched.optimize(&fixed, &config);

        let faults = FaultPlan::generate(
            &storm(util::horizon()),
            &out.chosen,
            catalog.site_count(),
            0xFA17 ^ seed,
        );
        let degraded = faults.degraded_timelines(&out.chosen);
        let re = sched.optimize(&degraded, &config);

        let revisions = reschedule_revisions(&degraded, &re.chosen, SimTime::ZERO, util::horizon());
        let spend_before: usize = degraded
            .iter()
            .map(|(_, s)| s.count_in(SimTime::ZERO, util::horizon()))
            .sum();
        let mut steered = degraded.clone();
        for r in &revisions {
            assert!(
                steered.revise(r, util::horizon()),
                "seed {seed}: steering revision must land: {r:?}"
            );
        }
        let spend_after: usize = steered
            .iter()
            .map(|(_, s)| s.count_in(SimTime::ZERO, util::horizon()))
            .sum();
        assert!(
            spend_after <= spend_before,
            "seed {seed}: steering added refreshes ({spend_before} -> {spend_after})"
        );
    }
}

#[test]
fn an_empty_fault_plan_leaves_the_composition_unchanged() {
    let (catalog, fixed, requests, costs) = util::scenario(3);
    let model = StylizedCostModel::paper_fig4();
    let sched = AdaptiveScheduler::new(&catalog, &model, util::rates(), &requests, costs);
    let mut config = AdaptiveConfig::new(util::horizon());
    config.ga = Some(util::small_ga());
    let out = sched.optimize(&fixed, &config);

    let calm = FaultConfig {
        slip_probability: 0.0,
        drop_probability: 0.0,
        slip_delay: (1.0, 2.0),
        outage_mtbf: 0.0,
        outage_duration: (1.0, 2.0),
        jitter: (1.0, 1.0),
        horizon: util::horizon(),
    };
    let faults = FaultPlan::generate(&calm, &out.chosen, catalog.site_count(), 1);
    assert!(faults.is_empty());
    let degraded = faults.degraded_timelines(&out.chosen);
    let re = sched.optimize(&degraded, &config);
    assert_eq!(
        re.chosen_iv.to_bits(),
        out.chosen_iv.to_bits(),
        "a no-op fault plan must reproduce the committed IV exactly"
    );
    assert!(
        reschedule_revisions(&degraded, &re.chosen, SimTime::ZERO, util::horizon()).is_empty(),
        "identical schedules need no steering"
    );
}
