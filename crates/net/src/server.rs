//! The TCP front door: a nonblocking listener plus a small worker pool.
//!
//! # Architecture
//!
//! One thread — the caller of [`NetServer::serve`] — owns the engine
//! and is the only thread that ever touches it, which is what preserves
//! the deterministic, totally-ordered dispatch the sim-clock suites pin
//! down. Around it:
//!
//! * the **listener** is nonblocking and polled from the engine loop;
//! * each accepted connection gets a **reader worker** from a bounded
//!   pool ([`NetConfig::max_connections`]; connections beyond the bound
//!   are refused with [`ErrorCode::Busy`]). Workers assemble frames
//!   incrementally ([`FrameReader`]) under a short read timeout so they
//!   can observe the shutdown flag, decode them, and forward
//!   `(connection, Request)` pairs over an mpsc channel;
//! * the **engine loop** drains that channel, executes each request
//!   against the [`QueryService`], and writes the response frame
//!   straight back on the connection's own socket. Requests from one
//!   connection are processed in arrival order; requests from different
//!   connections interleave in channel order.
//!
//! Malformed frames get an [`ErrorCode::Malformed`] reply and the
//! connection is closed (framing cannot be resynchronized); plan
//! errors get [`ErrorCode::Plan`] and the connection lives on. A
//! [`Request::Shutdown`] from any client — or an external trip of the
//! [`ShutdownSwitch`] — stops the accept loop, answers [`Response::Bye`]
//! and joins the workers before returning.

use std::collections::HashMap;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::Duration;

use ivdss_costmodel::query::QueryId;
use ivdss_simkernel::time::SimTime;

use crate::proto::{
    write_frame, ErrorCode, FrameReader, ReadEvent, ReportMsg, Request, Response, WireError,
    PROTOCOL_VERSION,
};
use crate::service::QueryService;

/// Tuning knobs of a [`NetServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetConfig {
    /// Reader-worker pool bound; further connections are refused busy.
    pub max_connections: usize,
    /// Engine-loop wait for the next request before re-polling the
    /// listener; also the workers' read timeout (shutdown latency).
    pub poll_interval: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_connections: 8,
            poll_interval: Duration::from_millis(2),
        }
    }
}

/// Cooperative stop flag shared by the engine loop, the workers and —
/// via [`NetServer::shutdown_switch`] — any external controller.
#[derive(Debug, Clone, Default)]
pub struct ShutdownSwitch(Arc<AtomicBool>);

impl ShutdownSwitch {
    /// Creates an untripped switch.
    #[must_use]
    pub fn new() -> Self {
        ShutdownSwitch::default()
    }

    /// Trips the switch; the server notices within a poll interval.
    pub fn trip(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether the switch has been tripped.
    #[must_use]
    pub fn is_tripped(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Counters of one [`NetServer::serve`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Connections accepted into the pool.
    pub accepted: u64,
    /// Connections refused because the pool was full.
    pub refused: u64,
    /// Request frames executed.
    pub frames_in: u64,
    /// Response frames written.
    pub frames_out: u64,
    /// Connections dropped over malformed frames.
    pub decode_errors: u64,
    /// Requests answered with [`ErrorCode::Plan`].
    pub plan_errors: u64,
}

/// What a reader worker sends the engine loop.
enum ConnEvent {
    /// A decoded request frame.
    Request(u64, Request),
    /// The connection's stream broke protocol; close after replying.
    Malformed(u64, WireError),
    /// The connection ended (EOF or I/O error).
    Closed(u64),
}

/// The network front door. Bind once, then [`NetServer::serve`] an
/// engine on it; the call blocks until shutdown.
pub struct NetServer {
    listener: TcpListener,
    config: NetConfig,
    shutdown: ShutdownSwitch,
}

impl NetServer {
    /// Binds the listener (use port 0 for an ephemeral test port) and
    /// switches it to nonblocking accepts.
    ///
    /// # Errors
    ///
    /// Propagates binding and socket-option errors.
    pub fn bind(addr: impl ToSocketAddrs, config: NetConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(NetServer {
            listener,
            config,
            shutdown: ShutdownSwitch::new(),
        })
    }

    /// The bound address (the actual port when bound to port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket query error.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that stops [`NetServer::serve`] from another thread.
    #[must_use]
    pub fn shutdown_switch(&self) -> ShutdownSwitch {
        self.shutdown.clone()
    }

    /// Runs the serve loop until shutdown. The calling thread *is* the
    /// engine thread: every request executes here, in channel order.
    ///
    /// # Errors
    ///
    /// Propagates listener I/O errors. Per-connection errors are
    /// handled by dropping the connection, never by failing the server.
    pub fn serve(&self, service: &mut dyn QueryService) -> std::io::Result<ServerStats> {
        let mut stats = ServerStats::default();
        let (tx, rx) = std::sync::mpsc::channel::<ConnEvent>();
        // Write halves, owned by the engine loop.
        let mut writers: HashMap<u64, TcpStream> = HashMap::new();
        let mut next_conn: u64 = 0;
        let mut live_readers: usize = 0;

        std::thread::scope(|scope| -> std::io::Result<()> {
            loop {
                if self.shutdown.is_tripped() {
                    break;
                }

                // Phase 1: poll the nonblocking listener.
                loop {
                    match self.listener.accept() {
                        Ok((stream, _peer)) => {
                            if live_readers >= self.config.max_connections {
                                stats.refused += 1;
                                let mut s = stream;
                                let body = Response::Error {
                                    code: ErrorCode::Busy,
                                    message: "connection pool exhausted".to_owned(),
                                }
                                .encode();
                                let _ = write_frame(&mut s, &body);
                                let _ = s.flush();
                                continue; // dropped: refused
                            }
                            stats.accepted += 1;
                            let conn = next_conn;
                            next_conn += 1;
                            stream.set_nodelay(true).ok();
                            stream.set_read_timeout(Some(self.config.poll_interval))?;
                            let reader = stream.try_clone()?;
                            writers.insert(conn, stream);
                            live_readers += 1;
                            let tx = tx.clone();
                            let shutdown = self.shutdown.clone();
                            scope.spawn(move || read_loop(conn, reader, &tx, &shutdown));
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(e) => return Err(e),
                    }
                }

                // Phase 2: execute pending requests. Block briefly on
                // the first, then drain whatever queued behind it.
                let first = match rx.recv_timeout(self.config.poll_interval) {
                    Ok(event) => Some(event),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => None,
                };
                let mut pending: Vec<ConnEvent> = Vec::new();
                if let Some(event) = first {
                    pending.push(event);
                    while let Ok(event) = rx.try_recv() {
                        pending.push(event);
                    }
                }
                for event in pending {
                    match event {
                        ConnEvent::Closed(conn) => {
                            writers.remove(&conn);
                            live_readers -= 1;
                        }
                        ConnEvent::Malformed(conn, err) => {
                            stats.decode_errors += 1;
                            if let Some(stream) = writers.get_mut(&conn) {
                                let body = Response::Error {
                                    code: ErrorCode::Malformed,
                                    message: err.to_string(),
                                }
                                .encode();
                                let _ = write_frame(stream, &body);
                                let _ = stream.shutdown(std::net::Shutdown::Both);
                            }
                            // The reader worker exits on its own (socket
                            // shut down) and reports Closed.
                        }
                        ConnEvent::Request(conn, request) => {
                            stats.frames_in += 1;
                            let response = self.execute(service, request, &mut stats);
                            let done = matches!(response, Response::Bye);
                            if let Some(stream) = writers.get_mut(&conn) {
                                if write_frame(stream, &response.encode()).is_ok() {
                                    stats.frames_out += 1;
                                } else {
                                    let _ = stream.shutdown(std::net::Shutdown::Both);
                                }
                            }
                            if done {
                                self.shutdown.trip();
                            }
                        }
                    }
                }
            }

            // Shutdown: close every socket so blocked readers wake, then
            // let the scope join them.
            for stream in writers.values() {
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
            Ok(())
        })?;
        Ok(stats)
    }

    /// Executes one decoded request against the engine.
    fn execute(
        &self,
        service: &mut dyn QueryService,
        request: Request,
        stats: &mut ServerStats,
    ) -> Response {
        match request {
            Request::Hello { version } => {
                if version == PROTOCOL_VERSION {
                    Response::Welcome {
                        version: PROTOCOL_VERSION,
                    }
                } else {
                    Response::Error {
                        code: ErrorCode::Malformed,
                        message: format!(
                            "protocol version mismatch: client {version}, server {PROTOCOL_VERSION}"
                        ),
                    }
                }
            }
            Request::Ping { token } => Response::Pong { token },
            Request::Submit(spec) => match spec.to_request(service.now()) {
                Err(err) => Response::Error {
                    code: ErrorCode::Malformed,
                    message: err.to_string(),
                },
                Ok(request) => match service.submit(request) {
                    Ok(report) => Response::Report(report),
                    Err(e) => {
                        stats.plan_errors += 1;
                        Response::Error {
                            code: ErrorCode::Plan,
                            message: e.to_string(),
                        }
                    }
                },
            },
            Request::SubmitBatch(specs) => {
                let mut merged = ReportMsg::default();
                for spec in specs {
                    match spec.to_request(service.now()) {
                        Err(err) => {
                            return Response::Error {
                                code: ErrorCode::Malformed,
                                message: err.to_string(),
                            }
                        }
                        Ok(request) => match service.submit(request) {
                            Ok(report) => merged.absorb(report),
                            Err(e) => {
                                stats.plan_errors += 1;
                                return Response::Error {
                                    code: ErrorCode::Plan,
                                    message: e.to_string(),
                                };
                            }
                        },
                    }
                }
                Response::Report(merged)
            }
            Request::AdvanceTo { to } => {
                if to.is_nan() {
                    return Response::Error {
                        code: ErrorCode::Malformed,
                        message: "advance target is NaN".to_owned(),
                    };
                }
                match service.advance_to(SimTime::new(to)) {
                    Ok(report) => Response::Report(report),
                    Err(e) => {
                        stats.plan_errors += 1;
                        Response::Error {
                            code: ErrorCode::Plan,
                            message: e.to_string(),
                        }
                    }
                }
            }
            Request::Drain => match service.drain() {
                Ok(report) => Response::Report(report),
                Err(e) => {
                    stats.plan_errors += 1;
                    Response::Error {
                        code: ErrorCode::Plan,
                        message: e.to_string(),
                    }
                }
            },
            Request::Metrics => Response::Metrics {
                text: service.exposition(),
            },
            Request::Audit { query } => match service.audit(QueryId::new(query)) {
                Some(text) => Response::Audit { found: true, text },
                None => Response::Audit {
                    found: false,
                    text: String::new(),
                },
            },
            Request::Shutdown => Response::Bye,
        }
    }
}

/// One reader worker: assembles frames under the read timeout, decodes,
/// forwards. Exits on EOF, I/O error, malformed frame or shutdown.
fn read_loop(conn: u64, mut stream: TcpStream, tx: &Sender<ConnEvent>, shutdown: &ShutdownSwitch) {
    let mut frames = FrameReader::new();
    loop {
        if shutdown.is_tripped() {
            break;
        }
        match frames.poll(&mut stream) {
            Ok(ReadEvent::NotReady) => {}
            Ok(ReadEvent::Eof) => break,
            Err(_) => break,
            Ok(ReadEvent::Frame(body)) => match Request::decode(&body) {
                Ok(request) => {
                    if tx.send(ConnEvent::Request(conn, request)).is_err() {
                        break;
                    }
                }
                Err(err) => {
                    let _ = tx.send(ConnEvent::Malformed(conn, err));
                    break;
                }
            },
        }
    }
    let _ = tx.send(ConnEvent::Closed(conn));
}

/// Drains a channel receiver without blocking (used by tests).
#[doc(hidden)]
pub fn drain_events<T>(rx: &Receiver<T>) -> Vec<T> {
    let mut out = Vec::new();
    while let Ok(x) = rx.try_recv() {
        out.push(x);
    }
    out
}
