//! A blocking client for the front-door protocol.
//!
//! One [`NetClient`] wraps one TCP connection and speaks strict
//! request/response: every call writes one frame and blocks for the
//! answering frame. That is all the loopback suites and the closed-loop
//! load driver need — a driver wanting pipelining opens more
//! connections instead.

use std::net::{TcpStream, ToSocketAddrs};

use crate::proto::{
    read_frame_blocking, write_frame, ErrorCode, ReportMsg, Request, Response, SubmitSpec,
    WireError, PROTOCOL_VERSION,
};

/// Why a client call failed.
#[derive(Debug)]
pub enum NetError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server's response frame failed to decode.
    Wire(WireError),
    /// The server answered [`Response::Error`].
    Remote {
        /// The server's error category.
        code: ErrorCode,
        /// The server's message.
        message: String,
    },
    /// The server answered with a frame the call did not expect.
    Unexpected(&'static str),
    /// The server closed the connection mid-conversation.
    Disconnected,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "transport error: {e}"),
            NetError::Wire(e) => write!(f, "protocol error: {e}"),
            NetError::Remote { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
            NetError::Unexpected(what) => write!(f, "unexpected response frame: {what}"),
            NetError::Disconnected => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

/// One blocking connection to a [`crate::server::NetServer`].
pub struct NetClient {
    stream: TcpStream,
}

impl NetClient {
    /// Connects and performs the `Hello`/`Welcome` version handshake.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a protocol-version mismatch.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut client = NetClient { stream };
        match client.call(&Request::Hello {
            version: PROTOCOL_VERSION,
        })? {
            Response::Welcome { .. } => Ok(client),
            Response::Error { code, message } => Err(NetError::Remote { code, message }),
            _ => Err(NetError::Unexpected("expected Welcome")),
        }
    }

    /// Writes one request frame and blocks for the response frame.
    ///
    /// # Errors
    ///
    /// Fails on transport or decode errors, or a server disconnect.
    pub fn call(&mut self, request: &Request) -> Result<Response, NetError> {
        write_frame(&mut self.stream, &request.encode())?;
        match read_frame_blocking(&mut self.stream)? {
            None => Err(NetError::Disconnected),
            Some(body) => Ok(Response::decode(&body)?),
        }
    }

    fn expect_report(response: Response) -> Result<ReportMsg, NetError> {
        match response {
            Response::Report(report) => Ok(report),
            Response::Error { code, message } => Err(NetError::Remote { code, message }),
            _ => Err(NetError::Unexpected("expected Report")),
        }
    }

    /// Round-trips a ping token.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a non-matching echo.
    pub fn ping(&mut self, token: u64) -> Result<(), NetError> {
        match self.call(&Request::Ping { token })? {
            Response::Pong { token: echoed } if echoed == token => Ok(()),
            Response::Pong { .. } => Err(NetError::Unexpected("wrong pong token")),
            Response::Error { code, message } => Err(NetError::Remote { code, message }),
            _ => Err(NetError::Unexpected("expected Pong")),
        }
    }

    /// Submits one query.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a server-side error reply.
    pub fn submit(&mut self, spec: SubmitSpec) -> Result<ReportMsg, NetError> {
        Self::expect_report(self.call(&Request::Submit(spec))?)
    }

    /// Submits a batch; the server merges the per-query outcomes into
    /// one report.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a server-side error reply.
    pub fn submit_batch(&mut self, specs: Vec<SubmitSpec>) -> Result<ReportMsg, NetError> {
        Self::expect_report(self.call(&Request::SubmitBatch(specs))?)
    }

    /// Advances the server's clock (sim mode) / pumps dispatch (wall
    /// mode).
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a server-side error reply.
    pub fn advance_to(&mut self, to: f64) -> Result<ReportMsg, NetError> {
        Self::expect_report(self.call(&Request::AdvanceTo { to })?)
    }

    /// Force-dispatches everything still queued on the server.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a server-side error reply.
    pub fn drain(&mut self) -> Result<ReportMsg, NetError> {
        Self::expect_report(self.call(&Request::Drain)?)
    }

    /// Fetches the metrics exposition.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a server-side error reply.
    pub fn metrics(&mut self) -> Result<String, NetError> {
        match self.call(&Request::Metrics)? {
            Response::Metrics { text } => Ok(text),
            Response::Error { code, message } => Err(NetError::Remote { code, message }),
            _ => Err(NetError::Unexpected("expected Metrics")),
        }
    }

    /// Fetches a query's rendered plan audit, if the server retained
    /// one.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a server-side error reply.
    pub fn audit(&mut self, query: u64) -> Result<Option<String>, NetError> {
        match self.call(&Request::Audit { query })? {
            Response::Audit { found: true, text } => Ok(Some(text)),
            Response::Audit { found: false, .. } => Ok(None),
            Response::Error { code, message } => Err(NetError::Remote { code, message }),
            _ => Err(NetError::Unexpected("expected Audit")),
        }
    }

    /// Asks the server to stop serving.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a server-side error reply.
    pub fn shutdown(&mut self) -> Result<(), NetError> {
        match self.call(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            Response::Error { code, message } => Err(NetError::Remote { code, message }),
            _ => Err(NetError::Unexpected("expected Bye")),
        }
    }
}
