//! The seam between the transport and the engines.
//!
//! [`QueryService`] is the complete surface the TCP server needs: it is
//! implemented for both a bare [`ServeEngine`] and a sharded
//! [`Cluster`], and it is deliberately *thin* — every method forwards
//! straight into the existing dispatch code, so the network path and
//! the in-process path run the identical pipeline. That is the whole
//! determinism argument of the loopback suite: a query stream fed
//! through real sockets and the same stream fed through direct method
//! calls hit the same `submit`/`advance_to`/`drain` entry points in the
//! same order, and must therefore produce bit-identical reports.

use ivdss_cluster::{Cluster, ClusterReport};
use ivdss_core::plan::{PlanError, QueryRequest};
use ivdss_costmodel::query::QueryId;
use ivdss_serve::clock::Clock;
use ivdss_serve::engine::{Completion, ServeEngine, SubmitReport};
use ivdss_simkernel::time::SimTime;

use crate::proto::{CompletionMsg, ReportMsg, RouteMsg, ShedMsg};

/// Everything the network front door asks of an engine. Object-safe so
/// the server can hold `&mut dyn QueryService` regardless of which
/// engine (and which [`Clock`]) backs it.
pub trait QueryService {
    /// The engine's current time.
    fn now(&self) -> SimTime;

    /// Submits one query through the ordinary serving pipeline.
    ///
    /// # Errors
    ///
    /// Propagates [`PlanError`] from planning dispatched queries.
    fn submit(&mut self, request: QueryRequest) -> Result<ReportMsg, PlanError>;

    /// Advances the engine's clock (a no-op on wall clocks) and pumps
    /// dispatch.
    ///
    /// # Errors
    ///
    /// Propagates [`PlanError`] from planning dispatched queries.
    fn advance_to(&mut self, to: SimTime) -> Result<ReportMsg, PlanError>;

    /// Force-dispatches everything still queued.
    ///
    /// # Errors
    ///
    /// Propagates [`PlanError`] from planning dispatched queries.
    fn drain(&mut self) -> Result<ReportMsg, PlanError>;

    /// The Prometheus-style metrics exposition.
    fn exposition(&self) -> String;

    /// The rendered plan-decision audit of `query`, if retained.
    fn audit(&self, query: QueryId) -> Option<String>;
}

fn completion_msg(shard: u32, c: &Completion) -> CompletionMsg {
    CompletionMsg {
        query: c.query.raw(),
        shard,
        delivered_iv: c.evaluation.information_value.value(),
        cl: c.evaluation.latencies.computational.value(),
        sl: c.evaluation.latencies.synchronization.value(),
        waited: c.waited.value(),
        finish: c.evaluation.finish.value(),
        iv_lost: c.iv_lost,
        replanned: c.replanned,
    }
}

fn report_from_engine(report: SubmitReport) -> ReportMsg {
    ReportMsg {
        routed: None,
        shed: report
            .shed
            .into_iter()
            .map(|q| ShedMsg {
                shard: Some(0),
                query: q.raw(),
            })
            .collect(),
        completions: report
            .completed
            .iter()
            .map(|c| completion_msg(0, c))
            .collect(),
    }
}

fn report_from_completions(completed: Vec<Completion>) -> ReportMsg {
    ReportMsg {
        routed: None,
        shed: Vec::new(),
        completions: completed.iter().map(|c| completion_msg(0, c)).collect(),
    }
}

fn report_from_cluster(report: ClusterReport) -> ReportMsg {
    ReportMsg {
        routed: report.routed.map(|d| RouteMsg {
            shard: d.shard.raw(),
            covered: d.covered as u32,
            missing: d.missing.len() as u32,
        }),
        shed: report
            .shed
            .into_iter()
            .map(|(shard, q)| ShedMsg {
                shard: shard.map(|s| s.raw()),
                query: q.raw(),
            })
            .collect(),
        completions: report
            .completed
            .iter()
            .map(|(shard, c)| completion_msg(shard.raw(), c))
            .collect(),
    }
}

impl<C: Clock> QueryService for ServeEngine<'_, C> {
    fn now(&self) -> SimTime {
        ServeEngine::now(self)
    }

    fn submit(&mut self, request: QueryRequest) -> Result<ReportMsg, PlanError> {
        ServeEngine::submit(self, request).map(report_from_engine)
    }

    fn advance_to(&mut self, to: SimTime) -> Result<ReportMsg, PlanError> {
        ServeEngine::advance_to(self, to).map(report_from_completions)
    }

    fn drain(&mut self) -> Result<ReportMsg, PlanError> {
        ServeEngine::drain(self).map(report_from_completions)
    }

    fn exposition(&self) -> String {
        ServeEngine::exposition(self)
    }

    fn audit(&self, query: QueryId) -> Option<String> {
        self.plan_audit(query).map(|a| a.render())
    }
}

impl<C: Clock + Clone> QueryService for Cluster<'_, C> {
    fn now(&self) -> SimTime {
        Cluster::now(self)
    }

    fn submit(&mut self, request: QueryRequest) -> Result<ReportMsg, PlanError> {
        Cluster::submit(self, request).map(report_from_cluster)
    }

    fn advance_to(&mut self, to: SimTime) -> Result<ReportMsg, PlanError> {
        Cluster::advance_to(self, to).map(report_from_cluster)
    }

    fn drain(&mut self) -> Result<ReportMsg, PlanError> {
        Cluster::drain(self).map(report_from_cluster)
    }

    fn exposition(&self) -> String {
        Cluster::exposition(self)
    }

    fn audit(&self, query: QueryId) -> Option<String> {
        // The audit lives on whichever shard dispatched the query; the
        // newest decision wins if several shards saw it (failover).
        self.engines()
            .iter()
            .rev()
            .find_map(|e| e.plan_audit(query).map(|a| a.render()))
    }
}
