//! The wire protocol of the network front door.
//!
//! # Frame layout
//!
//! Every message travels as one *frame*:
//!
//! ```text
//! +----------------+-------------------------------+
//! | u32 LE length  | body (`length` bytes)         |
//! +----------------+-------------------------------+
//! body = u8 kind tag, then the kind's fields in order
//! ```
//!
//! Field encodings are fixed and little-endian throughout:
//!
//! * `u8`/`u32`/`u64` — little-endian, fixed width;
//! * `f64` — IEEE-754 bit pattern via [`f64::to_bits`], little-endian.
//!   Values round-trip **bit-exactly**, which is what lets the loopback
//!   suite assert per-query IV equality down to the last ULP;
//! * `Option<f64>` — one tag byte (`0`/`1`) then the payload if `1`;
//! * `String` — `u32` byte length then UTF-8 bytes;
//! * `Vec<T>` — `u32` element count then the elements.
//!
//! Decoding is total: any byte sequence either parses or returns a
//! [`WireError`] — malformed input must never panic (the protocol
//! property suite fuzzes this). Semantic validation (positive weights,
//! selectivity in `(0, 1]`, finite times) happens in
//! [`SubmitSpec::to_request`], *before* the catalog types' constructors
//! could assert, so a hostile client cannot crash the server.
//!
//! The body length is bounded by [`MAX_FRAME_LEN`]; a peer announcing a
//! longer frame is cut off before any allocation happens.

use ivdss_catalog::ids::TableId;
use ivdss_core::plan::QueryRequest;
use ivdss_core::value::BusinessValue;
use ivdss_costmodel::query::{QueryId, QuerySpec};
use ivdss_simkernel::time::SimTime;

/// Hard upper bound on a frame body, shared by both peers. Large enough
/// for several thousand batched submissions, small enough that a
/// garbage length prefix cannot drive an allocation.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// Protocol version carried in [`Request::Hello`]; bumped on any frame
/// layout change.
pub const PROTOCOL_VERSION: u32 = 1;

/// Why a byte sequence failed to parse as a frame body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The body ended before a field was complete.
    Truncated,
    /// The first byte named no known frame kind.
    UnknownKind(u8),
    /// A length or count field exceeded the frame bound.
    TooLarge,
    /// Bytes remained after the last field of the frame.
    TrailingBytes,
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// An `Option` tag byte was neither 0 nor 1.
    BadTag(u8),
    /// The frame parsed but a field failed semantic validation.
    Invalid(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame body truncated"),
            WireError::UnknownKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            WireError::TooLarge => write!(f, "length field exceeds the frame bound"),
            WireError::TrailingBytes => write!(f, "trailing bytes after the frame"),
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::BadTag(t) => write!(f, "bad option tag {t}"),
            WireError::Invalid(what) => write!(f, "invalid field: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Error categories a server can send back in [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request frame failed to decode or validate.
    Malformed,
    /// Planning the query failed ([`ivdss_core::plan::PlanError`]).
    Plan,
    /// The server is at its connection bound.
    Busy,
    /// Anything else.
    Internal,
}

impl ErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::Malformed => 1,
            ErrorCode::Plan => 2,
            ErrorCode::Busy => 3,
            ErrorCode::Internal => 4,
        }
    }

    fn from_u8(raw: u8) -> Result<Self, WireError> {
        match raw {
            1 => Ok(ErrorCode::Malformed),
            2 => Ok(ErrorCode::Plan),
            3 => Ok(ErrorCode::Busy),
            4 => Ok(ErrorCode::Internal),
            other => Err(WireError::BadTag(other)),
        }
    }
}

/// One query submission as it travels over the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitSpec {
    /// The query id (client-assigned, unique per session).
    pub id: u64,
    /// The footprint's table ids.
    pub tables: Vec<u32>,
    /// Cost-profile weight (must be finite and positive).
    pub weight: f64,
    /// Result selectivity (must be in `(0, 1]`).
    pub selectivity: f64,
    /// Business value (must be finite and positive).
    pub business_value: f64,
    /// Submission time in simulation units. `None` lets the server
    /// stamp the request with its own clock — the wall-clock mode;
    /// deterministic (sim-clock) sessions supply explicit times.
    pub submitted_at: Option<f64>,
}

impl SubmitSpec {
    /// Builds the wire form of a request whose submission time the
    /// server should stamp from its own clock.
    #[must_use]
    pub fn from_request(request: &QueryRequest) -> Self {
        SubmitSpec {
            id: request.id().raw(),
            tables: request
                .query
                .tables()
                .iter()
                .map(|t| t.index() as u32)
                .collect(),
            weight: request.query.weight(),
            selectivity: request.query.selectivity(),
            business_value: request.business_value.value(),
            submitted_at: Some(request.submitted_at.value()),
        }
    }

    /// Validates the spec and converts it to an engine request, stamping
    /// `now` when no submission time was carried.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Invalid`] on any field the engine's
    /// constructors would reject — empty footprint, non-positive or
    /// non-finite weight/business value, selectivity outside `(0, 1]`,
    /// or a NaN submission time.
    pub fn to_request(&self, now: SimTime) -> Result<QueryRequest, WireError> {
        if self.tables.is_empty() {
            return Err(WireError::Invalid("empty table footprint"));
        }
        if !(self.weight.is_finite() && self.weight > 0.0) {
            return Err(WireError::Invalid("weight must be positive and finite"));
        }
        if !(self.selectivity > 0.0 && self.selectivity <= 1.0) {
            return Err(WireError::Invalid("selectivity must be in (0, 1]"));
        }
        if !(self.business_value.is_finite() && self.business_value > 0.0) {
            return Err(WireError::Invalid(
                "business value must be positive and finite",
            ));
        }
        let submitted_at = match self.submitted_at {
            Some(t) if t.is_nan() => return Err(WireError::Invalid("submission time is NaN")),
            Some(t) => SimTime::new(t),
            None => now,
        };
        let tables: Vec<TableId> = self.tables.iter().map(|&t| TableId::new(t)).collect();
        let spec =
            QuerySpec::with_profile(QueryId::new(self.id), tables, self.weight, self.selectivity);
        Ok(QueryRequest::new(spec, submitted_at)
            .with_business_value(BusinessValue::new(self.business_value)))
    }
}

/// Where a submitted query was routed, echoed back to the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteMsg {
    /// The chosen shard.
    pub shard: u32,
    /// Replicated footprint tables the shard owns.
    pub covered: u32,
    /// Replicated footprint tables served by remote-base fallback.
    pub missing: u32,
}

/// A query dropped during a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShedMsg {
    /// The shard that shed it (`None` = cluster-wide, no shard live).
    pub shard: Option<u32>,
    /// The dropped query.
    pub query: u64,
}

/// A delivered query, with every float carried bit-exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletionMsg {
    /// The completed query.
    pub query: u64,
    /// The shard that served it.
    pub shard: u32,
    /// Delivered information value.
    pub delivered_iv: f64,
    /// Computational latency.
    pub cl: f64,
    /// Synchronization latency.
    pub sl: f64,
    /// Admission-queue waiting time.
    pub waited: f64,
    /// Delivery time.
    pub finish: f64,
    /// IV lost to injected degradation (zero without faults).
    pub iv_lost: f64,
    /// `true` if an outage forced a dispatch-time re-plan.
    pub replanned: bool,
}

/// What one engine step (submit / advance / drain) did — the wire form
/// of a cluster or engine report.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ReportMsg {
    /// Routing of the submitted query, if one was routed.
    pub routed: Option<RouteMsg>,
    /// Queries dropped during the step.
    pub shed: Vec<ShedMsg>,
    /// Queries delivered during the step, in dispatch order.
    pub completions: Vec<CompletionMsg>,
}

impl ReportMsg {
    /// Folds another step's outcome into this one (batch submission).
    /// The last routing decision wins; sheds and completions append.
    pub fn absorb(&mut self, other: ReportMsg) {
        if other.routed.is_some() {
            self.routed = other.routed;
        }
        self.shed.extend(other.shed);
        self.completions.extend(other.completions);
    }

    /// Sum of delivered IV across this report's completions.
    #[must_use]
    pub fn delivered_iv(&self) -> f64 {
        self.completions.iter().map(|c| c.delivered_iv).sum()
    }
}

/// Client → server frames.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Session opener: protocol version check.
    Hello {
        /// The client's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Liveness / latency probe; echoed back in [`Response::Pong`].
    Ping {
        /// Opaque token echoed back.
        token: u64,
    },
    /// Submit one query.
    Submit(SubmitSpec),
    /// Submit a batch of queries in order; the server answers with one
    /// merged report (per-query outcomes are distinguishable by id).
    SubmitBatch(Vec<SubmitSpec>),
    /// Advance the server's clock to `to` (sim mode) or just pump
    /// dispatch (wall mode, where the clock moves on its own).
    AdvanceTo {
        /// Target time in simulation units.
        to: f64,
    },
    /// Force-dispatch everything still queued.
    Drain,
    /// Fetch the Prometheus-style metrics exposition.
    Metrics,
    /// Fetch the rendered plan-decision audit of a query.
    Audit {
        /// The queried id.
        query: u64,
    },
    /// Ask the server to stop serving (it answers [`Response::Bye`] to
    /// every connection's next read and exits its accept loop).
    Shutdown,
}

/// Server → client frames.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Session accepted at this protocol version.
    Welcome {
        /// The server's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Echo of a [`Request::Ping`].
    Pong {
        /// The echoed token.
        token: u64,
    },
    /// Outcome of a submit / batch / advance / drain.
    Report(ReportMsg),
    /// The metrics exposition text.
    Metrics {
        /// Prometheus-style text dump.
        text: String,
    },
    /// A plan-decision audit (empty `text` when `found` is `false`).
    Audit {
        /// Whether the query had a retained audit.
        found: bool,
        /// The rendered audit.
        text: String,
    },
    /// The request failed; the connection stays usable unless the
    /// error was [`ErrorCode::Malformed`] (framing is unrecoverable).
    Error {
        /// The failure category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Shutdown acknowledged.
    Bye,
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

fn put_opt_f64(out: &mut Vec<u8>, v: Option<f64>) {
    match v {
        None => out.push(0),
        Some(x) => {
            out.push(1);
            put_f64(out, x);
        }
    }
}

fn put_opt_u32(out: &mut Vec<u8>, v: Option<u32>) {
    match v {
        None => out.push(0),
        Some(x) => {
            out.push(1);
            put_u32(out, x);
        }
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_spec(out: &mut Vec<u8>, spec: &SubmitSpec) {
    put_u64(out, spec.id);
    put_u32(out, spec.tables.len() as u32);
    for t in &spec.tables {
        put_u32(out, *t);
    }
    put_f64(out, spec.weight);
    put_f64(out, spec.selectivity);
    put_f64(out, spec.business_value);
    put_opt_f64(out, spec.submitted_at);
}

fn put_report(out: &mut Vec<u8>, report: &ReportMsg) {
    match &report.routed {
        None => out.push(0),
        Some(r) => {
            out.push(1);
            put_u32(out, r.shard);
            put_u32(out, r.covered);
            put_u32(out, r.missing);
        }
    }
    put_u32(out, report.shed.len() as u32);
    for s in &report.shed {
        put_opt_u32(out, s.shard);
        put_u64(out, s.query);
    }
    put_u32(out, report.completions.len() as u32);
    for c in &report.completions {
        put_u64(out, c.query);
        put_u32(out, c.shard);
        put_f64(out, c.delivered_iv);
        put_f64(out, c.cl);
        put_f64(out, c.sl);
        put_f64(out, c.waited);
        put_f64(out, c.finish);
        put_f64(out, c.iv_lost);
        put_bool(out, c.replanned);
    }
}

impl Request {
    /// Encodes the frame body (kind tag + fields, no length prefix).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Hello { version } => {
                put_u8(&mut out, 0x01);
                put_u32(&mut out, *version);
            }
            Request::Ping { token } => {
                put_u8(&mut out, 0x02);
                put_u64(&mut out, *token);
            }
            Request::Submit(spec) => {
                put_u8(&mut out, 0x03);
                put_spec(&mut out, spec);
            }
            Request::SubmitBatch(specs) => {
                put_u8(&mut out, 0x04);
                put_u32(&mut out, specs.len() as u32);
                for spec in specs {
                    put_spec(&mut out, spec);
                }
            }
            Request::AdvanceTo { to } => {
                put_u8(&mut out, 0x05);
                put_f64(&mut out, *to);
            }
            Request::Drain => put_u8(&mut out, 0x06),
            Request::Metrics => put_u8(&mut out, 0x07),
            Request::Audit { query } => {
                put_u8(&mut out, 0x08);
                put_u64(&mut out, *query);
            }
            Request::Shutdown => put_u8(&mut out, 0x09),
        }
        out
    }

    /// Decodes a frame body.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on any malformed input; never panics.
    pub fn decode(body: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(body);
        let kind = r.u8()?;
        let req = match kind {
            0x01 => Request::Hello { version: r.u32()? },
            0x02 => Request::Ping { token: r.u64()? },
            0x03 => Request::Submit(r.spec()?),
            0x04 => {
                let n = r.count(SPEC_MIN_LEN)?;
                let mut specs = Vec::with_capacity(n);
                for _ in 0..n {
                    specs.push(r.spec()?);
                }
                Request::SubmitBatch(specs)
            }
            0x05 => Request::AdvanceTo { to: r.f64()? },
            0x06 => Request::Drain,
            0x07 => Request::Metrics,
            0x08 => Request::Audit { query: r.u64()? },
            0x09 => Request::Shutdown,
            other => return Err(WireError::UnknownKind(other)),
        };
        r.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Encodes the frame body (kind tag + fields, no length prefix).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Welcome { version } => {
                put_u8(&mut out, 0x81);
                put_u32(&mut out, *version);
            }
            Response::Pong { token } => {
                put_u8(&mut out, 0x82);
                put_u64(&mut out, *token);
            }
            Response::Report(report) => {
                put_u8(&mut out, 0x83);
                put_report(&mut out, report);
            }
            Response::Metrics { text } => {
                put_u8(&mut out, 0x84);
                put_str(&mut out, text);
            }
            Response::Audit { found, text } => {
                put_u8(&mut out, 0x85);
                put_bool(&mut out, *found);
                put_str(&mut out, text);
            }
            Response::Error { code, message } => {
                put_u8(&mut out, 0x86);
                put_u8(&mut out, code.to_u8());
                put_str(&mut out, message);
            }
            Response::Bye => put_u8(&mut out, 0x87),
        }
        out
    }

    /// Decodes a frame body.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on any malformed input; never panics.
    pub fn decode(body: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(body);
        let kind = r.u8()?;
        let resp = match kind {
            0x81 => Response::Welcome { version: r.u32()? },
            0x82 => Response::Pong { token: r.u64()? },
            0x83 => Response::Report(r.report()?),
            0x84 => Response::Metrics { text: r.string()? },
            0x85 => Response::Audit {
                found: r.bool()?,
                text: r.string()?,
            },
            0x86 => Response::Error {
                code: ErrorCode::from_u8(r.u8()?)?,
                message: r.string()?,
            },
            0x87 => Response::Bye,
            other => return Err(WireError::UnknownKind(other)),
        };
        r.finish()?;
        Ok(resp)
    }
}

/// Minimum encoded length of a [`SubmitSpec`] — used to bound batch
/// counts before allocating.
const SPEC_MIN_LEN: usize = 8 + 4 + 8 + 8 + 8 + 1;

/// Minimum encoded length of a [`ShedMsg`] / [`CompletionMsg`].
const SHED_MIN_LEN: usize = 1 + 8;
const COMPLETION_LEN: usize = 8 + 4 + 8 * 6 + 1;

/// A bounds-checked cursor over a frame body.
struct Reader<'b> {
    body: &'b [u8],
    at: usize,
}

impl<'b> Reader<'b> {
    fn new(body: &'b [u8]) -> Self {
        Reader { body, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'b [u8], WireError> {
        let end = self.at.checked_add(n).ok_or(WireError::TooLarge)?;
        if end > self.body.len() {
            return Err(WireError::Truncated);
        }
        let slice = &self.body[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(WireError::BadTag(other)),
        }
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn opt_f64(&mut self) -> Result<Option<f64>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.f64()?)),
            other => Err(WireError::BadTag(other)),
        }
    }

    fn opt_u32(&mut self) -> Result<Option<u32>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u32()?)),
            other => Err(WireError::BadTag(other)),
        }
    }

    /// Reads an element count and sanity-checks it against the bytes
    /// actually remaining, so a hostile count cannot drive a huge
    /// allocation.
    fn count(&mut self, min_element_len: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        let remaining = self.body.len() - self.at;
        if n.saturating_mul(min_element_len.max(1)) > remaining {
            return Err(WireError::TooLarge);
        }
        Ok(n)
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.count(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    fn spec(&mut self) -> Result<SubmitSpec, WireError> {
        let id = self.u64()?;
        let n_tables = self.count(4)?;
        let mut tables = Vec::with_capacity(n_tables);
        for _ in 0..n_tables {
            tables.push(self.u32()?);
        }
        Ok(SubmitSpec {
            id,
            tables,
            weight: self.f64()?,
            selectivity: self.f64()?,
            business_value: self.f64()?,
            submitted_at: self.opt_f64()?,
        })
    }

    fn report(&mut self) -> Result<ReportMsg, WireError> {
        let routed = match self.u8()? {
            0 => None,
            1 => Some(RouteMsg {
                shard: self.u32()?,
                covered: self.u32()?,
                missing: self.u32()?,
            }),
            other => return Err(WireError::BadTag(other)),
        };
        let n_shed = self.count(SHED_MIN_LEN)?;
        let mut shed = Vec::with_capacity(n_shed);
        for _ in 0..n_shed {
            shed.push(ShedMsg {
                shard: self.opt_u32()?,
                query: self.u64()?,
            });
        }
        let n_done = self.count(COMPLETION_LEN)?;
        let mut completions = Vec::with_capacity(n_done);
        for _ in 0..n_done {
            completions.push(CompletionMsg {
                query: self.u64()?,
                shard: self.u32()?,
                delivered_iv: self.f64()?,
                cl: self.f64()?,
                sl: self.f64()?,
                waited: self.f64()?,
                finish: self.f64()?,
                iv_lost: self.f64()?,
                replanned: self.bool()?,
            });
        }
        Ok(ReportMsg {
            routed,
            shed,
            completions,
        })
    }

    fn finish(self) -> Result<(), WireError> {
        if self.at == self.body.len() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// Prefixes `body` with its `u32` LE length and writes the frame.
///
/// # Errors
///
/// Propagates I/O errors; rejects bodies over [`MAX_FRAME_LEN`] with
/// [`std::io::ErrorKind::InvalidData`].
pub fn write_frame(w: &mut impl std::io::Write, body: &[u8]) -> std::io::Result<()> {
    if body.len() > MAX_FRAME_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame body exceeds MAX_FRAME_LEN",
        ));
    }
    let mut frame = Vec::with_capacity(4 + body.len());
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(body);
    w.write_all(&frame)
}

/// Reads one complete frame with blocking semantics. Returns `None` on
/// a clean EOF at a frame boundary.
///
/// # Errors
///
/// Propagates I/O errors; maps an announced length over
/// [`MAX_FRAME_LEN`] and EOF mid-frame to
/// [`std::io::ErrorKind::InvalidData`] /
/// [`std::io::ErrorKind::UnexpectedEof`].
pub fn read_frame_blocking(r: &mut impl std::io::Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_bytes[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "EOF inside a frame header",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "announced frame length exceeds MAX_FRAME_LEN",
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

/// What [`FrameReader::poll`] observed on the socket.
#[derive(Debug)]
pub enum ReadEvent {
    /// One complete frame body.
    Frame(Vec<u8>),
    /// No complete frame yet (the read would block or timed out);
    /// partial bytes stay buffered.
    NotReady,
    /// The peer closed the connection at a frame boundary.
    Eof,
}

/// Incremental frame assembly over a socket with a read timeout: bytes
/// accumulate across [`FrameReader::poll`] calls, so a timeout mid-frame
/// loses nothing. This is what lets server workers wake up periodically
/// to check the shutdown flag without corrupting the stream.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// Creates an empty reader.
    #[must_use]
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Pops a complete buffered frame, if one is fully assembled.
    ///
    /// # Errors
    ///
    /// Returns [`std::io::ErrorKind::InvalidData`] when the buffered
    /// length prefix exceeds [`MAX_FRAME_LEN`].
    fn take_buffered(&mut self) -> std::io::Result<Option<Vec<u8>>> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > MAX_FRAME_LEN {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "announced frame length exceeds MAX_FRAME_LEN",
            ));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let body = self.buf[4..4 + len].to_vec();
        self.buf.drain(..4 + len);
        Ok(Some(body))
    }

    /// Reads whatever the socket has and returns the next complete
    /// frame, [`ReadEvent::NotReady`] on timeout / would-block, or
    /// [`ReadEvent::Eof`] when the peer closed cleanly.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; EOF with a partial frame buffered is
    /// [`std::io::ErrorKind::UnexpectedEof`].
    pub fn poll(&mut self, r: &mut impl std::io::Read) -> std::io::Result<ReadEvent> {
        loop {
            if let Some(frame) = self.take_buffered()? {
                return Ok(ReadEvent::Frame(frame));
            }
            let mut chunk = [0u8; 16 * 1024];
            match r.read(&mut chunk) {
                Ok(0) => {
                    if self.buf.is_empty() {
                        return Ok(ReadEvent::Eof);
                    }
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "EOF inside a frame",
                    ));
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(ReadEvent::NotReady)
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let reqs = [
            Request::Hello {
                version: PROTOCOL_VERSION,
            },
            Request::Ping { token: 42 },
            Request::Submit(SubmitSpec {
                id: 7,
                tables: vec![0, 3, 9],
                weight: 1.5,
                selectivity: 0.01,
                business_value: 2.0,
                submitted_at: Some(11.25),
            }),
            Request::AdvanceTo { to: 99.5 },
            Request::Drain,
            Request::Metrics,
            Request::Audit { query: 5 },
            Request::Shutdown,
        ];
        for req in reqs {
            assert_eq!(Request::decode(&req.encode()), Ok(req));
        }
    }

    #[test]
    fn response_round_trips() {
        let resps = [
            Response::Welcome {
                version: PROTOCOL_VERSION,
            },
            Response::Pong { token: 1 },
            Response::Report(ReportMsg {
                routed: Some(RouteMsg {
                    shard: 1,
                    covered: 2,
                    missing: 0,
                }),
                shed: vec![ShedMsg {
                    shard: None,
                    query: 3,
                }],
                completions: vec![CompletionMsg {
                    query: 4,
                    shard: 1,
                    delivered_iv: 0.5,
                    cl: 1.0,
                    sl: 2.0,
                    waited: 0.0,
                    finish: 3.0,
                    iv_lost: 0.0,
                    replanned: true,
                }],
            }),
            Response::Metrics {
                text: "# HELP x\n".to_owned(),
            },
            Response::Error {
                code: ErrorCode::Plan,
                message: "nope".to_owned(),
            },
            Response::Bye,
        ];
        for resp in resps {
            assert_eq!(Response::decode(&resp.encode()), Ok(resp));
        }
    }

    #[test]
    fn truncation_errors_cleanly() {
        let body = Request::Submit(SubmitSpec {
            id: 7,
            tables: vec![0, 1],
            weight: 1.0,
            selectivity: 0.5,
            business_value: 1.0,
            submitted_at: None,
        })
        .encode();
        for cut in 0..body.len() {
            assert!(Request::decode(&body[..cut]).is_err());
        }
    }

    #[test]
    fn hostile_counts_cannot_allocate() {
        // A batch frame announcing u32::MAX specs with a 5-byte body.
        let mut body = vec![0x04];
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(Request::decode(&body), Err(WireError::TooLarge));
    }

    #[test]
    fn semantic_validation_rejects_what_constructors_would_panic_on() {
        let bad = SubmitSpec {
            id: 1,
            tables: vec![],
            weight: 1.0,
            selectivity: 0.5,
            business_value: 1.0,
            submitted_at: None,
        };
        assert!(bad.to_request(SimTime::ZERO).is_err());
        let bad_weight = SubmitSpec {
            weight: f64::NAN,
            tables: vec![0],
            ..bad.clone()
        };
        assert!(bad_weight.to_request(SimTime::ZERO).is_err());
    }
}
