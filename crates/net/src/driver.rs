//! The closed-loop load driver.
//!
//! A fixed population of clients, each on its own TCP connection, each
//! submitting a batch of queries and blocking for the merged report
//! before issuing the next batch — the classic closed loop: offered
//! load self-regulates to what the server sustains, so the measured
//! throughput *is* the server's capacity on this host, not a queueing
//! artifact.
//!
//! Query ids are drawn from one shared atomic counter, so the id space
//! is globally unique across clients; templates are cycled by id, so
//! the submitted *set* of queries is independent of client interleaving
//! (only the arrival order varies, as it would in any real deployment).
//!
//! Submission timestamps follow [`SubmitTiming`]: `Sequenced` stamps
//! query *i* at `i × interarrival` — the deterministic sim-clock mode —
//! while `ServerClock` lets the server stamp arrivals from its own
//! (wall) clock.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use ivdss_costmodel::query::QuerySpec;
use ivdss_obs::FixedHistogram;

use crate::client::{NetClient, NetError};
use crate::proto::SubmitSpec;

/// How the driver stamps submission times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SubmitTiming {
    /// Query `i` is submitted at sim time `i × interarrival` — fully
    /// deterministic under a server [`DesClock`](ivdss_serve::clock::DesClock).
    Sequenced {
        /// Sim-time spacing between consecutive query ids.
        interarrival: f64,
    },
    /// The server stamps each arrival with its own clock — the
    /// wall-clock serving mode.
    ServerClock,
}

/// Configuration of one closed-loop run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriverConfig {
    /// Concurrent client connections.
    pub clients: usize,
    /// Total queries to issue across all clients.
    pub queries: usize,
    /// Queries per request frame. Larger batches amortize the
    /// per-frame syscall + dispatch-loop cost; 1 measures pure
    /// request/response latency.
    pub batch: usize,
    /// Business value stamped on every query.
    pub business_value: f64,
    /// Submission-time mode.
    pub timing: SubmitTiming,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            clients: 2,
            queries: 10_000,
            batch: 128,
            business_value: 1.0,
            timing: SubmitTiming::Sequenced { interarrival: 0.01 },
        }
    }
}

/// What a closed-loop run measured.
#[derive(Debug, Clone, PartialEq)]
pub struct NetLoadReport {
    /// Queries submitted over the sockets.
    pub submitted: usize,
    /// Completions streamed back.
    pub completed: usize,
    /// Queries shed by the server.
    pub shed: usize,
    /// Sum of delivered information value.
    pub delivered_iv: f64,
    /// Wall-clock seconds from first byte to last response.
    pub wall_secs: f64,
    /// Submitted queries per wall-clock second.
    pub qps: f64,
    /// Per-batch round-trip times in microseconds (histogram bins
    /// `0..50_000µs`; overflow collects the tail).
    pub rtt_micros: FixedHistogram,
}

impl NetLoadReport {
    /// Nearest-rank RTT percentile in microseconds, `None` until a
    /// batch completed.
    #[must_use]
    pub fn rtt_percentile(&self, q: f64) -> Option<f64> {
        self.rtt_micros.quantile(q)
    }
}

/// Histogram bounds for batch round-trip times.
const RTT_HIGH_MICROS: f64 = 50_000.0;
const RTT_BINS: usize = 100;

/// Runs the closed loop against a serving front door.
///
/// # Errors
///
/// Propagates the first client's [`NetError`]; sibling clients are
/// joined before returning.
///
/// # Panics
///
/// Panics if `clients`, `batch` or `templates` is zero/empty.
pub fn run_net_closed_loop(
    addr: std::net::SocketAddr,
    templates: &[QuerySpec],
    config: &DriverConfig,
) -> Result<NetLoadReport, NetError> {
    assert!(config.clients > 0, "need at least one client");
    assert!(config.batch > 0, "batch must be positive");
    assert!(!templates.is_empty(), "need at least one template");

    let next_id = AtomicUsize::new(0);
    let started = Instant::now();

    struct ClientTally {
        submitted: usize,
        completed: usize,
        shed: usize,
        delivered_iv: f64,
        rtt: FixedHistogram,
    }

    let tallies: Vec<Result<ClientTally, NetError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.clients)
            .map(|_| {
                let next_id = &next_id;
                scope.spawn(move || -> Result<ClientTally, NetError> {
                    let mut client = NetClient::connect(addr)?;
                    let mut tally = ClientTally {
                        submitted: 0,
                        completed: 0,
                        shed: 0,
                        delivered_iv: 0.0,
                        rtt: FixedHistogram::new(0.0, RTT_HIGH_MICROS, RTT_BINS),
                    };
                    loop {
                        // Claim the next batch of ids; stop when the
                        // global budget is spent.
                        let start = next_id.fetch_add(config.batch, Ordering::Relaxed);
                        if start >= config.queries {
                            break;
                        }
                        let end = (start + config.batch).min(config.queries);
                        let specs: Vec<SubmitSpec> = (start..end)
                            .map(|i| {
                                let template = &templates[i % templates.len()];
                                SubmitSpec {
                                    id: i as u64,
                                    tables: template
                                        .tables()
                                        .iter()
                                        .map(|t| t.index() as u32)
                                        .collect(),
                                    weight: template.weight(),
                                    selectivity: template.selectivity(),
                                    business_value: config.business_value,
                                    submitted_at: match config.timing {
                                        SubmitTiming::Sequenced { interarrival } => {
                                            Some(i as f64 * interarrival)
                                        }
                                        SubmitTiming::ServerClock => None,
                                    },
                                }
                            })
                            .collect();
                        let sent = specs.len();
                        let rtt_start = Instant::now();
                        let report = client.submit_batch(specs)?;
                        tally.rtt.record(rtt_start.elapsed().as_secs_f64() * 1e6);
                        tally.submitted += sent;
                        tally.completed += report.completions.len();
                        tally.shed += report.shed.len();
                        tally.delivered_iv += report.delivered_iv();
                    }
                    // Flush whatever the backlog gate still holds.
                    let report = client.drain()?;
                    tally.completed += report.completions.len();
                    tally.delivered_iv += report.delivered_iv();
                    Ok(tally)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread does not panic"))
            .collect()
    });
    let wall_secs = started.elapsed().as_secs_f64();

    let mut report = NetLoadReport {
        submitted: 0,
        completed: 0,
        shed: 0,
        delivered_iv: 0.0,
        wall_secs,
        qps: 0.0,
        rtt_micros: FixedHistogram::new(0.0, RTT_HIGH_MICROS, RTT_BINS),
    };
    for tally in tallies {
        let tally = tally?;
        report.submitted += tally.submitted;
        report.completed += tally.completed;
        report.shed += tally.shed;
        report.delivered_iv += tally.delivered_iv;
        report.rtt_micros.merge(&tally.rtt);
    }
    report.qps = if wall_secs > 0.0 {
        report.submitted as f64 / wall_secs
    } else {
        f64::INFINITY
    };
    Ok(report)
}
