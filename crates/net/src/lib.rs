//! # ivdss-net — the network front door
//!
//! Everything below this crate runs identically under a simulated
//! [`DesClock`](ivdss_serve::clock::DesClock) or a real
//! [`WallClock`](ivdss_serve::clock::WallClock); this crate adds the
//! missing piece for live traffic — a TCP transport over the serving
//! engines:
//!
//! * [`proto`] — a length-delimited binary protocol for query
//!   submission (single and batched), result/plan-audit streaming and a
//!   metrics exposition endpoint. Floats travel as IEEE-754 bit
//!   patterns, so results round-trip bit-exactly; decoding is total and
//!   fuzzed (malformed frames error, never panic).
//! * [`service`] — the [`QueryService`] seam:
//!   the transport drives a [`ServeEngine`](ivdss_serve::engine::ServeEngine)
//!   or a sharded [`Cluster`](ivdss_cluster::Cluster) through exactly
//!   the same `submit`/`advance_to`/`drain` entry points the simulated
//!   suites use. The sim-clock path stays bit-identical — the golden
//!   traces pin it — because nothing here *touches* dispatch; only the
//!   clock implementation and the transport differ.
//! * [`server`] — a hand-rolled `std::net` server: nonblocking
//!   listener polled from the engine loop, a bounded pool of reader
//!   workers assembling frames under a short read timeout, every
//!   request executed on the single engine thread in channel order.
//! * [`client`] — a blocking request/response client.
//! * [`driver`] — a closed-loop load driver (fixed client population,
//!   batched submissions, RTT histogram) backing the
//!   `BENCH_serve_net.json` trajectory.
//!
//! See `docs/SERVING_NET.md` for the frame layout and the wall-clock
//! time-unit semantics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod driver;
pub mod proto;
pub mod server;
pub mod service;

pub use client::{NetClient, NetError};
pub use driver::{run_net_closed_loop, DriverConfig, NetLoadReport, SubmitTiming};
pub use proto::{
    CompletionMsg, ErrorCode, ReportMsg, Request, Response, RouteMsg, ShedMsg, SubmitSpec,
    WireError, MAX_FRAME_LEN, PROTOCOL_VERSION,
};
pub use server::{NetConfig, NetServer, ServerStats, ShutdownSwitch};
pub use service::QueryService;
