//! Sim-path regression guard: compiling the network front door into the
//! workspace must not move a single byte of the simulated-clock path.
//!
//! Two guards:
//!
//! 1. The serve crate's golden scenario (seed `0x601D`, faulted, cache
//!    off) re-runs *from this crate* and is compared byte-for-byte
//!    against the serve crate's checked-in fixture. If anything in the
//!    net crate's dependency surface perturbed planning, dispatch or
//!    trace rendering, this fails without touching the original suite.
//! 2. Driving the same engine through the `&mut dyn QueryService`
//!    object the TCP server uses — instead of direct method calls —
//!    renders the identical trace. The trait indirection adds exactly
//!    nothing.

use std::sync::Arc;

use ivdss_catalog::catalog::Catalog;
use ivdss_catalog::placement::PlacementStrategy;
use ivdss_catalog::synthetic::{synthetic_catalog, SyntheticConfig};
use ivdss_core::value::DiscountRates;
use ivdss_costmodel::model::StylizedCostModel;
use ivdss_faults::observe::emit_fault_plan;
use ivdss_faults::{FaultConfig, FaultPlan};
use ivdss_net::service::QueryService;
use ivdss_obs::{Trace, Tracer};
use ivdss_replication::timelines::{SyncMode, SyncTimelines};
use ivdss_serve::clock::DesClock;
use ivdss_serve::engine::{ServeConfig, ServeEngine};
use ivdss_simkernel::rng::SeedFactory;
use ivdss_simkernel::time::SimTime;
use ivdss_workloads::stream::ArrivalStream;
use ivdss_workloads::synthetic::{random_queries, RandomQueryConfig};

const SEED: u64 = 0x601D;
const QUERIES: usize = 12;

fn golden_catalog(seeds: &SeedFactory) -> Catalog {
    synthetic_catalog(&SyntheticConfig {
        tables: 8,
        sites: 3,
        placement: PlacementStrategy::Skewed,
        replicated_tables: 4,
        mean_sync_period: 5.0,
        seed: seeds.seed_for("catalog"),
        ..SyntheticConfig::default()
    })
    .expect("golden catalog configuration is valid")
}

/// Re-runs the serve crate's golden scenario. With `through_dyn`, every
/// engine interaction goes through the [`QueryService`] trait object the
/// TCP server holds; otherwise through direct method calls as the
/// original suite does.
fn run_golden(through_dyn: bool) -> String {
    let seeds = SeedFactory::new(SEED);
    let catalog = golden_catalog(&seeds);
    let timelines = SyncTimelines::from_plan(catalog.replication(), SyncMode::Deterministic);
    let model = StylizedCostModel::paper_fig4();
    let faults = FaultPlan::generate(
        &FaultConfig {
            slip_probability: 0.3,
            drop_probability: 0.1,
            slip_delay: (1.0, 8.0),
            outage_mtbf: 60.0,
            outage_duration: (5.0, 20.0),
            jitter: (1.0, 1.4),
            horizon: SimTime::new(200.0),
        },
        &timelines,
        catalog.site_count(),
        seeds.seed_for("faults"),
    );
    let templates = random_queries(&RandomQueryConfig {
        queries: 6,
        tables: 8,
        max_tables_per_query: 4,
        weight_range: (0.8, 2.0),
        seed: seeds.seed_for("queries"),
    });
    let mut stream = ArrivalStream::new(templates, 2.0, seeds.seed_for("arrivals"));

    let mut config = ServeConfig::new(DiscountRates::new(0.01, 0.05));
    config.use_cache = false;

    let trace = Arc::new(Trace::new());
    let tracer = Tracer::recording(Arc::clone(&trace));
    emit_fault_plan(&faults, &tracer);
    let mut engine = ServeEngine::with_faults(
        &catalog,
        &timelines,
        &model,
        config,
        DesClock::new(),
        faults,
    )
    .with_tracer(tracer);
    if through_dyn {
        let service: &mut dyn QueryService = &mut engine;
        for _ in 0..QUERIES {
            service
                .submit(stream.next_request())
                .expect("golden submission plans");
        }
        service.drain().expect("golden drain plans");
    } else {
        for _ in 0..QUERIES {
            engine
                .submit(stream.next_request())
                .expect("golden submission plans");
        }
        engine.drain().expect("golden drain plans");
    }
    trace.render()
}

/// Guard 1: the checked-in golden fixture still holds, byte for byte,
/// when the scenario runs from inside the net crate.
#[test]
fn golden_trace_unchanged_with_net_compiled_in() {
    let rendered = run_golden(false);
    let fixture = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../serve/tests/fixtures/golden_trace.txt"
    );
    let expected = std::fs::read_to_string(fixture)
        .expect("serve golden fixture exists (sibling crate checkout)");
    assert!(
        rendered == expected,
        "the sim-clock path diverged with ivdss-net in the build graph: \
         rendered {} bytes, fixture {} bytes — this is a regression, NOT \
         something to re-bless from here",
        rendered.len(),
        expected.len()
    );
}

/// Guard 2: the `dyn QueryService` indirection the TCP server uses is
/// invisible to the engine — identical trace bytes either way.
#[test]
fn dyn_service_dispatch_is_byte_identical() {
    let direct = run_golden(false);
    let through_dyn = run_golden(true);
    assert_eq!(
        direct.as_bytes(),
        through_dyn.as_bytes(),
        "driving the engine through &mut dyn QueryService changed the trace"
    );
}
