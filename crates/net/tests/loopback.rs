//! Loopback end-to-end suite: the network front door must be a
//! transparent transport.
//!
//! The anchor test runs the same seeded workload twice against the same
//! seeded 2-shard cluster scenario — once through direct
//! [`QueryService`] calls, once through real sockets on `127.0.0.1:0` —
//! and asserts the *entire* report stream (routing, sheds, completions,
//! every float bit-for-bit), the metrics exposition and the plan audits
//! are identical. Floats travel the wire as IEEE-754 bit patterns, so
//! this is exact equality, not tolerance comparison.

use std::net::TcpStream;

use ivdss_catalog::catalog::Catalog;
use ivdss_catalog::placement::PlacementStrategy;
use ivdss_catalog::sharding::{ShardAssignment, ShardStrategy};
use ivdss_catalog::synthetic::{synthetic_catalog, SyntheticConfig};
use ivdss_cluster::{Cluster, ClusterConfig, ShardRouter, ShardTimelines};
use ivdss_core::plan::QueryRequest;
use ivdss_core::value::DiscountRates;
use ivdss_costmodel::model::StylizedCostModel;
use ivdss_costmodel::query::QueryId;
use ivdss_net::proto::{
    read_frame_blocking, write_frame, ErrorCode, ReportMsg, Request, Response, SubmitSpec,
};
use ivdss_net::server::{NetConfig, NetServer};
use ivdss_net::service::QueryService;
use ivdss_net::NetClient;
use ivdss_replication::timelines::{SyncMode, SyncTimelines};
use ivdss_serve::clock::DesClock;
use ivdss_serve::engine::ServeConfig;
use ivdss_simkernel::rng::SeedFactory;
use ivdss_workloads::stream::ArrivalStream;
use ivdss_workloads::synthetic::{random_queries, RandomQueryConfig};

const SEED: u64 = 0xE2E;
const QUERIES: usize = 40;
const SHARDS: usize = 2;

fn scenario_catalog() -> Catalog {
    synthetic_catalog(&SyntheticConfig {
        tables: 8,
        sites: 3,
        placement: PlacementStrategy::Skewed,
        replicated_tables: 4,
        mean_sync_period: 5.0,
        seed: SeedFactory::new(SEED).seed_for("catalog"),
        ..SyntheticConfig::default()
    })
    .expect("loopback catalog configuration is valid")
}

fn arrivals() -> Vec<QueryRequest> {
    let seeds = SeedFactory::new(SEED);
    let templates = random_queries(&RandomQueryConfig {
        queries: 6,
        tables: 8,
        max_tables_per_query: 4,
        weight_range: (0.8, 2.0),
        seed: seeds.seed_for("queries"),
    });
    ArrivalStream::new(templates, 2.0, seeds.seed_for("arrivals")).take_requests(QUERIES)
}

/// Builds the cluster scenario and hands it to `f`. Each call
/// constructs an identical, independently seeded instance — the
/// determinism the differential relies on.
fn with_cluster<T>(f: impl FnOnce(&mut Cluster<'_, DesClock>) -> T) -> T {
    let catalog = scenario_catalog();
    let timelines = SyncTimelines::from_plan(catalog.replication(), SyncMode::Deterministic);
    let assignment = ShardAssignment::partition(&catalog, SHARDS, ShardStrategy::Balanced, SEED);
    let router = ShardRouter::new(assignment);
    let shard_timelines = ShardTimelines::build(&timelines, &router);
    let model = StylizedCostModel::paper_fig4();
    let config = ClusterConfig {
        serve: ServeConfig::new(DiscountRates::new(0.01, 0.05)),
        steal: true,
    };
    let mut cluster = Cluster::new(
        &catalog,
        &shard_timelines,
        &model,
        router,
        config,
        DesClock::new(),
    );
    f(&mut cluster)
}

/// The in-process reference: the same [`QueryService`] calls the server
/// would make, no sockets involved.
fn run_in_process(requests: &[QueryRequest]) -> (Vec<ReportMsg>, String, Vec<Option<String>>) {
    with_cluster(|cluster| {
        let service: &mut dyn QueryService = cluster;
        let mut reports = Vec::new();
        for request in requests {
            reports.push(service.submit(request.clone()).expect("submit plans"));
        }
        reports.push(service.drain().expect("drain plans"));
        let exposition = service.exposition();
        let audits = (0..QUERIES as u64)
            .map(|q| service.audit(QueryId::new(q)))
            .collect();
        (reports, exposition, audits)
    })
}

/// The same workload through real sockets.
fn run_over_loopback(requests: &[QueryRequest]) -> (Vec<ReportMsg>, String, Vec<Option<String>>) {
    with_cluster(|cluster| {
        let server = NetServer::bind("127.0.0.1:0", NetConfig::default()).expect("bind loopback");
        let addr = server.local_addr().expect("bound address");
        std::thread::scope(|scope| {
            let server_thread = scope.spawn(|| server.serve(cluster).expect("server runs"));

            let mut client = NetClient::connect(addr).expect("client connects");
            let mut reports = Vec::new();
            for request in requests {
                let spec = SubmitSpec::from_request(request);
                reports.push(client.submit(spec).expect("submit over socket"));
            }
            reports.push(client.drain().expect("drain over socket"));
            let exposition = client.metrics().expect("metrics over socket");
            let audits = (0..QUERIES as u64)
                .map(|q| client.audit(q).expect("audit over socket"))
                .collect();
            client.shutdown().expect("shutdown handshake");
            let stats = server_thread.join().expect("server thread joins");
            assert_eq!(stats.decode_errors, 0, "no malformed frames in this run");
            assert!(stats.frames_in > 0 && stats.frames_out > 0);
            (reports, exposition, audits)
        })
    })
}

/// The tentpole differential: sockets in the middle change nothing.
#[test]
fn loopback_run_is_bit_identical_to_in_process_run() {
    let requests = arrivals();
    let (direct_reports, direct_text, direct_audits) = run_in_process(&requests);
    let (net_reports, net_text, net_audits) = run_over_loopback(&requests);

    assert_eq!(direct_reports.len(), net_reports.len());
    for (i, (direct, net)) in direct_reports.iter().zip(&net_reports).enumerate() {
        assert_eq!(direct, net, "report {i} diverged across the socket");
    }
    let completions: usize = net_reports.iter().map(|r| r.completions.len()).sum();
    let shed: usize = net_reports.iter().map(|r| r.shed.len()).sum();
    assert_eq!(
        completions + shed,
        QUERIES,
        "every submission is either delivered or shed"
    );
    assert!(completions > 0, "the scenario must actually deliver work");

    assert_eq!(direct_text, net_text, "metrics exposition diverged");
    assert_eq!(direct_audits, net_audits, "plan audits diverged");
    assert!(
        net_audits.iter().any(Option::is_some),
        "the scenario must retain at least one audit"
    );
}

/// Protocol-level behavior over a real socket: version checks, ping,
/// and malformed-frame handling (an `Error { Malformed }` reply, then
/// the server closes the connection — framing is unrecoverable).
#[test]
fn malformed_frames_get_an_error_then_disconnect() {
    with_cluster(|cluster| {
        let server = NetServer::bind("127.0.0.1:0", NetConfig::default()).expect("bind loopback");
        let addr = server.local_addr().expect("bound address");
        let switch = server.shutdown_switch();
        std::thread::scope(|scope| {
            let server_thread = scope.spawn(|| server.serve(cluster).expect("server runs"));

            // Raw socket: handshake manually, then send garbage.
            let mut stream = TcpStream::connect(addr).expect("raw connect");
            write_frame(&mut stream, &Request::Hello { version: 1 }.encode()).expect("hello");
            let body = read_frame_blocking(&mut stream)
                .expect("welcome frame")
                .expect("not EOF");
            assert!(matches!(
                Response::decode(&body),
                Ok(Response::Welcome { .. })
            ));

            write_frame(&mut stream, &[0xFF, 0xEE, 0xDD]).expect("garbage frame");
            let body = read_frame_blocking(&mut stream)
                .expect("error frame")
                .expect("not EOF");
            match Response::decode(&body).expect("well-formed error response") {
                Response::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed),
                other => panic!("expected Error, got {other:?}"),
            }
            // The server hangs up after a framing error.
            assert!(
                read_frame_blocking(&mut stream)
                    .expect("clean close")
                    .is_none(),
                "connection should be closed after a malformed frame"
            );

            // A fresh, well-behaved connection still works.
            let mut client = NetClient::connect(addr).expect("client connects");
            client.ping(7).expect("ping round-trips");

            switch.trip();
            let stats = server_thread.join().expect("server thread joins");
            assert_eq!(stats.decode_errors, 1);
        });
    });
}

/// A client announcing the wrong protocol version is refused.
#[test]
fn version_mismatch_is_refused() {
    with_cluster(|cluster| {
        let server = NetServer::bind("127.0.0.1:0", NetConfig::default()).expect("bind loopback");
        let addr = server.local_addr().expect("bound address");
        let switch = server.shutdown_switch();
        std::thread::scope(|scope| {
            let server_thread = scope.spawn(|| server.serve(cluster).expect("server runs"));

            let mut stream = TcpStream::connect(addr).expect("raw connect");
            write_frame(&mut stream, &Request::Hello { version: 999 }.encode()).expect("hello");
            let body = read_frame_blocking(&mut stream)
                .expect("reply frame")
                .expect("not EOF");
            assert!(matches!(
                Response::decode(&body),
                Ok(Response::Error { .. })
            ));

            switch.trip();
            let stats = server_thread.join().expect("server thread joins");
            assert!(stats.accepted >= 1);
        });
    });
}
