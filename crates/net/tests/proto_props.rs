//! Property suite for the wire protocol — the safety claims
//! `docs/SERVING_NET.md` makes, checked over seeded cases:
//!
//! * every [`Request`]/[`Response`] round-trips encode → decode
//!   bit-exactly (floats travel as IEEE-754 bit patterns);
//! * every strict prefix of a valid body decodes to a clean
//!   [`WireError`] — truncation never panics and never aliases to a
//!   different message;
//! * arbitrary byte soup never panics the decoders;
//! * hostile element counts are rejected before allocation;
//! * [`FrameReader`] reassembles frames fed in arbitrary chunk sizes
//!   with `WouldBlock` interruptions, losing nothing.

use ivdss_net::proto::{
    read_frame_blocking, write_frame, CompletionMsg, ErrorCode, FrameReader, ReadEvent, ReportMsg,
    Request, Response, RouteMsg, ShedMsg, SubmitSpec,
};
use proptest::prelude::*;

/// Derives one submit spec from a raw seed. All floats are finite and
/// non-NaN so struct equality is usable; bit diversity comes from the
/// fractional digits.
fn spec_from_seed(seed: u64) -> SubmitSpec {
    let tables: Vec<u32> = (0..1 + (seed % 5))
        .map(|i| ((seed >> i) % 64) as u32)
        .collect();
    SubmitSpec {
        id: seed,
        tables,
        weight: 0.1 + (seed % 997) as f64 * 0.013,
        selectivity: ((seed % 999) as f64 + 1.0) / 1000.0,
        business_value: 0.5 + (seed % 101) as f64 * 0.25,
        submitted_at: if seed.is_multiple_of(3) {
            None
        } else {
            Some((seed % 10_000) as f64 * 0.37)
        },
    }
}

/// Derives one completion from a raw seed; same finiteness rules.
fn completion_from_seed(seed: u64) -> CompletionMsg {
    CompletionMsg {
        query: seed,
        shard: (seed % 7) as u32,
        delivered_iv: (seed % 503) as f64 * 0.017,
        cl: (seed % 91) as f64 * 0.11,
        sl: (seed % 83) as f64 * 0.13,
        waited: (seed % 67) as f64 * 0.19,
        finish: (seed % 7919) as f64 * 0.23,
        iv_lost: (seed % 29) as f64 * 0.07,
        replanned: seed % 2 == 1,
    }
}

/// Builds a full report (routing + sheds + completions) from seeds.
fn report_from_seeds(route_seed: u64, shed_seeds: &[u64], done_seeds: &[u64]) -> ReportMsg {
    ReportMsg {
        routed: if route_seed.is_multiple_of(4) {
            None
        } else {
            Some(RouteMsg {
                shard: (route_seed % 11) as u32,
                covered: (route_seed % 6) as u32,
                missing: (route_seed % 3) as u32,
            })
        },
        shed: shed_seeds
            .iter()
            .map(|&s| ShedMsg {
                shard: if s.is_multiple_of(5) {
                    None
                } else {
                    Some((s % 9) as u32)
                },
                query: s,
            })
            .collect(),
        completions: done_seeds
            .iter()
            .map(|&s| completion_from_seed(s))
            .collect(),
    }
}

/// Builds one of every request kind, indexed by `pick`, parameterized
/// by the seeds.
fn request_from_seeds(pick: u8, seed: u64, batch_seeds: &[u64]) -> Request {
    match pick % 9 {
        0 => Request::Hello {
            version: seed as u32,
        },
        1 => Request::Ping { token: seed },
        2 => Request::Submit(spec_from_seed(seed)),
        3 => Request::SubmitBatch(batch_seeds.iter().map(|&s| spec_from_seed(s)).collect()),
        4 => Request::AdvanceTo {
            to: (seed % 100_000) as f64 * 0.41,
        },
        5 => Request::Drain,
        6 => Request::Metrics,
        7 => Request::Audit { query: seed },
        _ => Request::Shutdown,
    }
}

/// Builds one of every response kind, indexed by `pick`.
fn response_from_seeds(pick: u8, seed: u64, shed_seeds: &[u64], done_seeds: &[u64]) -> Response {
    let text: String = format!("text-{seed}-\u{2603}").repeat((seed % 4) as usize + 1);
    match pick % 7 {
        0 => Response::Welcome {
            version: seed as u32,
        },
        1 => Response::Pong { token: seed },
        2 => Response::Report(report_from_seeds(seed, shed_seeds, done_seeds)),
        3 => Response::Metrics { text },
        4 => Response::Audit {
            found: seed.is_multiple_of(2),
            text,
        },
        5 => Response::Error {
            code: match seed % 4 {
                0 => ErrorCode::Malformed,
                1 => ErrorCode::Plan,
                2 => ErrorCode::Busy,
                _ => ErrorCode::Internal,
            },
            message: text,
        },
        _ => Response::Bye,
    }
}

/// A reader that serves a byte vector in bounded chunks, returning
/// `WouldBlock` between chunks — the shape of a nonblocking socket.
struct ChunkedReader {
    data: Vec<u8>,
    at: usize,
    chunk: usize,
    /// Alternates: every other call "would block".
    block_next: bool,
}

impl std::io::Read for ChunkedReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.block_next {
            self.block_next = false;
            return Err(std::io::ErrorKind::WouldBlock.into());
        }
        self.block_next = true;
        let n = self.chunk.min(buf.len()).min(self.data.len() - self.at);
        buf[..n].copy_from_slice(&self.data[self.at..self.at + n]);
        self.at += n;
        Ok(n)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Every request kind round-trips bit-exactly.
    #[test]
    fn request_round_trips(
        pick in 0u8..9,
        seed in 0u64..u64::MAX,
        batch_seeds in prop::collection::vec(0u64..u64::MAX, 0..6),
    ) {
        let req = request_from_seeds(pick, seed, &batch_seeds);
        prop_assert_eq!(Request::decode(&req.encode()), Ok(req));
    }

    /// Every response kind round-trips bit-exactly, including reports
    /// with routing, sheds and completions.
    #[test]
    fn response_round_trips(
        pick in 0u8..7,
        seed in 0u64..u64::MAX,
        shed_seeds in prop::collection::vec(0u64..u64::MAX, 0..5),
        done_seeds in prop::collection::vec(0u64..u64::MAX, 0..5),
    ) {
        let resp = response_from_seeds(pick, seed, &shed_seeds, &done_seeds);
        prop_assert_eq!(Response::decode(&resp.encode()), Ok(resp));
    }

    /// Truncating a valid body at ANY byte boundary yields a clean
    /// error from both decoders — never a panic, never a silent
    /// reinterpretation as some other valid message.
    #[test]
    fn truncated_bodies_error_cleanly(
        pick in 0u8..9,
        seed in 0u64..u64::MAX,
        batch_seeds in prop::collection::vec(0u64..u64::MAX, 1..4),
    ) {
        let body = request_from_seeds(pick, seed, &batch_seeds).encode();
        for cut in 0..body.len() {
            prop_assert!(
                Request::decode(&body[..cut]).is_err(),
                "prefix of {} bytes decoded", cut
            );
        }
        let body = response_from_seeds(pick, seed, &batch_seeds, &batch_seeds).encode();
        for cut in 0..body.len() {
            prop_assert!(
                Response::decode(&body[..cut]).is_err(),
                "prefix of {} bytes decoded", cut
            );
        }
    }

    /// Arbitrary byte soup never panics either decoder. (It may decode
    /// successfully — e.g. `[0x06]` is a legitimate `Drain` — the claim
    /// is totality, not rejection.)
    #[test]
    fn random_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }

    /// Flipping one byte of a valid body never panics the decoders.
    /// This walks the interesting boundary cases random soup rarely
    /// hits: corrupted tags, counts, length prefixes, UTF-8.
    #[test]
    fn single_byte_corruption_never_panics(
        pick in 0u8..9,
        seed in 0u64..u64::MAX,
        batch_seeds in prop::collection::vec(0u64..u64::MAX, 1..4),
        flip in any::<u8>(),
    ) {
        let mut body = request_from_seeds(pick, seed, &batch_seeds).encode();
        for i in 0..body.len() {
            let orig = body[i];
            body[i] ^= flip;
            let _ = Request::decode(&body);
            body[i] = orig;
        }
        let mut body =
            response_from_seeds(pick, seed, &batch_seeds, &batch_seeds).encode();
        for i in 0..body.len() {
            let orig = body[i];
            body[i] ^= flip;
            let _ = Response::decode(&body);
            body[i] = orig;
        }
    }

    /// A hostile element count with no payload behind it is rejected
    /// before any allocation of that size can happen.
    #[test]
    fn hostile_counts_rejected(count in 1_000u32..u32::MAX) {
        // SubmitBatch claiming `count` specs, zero bytes of specs.
        let mut body = vec![0x04u8];
        body.extend_from_slice(&count.to_le_bytes());
        prop_assert!(Request::decode(&body).is_err());

        // A report claiming `count` completions after no routing/sheds.
        let mut body = vec![0x83u8, 0x00]; // Report, routed = None
        body.extend_from_slice(&0u32.to_le_bytes()); // no sheds
        body.extend_from_slice(&count.to_le_bytes()); // hostile completions
        prop_assert!(Response::decode(&body).is_err());
    }

    /// Frames fed through a chunked, would-block-happy reader come out
    /// whole, in order, with a clean EOF at the end — regardless of how
    /// the chunk boundaries fall relative to frame boundaries.
    #[test]
    fn frame_reader_reassembles_any_chunking(
        seeds in prop::collection::vec(0u64..u64::MAX, 1..5),
        chunk in 1usize..64,
    ) {
        let frames: Vec<Vec<u8>> = seeds
            .iter()
            .enumerate()
            .map(|(i, &s)| request_from_seeds((i % 9) as u8, s, &seeds).encode())
            .collect();
        let mut stream = Vec::new();
        for frame in &frames {
            write_frame(&mut stream, frame).expect("in-memory write");
        }

        let mut reader = ChunkedReader { data: stream, at: 0, chunk, block_next: false };
        let mut assembler = FrameReader::new();
        let mut got: Vec<Vec<u8>> = Vec::new();
        loop {
            match assembler.poll(&mut reader).expect("no io error") {
                ReadEvent::Frame(body) => got.push(body),
                ReadEvent::NotReady => continue,
                ReadEvent::Eof => break,
            }
        }
        prop_assert_eq!(got, frames);
    }

    /// The blocking reader agrees with the incremental one.
    #[test]
    fn blocking_reader_round_trips(seed in 0u64..u64::MAX) {
        let body = request_from_seeds((seed % 9) as u8, seed, &[seed]).encode();
        let mut stream = Vec::new();
        write_frame(&mut stream, &body).expect("in-memory write");
        let mut cursor = std::io::Cursor::new(stream);
        let read = read_frame_blocking(&mut cursor).expect("frame reads");
        prop_assert_eq!(read, Some(body));
        prop_assert_eq!(read_frame_blocking(&mut cursor).expect("clean EOF"), None);
    }
}

/// Semantic validation is separate from wire validation: a
/// wire-well-formed spec with an empty footprint or broken profile is
/// refused by `to_request`, so the engine's panicking constructors are
/// unreachable from the network.
#[test]
fn semantic_validation_rejects_bad_specs() {
    use ivdss_simkernel::time::SimTime;
    let good = spec_from_seed(1);
    let now = SimTime::ZERO;
    assert!(good.to_request(now).is_ok());

    let cases: Vec<SubmitSpec> = vec![
        SubmitSpec {
            tables: vec![],
            ..good.clone()
        },
        SubmitSpec {
            weight: 0.0,
            ..good.clone()
        },
        SubmitSpec {
            weight: f64::NAN,
            ..good.clone()
        },
        SubmitSpec {
            weight: f64::INFINITY,
            ..good.clone()
        },
        SubmitSpec {
            selectivity: 0.0,
            ..good.clone()
        },
        SubmitSpec {
            selectivity: 1.5,
            ..good.clone()
        },
        SubmitSpec {
            business_value: -1.0,
            ..good.clone()
        },
        SubmitSpec {
            business_value: f64::NAN,
            ..good.clone()
        },
        SubmitSpec {
            submitted_at: Some(f64::NAN),
            ..good.clone()
        },
    ];
    for bad in cases {
        assert!(bad.to_request(now).is_err(), "accepted {bad:?}");
    }
}
