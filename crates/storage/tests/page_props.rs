//! Property suite for record pages, layouts and heap files.
//!
//! The laws under test:
//!
//! * **Committed records are readable** — after `populate`, every one of
//!   the `rows` records is live at its dense position and reads back its
//!   sequential key.
//! * **Slot reuse never aliases live records** — deleting an arbitrary
//!   subset and re-inserting exactly that many records lands precisely
//!   on the freed slots (lowest first) and leaves every surviving
//!   record's payload untouched.
//! * **Offsets stay within bounds** — for an arbitrary schema, field
//!   offsets are packed after the live flag, strictly increasing, and
//!   every field ends inside the slot.
//! * **Schema↔layout round-trip** — the canonical mapping of an
//!   arbitrary catalog table yields a slot of exactly
//!   `1 + max(row_bytes, 8)` bytes, and int/byte fields written through
//!   the layout read back identically.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use ivdss_catalog::ids::TableId;
use ivdss_catalog::table::TableMeta;
use ivdss_storage::{table_layout, FieldType, Layout, Page, RecordId, Schema, TableStorage};
use proptest::prelude::*;

const PAGE_SIZES: [usize; 4] = [128, 256, 512, 1024];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Every populated record is live at its dense position and holds
    /// its sequential key; the page count is exactly the dense packing.
    #[test]
    fn committed_records_read_back(
        rows in 0u64..150,
        row_bytes in 9u32..100,
        page_choice in 0usize..4,
        seed in any::<u64>(),
    ) {
        let page_size = PAGE_SIZES[page_choice];
        let meta = TableMeta::new(TableId::new(0), "t", rows, row_bytes);
        let heap = TableStorage::populate(&meta, rows, page_size, seed);
        let spp = heap.slots_per_page() as u64;
        prop_assert!(spp > 0);
        prop_assert_eq!(heap.live_records(), rows);
        prop_assert_eq!(heap.blocks(), rows.div_ceil(spp));
        for key in 0..rows {
            let rid = RecordId {
                page: (key / spp) as usize,
                slot: (key % spp) as usize,
            };
            prop_assert!(heap.is_live(rid));
            prop_assert_eq!(heap.get_int(rid, 0), key as i64);
        }
    }

    /// Deleting a subset then inserting the same count reuses exactly
    /// the freed slots and never disturbs surviving records.
    #[test]
    fn slot_reuse_never_aliases_live_records(
        rows in 1u64..120,
        delete_mask in any::<u32>(),
        seed in any::<u64>(),
    ) {
        let meta = TableMeta::new(TableId::new(0), "t", rows, 24);
        let mut heap = TableStorage::populate(&meta, rows, 256, seed);
        let spp = heap.slots_per_page() as u64;

        let mut deleted = BTreeSet::new();
        let mut survivors = BTreeMap::new();
        for key in 0..rows {
            let rid = RecordId {
                page: (key / spp) as usize,
                slot: (key % spp) as usize,
            };
            if delete_mask & (1 << (key % 32)) != 0 {
                heap.delete(rid);
                deleted.insert(rid);
            } else {
                survivors.insert(rid, heap.get_int(rid, 0));
            }
        }
        prop_assert_eq!(heap.live_records(), rows - deleted.len() as u64);

        let mut reused = BTreeSet::new();
        for j in 0..deleted.len() {
            let rid = heap.insert();
            heap.set_int(rid, 0, 1_000_000 + j as i64);
            prop_assert!(
                deleted.contains(&rid),
                "insert {:?} must land on a freed slot", rid
            );
            prop_assert!(reused.insert(rid), "insert returned a slot twice");
        }
        prop_assert_eq!(&reused, &deleted);
        prop_assert_eq!(heap.live_records(), rows);
        for (rid, key) in &survivors {
            prop_assert!(heap.is_live(*rid));
            prop_assert_eq!(heap.get_int(*rid, 0), *key);
        }
    }

    /// Packed layout invariants over arbitrary schemas.
    #[test]
    fn layout_offsets_stay_in_bounds(
        raw_fields in prop::collection::vec((any::<u8>(), 1u16..40), 1..8),
    ) {
        let mut schema = Schema::new();
        for (i, (selector, width)) in raw_fields.iter().enumerate() {
            if selector % 2 == 0 {
                schema.add_int(format!("f{i}"));
            } else {
                schema.add_bytes(format!("f{i}"), *width);
            }
        }
        let widths: Vec<usize> = schema.fields().iter().map(|(_, ty)| ty.width()).collect();
        let layout = Layout::new(schema);
        prop_assert_eq!(layout.offset(0), 1, "first field follows the live flag");
        let mut expected = 1usize;
        for (i, width) in widths.iter().enumerate() {
            prop_assert_eq!(layout.offset(i), expected);
            prop_assert_eq!(layout.field_width(i), *width);
            expected += width;
            prop_assert!(layout.offset(i) + width <= layout.slot_size());
        }
        prop_assert_eq!(layout.slot_size(), expected);
    }

    /// The canonical catalog-table mapping round-trips through a page.
    #[test]
    fn table_schema_round_trips_through_a_page(
        rows in 1u64..50,
        row_bytes in 1u32..200,
        raw_key in any::<u64>(),
        fill in any::<u8>(),
    ) {
        let key = raw_key as i64;
        let meta = TableMeta::new(TableId::new(7), "rt", rows, row_bytes);
        let layout = table_layout(&meta);
        prop_assert_eq!(layout.slot_size(), 1 + (row_bytes as usize).max(8));
        prop_assert!(layout.schema().has_field("rt_key"));
        let has_pad = row_bytes as usize > 8;
        prop_assert_eq!(layout.schema().has_field("rt_pad"), has_pad);
        prop_assert_eq!(
            layout.schema().fields()[0].1, FieldType::Int,
            "key field is an integer"
        );

        let mut page = Page::new(layout.slot_size() * 3);
        page.set_live(&layout, 1, true);
        page.write_int(&layout, 1, 0, key);
        prop_assert!(page.is_live(&layout, 1));
        prop_assert_eq!(page.read_int(&layout, 1, 0), key);
        if has_pad {
            let pad_width = layout.field_width(1);
            let partial = vec![fill; pad_width.min(3)];
            page.write_bytes(&layout, 1, 1, &partial);
            let read = page.read_bytes(&layout, 1, 1);
            prop_assert_eq!(read.len(), pad_width);
            prop_assert_eq!(&read[..partial.len()], &partial[..]);
            prop_assert!(
                read[partial.len()..].iter().all(|&b| b == 0),
                "short writes are zero-padded"
            );
        }
        // Neighbouring slots are untouched by slot-1 writes.
        prop_assert!(!page.is_live(&layout, 0));
        prop_assert!(!page.is_live(&layout, 2));
        prop_assert_eq!(page.read_int(&layout, 0, 0), 0);
        prop_assert_eq!(page.read_int(&layout, 2, 0), 0);
    }
}
