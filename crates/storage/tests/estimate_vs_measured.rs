//! Differential suite: plan estimates vs measured access counts.
//!
//! Over 160 seeded table configurations × plan shapes drawn from the
//! *exact grammar* — table scans, `KeyLt` selections, `KeyModEq`
//! selections with `residue = modulus − 1`, `Lt`-innermost compositions,
//! projections, and products of exact subtrees — the planner's
//! `blocks_accessed()` / `records_output()` estimates must agree
//! **bit-exactly** with what [`AccessStats`] counts and the scan yields.
//! No tolerance: the heaps are densely packed and sequentially keyed, so
//! any disagreement is a bug in either the estimator or the executor.
//!
//! Shapes *outside* the grammar legitimately diverge; those are pinned
//! as counterexamples with their exact divergent numbers so a future
//! "fix" that silently changes the estimator's semantics fails loudly:
//!
//! * `KeyModEq` with residue 0 over a table whose row count is not a
//!   multiple of the modulus (the coarse `rows / modulus` estimate
//!   misses the final partial stride, which residue 0 always lands in),
//! * `Lt` applied *outside* a `ModEq` (the estimator treats the bound as
//!   an output cardinality cap, but the filtered keys are sparse),
//! * a product whose left operand carries the residue-0 overshoot (the
//!   `B₁ + R₁·B₂` block estimate amplifies the off-by-one by `B₂`).

use ivdss_catalog::ids::TableId;
use ivdss_catalog::table::TableMeta;
use ivdss_storage::{
    run_to_end, AccessStats, Plan, Predicate, ProductPlan, ProjectPlan, SelectPlan, TablePlan,
    TableStorage,
};

/// Splitmix64 — enough entropy to derive shapes, no vendored-rand needed.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn heap(rng: &mut Rng, id: u32, name: &str) -> TableStorage {
    let rows = rng.below(258); // 0..=257, includes empty heaps
    let row_bytes = 9 + rng.below(56) as u32; // 9..=64 -> slot <= 65
    let page_size = [128usize, 256, 512, 1024][rng.below(4) as usize];
    let meta = TableMeta::new(TableId::new(id), name, rows, row_bytes);
    TableStorage::populate(&meta, rows, page_size, rng.next())
}

/// Runs the plan and asserts estimates equal measurements bit-exactly.
fn check_exact(plan: &dyn Plan, stats: &AccessStats, ctx: &str) {
    let blocks_est = plan.blocks_accessed();
    let records_est = plan.records_output();
    let yielded = run_to_end(plan.open().as_mut());
    assert_eq!(
        yielded, records_est,
        "{ctx}: output records diverged from estimate"
    );
    assert_eq!(
        stats.blocks(),
        blocks_est,
        "{ctx}: measured blocks diverged from estimate"
    );
}

/// Wraps `inner` in a selection chain from the exact grammar: optional
/// `KeyLt` innermost, optional `KeyModEq` with the last residue outside.
fn exact_selects<'a>(
    rng: &mut Rng,
    table_name: &str,
    inner: Box<dyn Plan + 'a>,
) -> Box<dyn Plan + 'a> {
    let field = format!("{table_name}_key");
    let mut plan = inner;
    if rng.below(2) == 1 {
        let bound = rng.below(300);
        plan = Box::new(SelectPlan::new(
            plan,
            Predicate::KeyLt {
                field: field.clone(),
                bound,
            },
        ));
    }
    if rng.below(2) == 1 {
        let modulus = 2 + rng.below(9); // 2..=10
        plan = Box::new(SelectPlan::new(
            plan,
            Predicate::KeyModEq {
                field,
                modulus,
                residue: modulus - 1,
            },
        ));
    }
    plan
}

#[test]
fn estimates_match_measured_across_160_seeded_shapes() {
    let mut exercised = [0usize; 7];
    for seed in 0..160u64 {
        let mut rng = Rng::new(seed);
        let a = heap(&mut rng, 0, "a");
        let b = heap(&mut rng, 1, "b");
        let c = heap(&mut rng, 2, "c");
        let stats = AccessStats::new();
        let shape = rng.below(7) as usize;
        exercised[shape] += 1;
        let ctx = format!("seed {seed} shape {shape}");
        match shape {
            // Bare table scan.
            0 => check_exact(&TablePlan::new(&a, &stats), &stats, &ctx),
            // KeyLt over a table.
            1 => {
                let bound = rng.below(300);
                let plan = SelectPlan::new(
                    Box::new(TablePlan::new(&a, &stats)),
                    Predicate::KeyLt {
                        field: "a_key".into(),
                        bound,
                    },
                );
                check_exact(&plan, &stats, &ctx);
            }
            // Last-residue KeyModEq over a table.
            2 => {
                let modulus = 2 + rng.below(9);
                let plan = SelectPlan::new(
                    Box::new(TablePlan::new(&a, &stats)),
                    Predicate::KeyModEq {
                        field: "a_key".into(),
                        modulus,
                        residue: modulus - 1,
                    },
                );
                check_exact(&plan, &stats, &ctx);
            }
            // ModEq over Lt — Lt innermost keeps the composition exact.
            3 => {
                let bound = rng.below(300);
                let modulus = 2 + rng.below(9);
                let plan = SelectPlan::new(
                    Box::new(SelectPlan::new(
                        Box::new(TablePlan::new(&a, &stats)),
                        Predicate::KeyLt {
                            field: "a_key".into(),
                            bound,
                        },
                    )),
                    Predicate::KeyModEq {
                        field: "a_key".into(),
                        modulus,
                        residue: modulus - 1,
                    },
                );
                check_exact(&plan, &stats, &ctx);
            }
            // Projection over an exact select chain (pass-through counts).
            4 => {
                let inner = exact_selects(&mut rng, "a", Box::new(TablePlan::new(&a, &stats)));
                let plan = ProjectPlan::new(inner, vec!["a_key".to_string()]);
                check_exact(&plan, &stats, &ctx);
            }
            // Product of two exact subtrees.
            5 => {
                let left = exact_selects(&mut rng, "a", Box::new(TablePlan::new(&a, &stats)));
                let right = exact_selects(&mut rng, "b", Box::new(TablePlan::new(&b, &stats)));
                let plan = ProductPlan::new(left, right);
                check_exact(&plan, &stats, &ctx);
            }
            // Three-way product: (a × b) × σ(c).
            6 => {
                let ab = ProductPlan::new(
                    Box::new(TablePlan::new(&a, &stats)),
                    Box::new(TablePlan::new(&b, &stats)),
                );
                let right = exact_selects(&mut rng, "c", Box::new(TablePlan::new(&c, &stats)));
                let plan = ProductPlan::new(Box::new(ab), right);
                check_exact(&plan, &stats, &ctx);
            }
            _ => unreachable!(),
        }
    }
    assert!(
        exercised.iter().all(|&n| n > 0),
        "every grammar shape must be exercised: {exercised:?}"
    );
}

fn fixed_heap(id: u32, name: &str, rows: u64) -> TableStorage {
    // slot 25, spp 5 at page 128 -> blocks = ceil(rows / 5).
    let meta = TableMeta::new(TableId::new(id), name, rows, 24);
    TableStorage::populate(&meta, rows, 128, 0xC0_DE)
}

/// Counterexample: residue 0 lands in the final partial stride the
/// `rows / modulus` estimate drops. 100 rows, modulus 7: keys 0, 7, …,
/// 98 — 15 matches against an estimate of 14.
#[test]
fn pinned_counterexample_residue_zero_overshoots() {
    let h = fixed_heap(0, "a", 100);
    let stats = AccessStats::new();
    let plan = SelectPlan::new(
        Box::new(TablePlan::new(&h, &stats)),
        Predicate::KeyModEq {
            field: "a_key".into(),
            modulus: 7,
            residue: 0,
        },
    );
    assert_eq!(plan.records_output(), 14);
    assert_eq!(run_to_end(plan.open().as_mut()), 15);
    // Blocks stay exact: selection reads every page regardless.
    assert_eq!(stats.blocks(), plan.blocks_accessed());
}

/// Counterexample: `Lt` *outside* `ModEq`. The estimator caps the
/// filtered cardinality at the bound (min(20, 100/7) = 14) but the
/// surviving keys are sparse — only 6 and 13 fall below 20.
#[test]
fn pinned_counterexample_lt_over_modeq_diverges() {
    let h = fixed_heap(0, "a", 100);
    let stats = AccessStats::new();
    let plan = SelectPlan::new(
        Box::new(SelectPlan::new(
            Box::new(TablePlan::new(&h, &stats)),
            Predicate::KeyModEq {
                field: "a_key".into(),
                modulus: 7,
                residue: 6,
            },
        )),
        Predicate::KeyLt {
            field: "a_key".into(),
            bound: 20,
        },
    );
    assert_eq!(plan.records_output(), 14);
    assert_eq!(run_to_end(plan.open().as_mut()), 2);
    assert_eq!(stats.blocks(), plan.blocks_accessed());
}

/// Counterexample: the product block estimate `B₁ + R₁·B₂` amplifies a
/// left-side cardinality overshoot by `B₂`. Left: 17 rows, modulus 5,
/// residue 0 — estimate 3, actual 4 (keys 0, 5, 10, 15). Left spans 4
/// pages, right 2, so blocks: estimated 4 + 3·2 = 10, measured
/// 4 + 4·2 = 12; records: estimated 3·7 = 21, measured 4·7 = 28.
#[test]
fn pinned_counterexample_product_amplifies_left_overshoot() {
    let l = fixed_heap(0, "a", 17);
    let r = fixed_heap(1, "b", 7);
    let stats = AccessStats::new();
    let plan = ProductPlan::new(
        Box::new(SelectPlan::new(
            Box::new(TablePlan::new(&l, &stats)),
            Predicate::KeyModEq {
                field: "a_key".into(),
                modulus: 5,
                residue: 0,
            },
        )),
        Box::new(TablePlan::new(&r, &stats)),
    );
    assert_eq!(plan.blocks_accessed(), 10);
    assert_eq!(plan.records_output(), 21);
    assert_eq!(run_to_end(plan.open().as_mut()), 28);
    assert_eq!(stats.blocks(), 12);
}
