//! Fixed-size slotted pages of fixed-length records.
//!
//! A page is a flat byte buffer divided into equal slots by a
//! [`Layout`]: slot `i` starts at byte `i × slot_size`. Byte 0 of each
//! slot is a live flag (`0` = free, `1` = live); fields follow at the
//! layout's offsets. All accessors assert that the addressed bytes fall
//! inside the page, so the property suite can probe arbitrary layouts.

use crate::schema::Layout;

/// One fixed-size page of record slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Page {
    data: Box<[u8]>,
}

impl Page {
    /// Creates a zeroed page of `page_size` bytes (all slots free).
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is zero.
    #[must_use]
    pub fn new(page_size: usize) -> Self {
        assert!(page_size > 0, "page size must be positive");
        Page {
            data: vec![0u8; page_size].into_boxed_slice(),
        }
    }

    /// Page size in bytes.
    #[must_use]
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// Number of whole slots of `layout` that fit in a page of
    /// `page_size` bytes.
    #[must_use]
    pub fn slots_per_page(layout: &Layout, page_size: usize) -> usize {
        page_size / layout.slot_size()
    }

    fn slot_base(&self, layout: &Layout, slot: usize) -> usize {
        let base = slot * layout.slot_size();
        assert!(
            base + layout.slot_size() <= self.data.len(),
            "slot {slot} exceeds page bounds"
        );
        base
    }

    /// Whether the slot holds a live record.
    #[must_use]
    pub fn is_live(&self, layout: &Layout, slot: usize) -> bool {
        self.data[self.slot_base(layout, slot)] == 1
    }

    /// Marks the slot live or free. Freeing does not erase field bytes;
    /// a later insert into the slot overwrites them.
    pub fn set_live(&mut self, layout: &Layout, slot: usize, live: bool) {
        let base = self.slot_base(layout, slot);
        self.data[base] = u8::from(live);
    }

    fn field_range(&self, layout: &Layout, slot: usize, field: usize) -> (usize, usize) {
        let base = self.slot_base(layout, slot);
        let start = base + layout.offset(field);
        let width = layout.field_width(field);
        assert!(
            start + width <= self.data.len(),
            "field {field} of slot {slot} exceeds page bounds"
        );
        (start, width)
    }

    /// Writes a 64-bit integer field (little-endian).
    pub fn write_int(&mut self, layout: &Layout, slot: usize, field: usize, value: i64) {
        let (start, width) = self.field_range(layout, slot, field);
        assert_eq!(width, 8, "field {field} is not an integer field");
        self.data[start..start + 8].copy_from_slice(&value.to_le_bytes());
    }

    /// Reads a 64-bit integer field.
    #[must_use]
    pub fn read_int(&self, layout: &Layout, slot: usize, field: usize) -> i64 {
        let (start, width) = self.field_range(layout, slot, field);
        assert_eq!(width, 8, "field {field} is not an integer field");
        let mut buf = [0u8; 8];
        buf.copy_from_slice(&self.data[start..start + 8]);
        i64::from_le_bytes(buf)
    }

    /// Writes a byte field; `value` must not exceed the field width and is
    /// zero-padded to it.
    pub fn write_bytes(&mut self, layout: &Layout, slot: usize, field: usize, value: &[u8]) {
        let (start, width) = self.field_range(layout, slot, field);
        assert!(
            value.len() <= width,
            "value of {} bytes exceeds field width {width}",
            value.len()
        );
        self.data[start..start + value.len()].copy_from_slice(value);
        for b in &mut self.data[start + value.len()..start + width] {
            *b = 0;
        }
    }

    /// Reads a byte field at its full declared width.
    #[must_use]
    pub fn read_bytes(&self, layout: &Layout, slot: usize, field: usize) -> &[u8] {
        let (start, width) = self.field_range(layout, slot, field);
        &self.data[start..start + width]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn layout() -> Layout {
        let mut s = Schema::new();
        s.add_int("k");
        s.add_bytes("b", 4);
        Layout::new(s)
    }

    #[test]
    fn int_round_trip() {
        let l = layout();
        let mut p = Page::new(64);
        p.write_int(&l, 1, 0, -42);
        assert_eq!(p.read_int(&l, 1, 0), -42);
    }

    #[test]
    fn bytes_round_trip_zero_padded() {
        let l = layout();
        let mut p = Page::new(64);
        p.write_bytes(&l, 0, 1, &[0xAB, 0xCD, 0xEF, 0x01]);
        p.write_bytes(&l, 0, 1, &[0x7F]);
        assert_eq!(p.read_bytes(&l, 0, 1), &[0x7F, 0, 0, 0]);
    }

    #[test]
    fn live_flag_toggles() {
        let l = layout();
        let mut p = Page::new(64);
        assert!(!p.is_live(&l, 2));
        p.set_live(&l, 2, true);
        assert!(p.is_live(&l, 2));
        p.set_live(&l, 2, false);
        assert!(!p.is_live(&l, 2));
    }

    #[test]
    fn slots_per_page_floors() {
        let l = layout(); // slot = 1 + 8 + 4 = 13
        assert_eq!(Page::slots_per_page(&l, 64), 4);
        assert_eq!(Page::slots_per_page(&l, 13), 1);
        assert_eq!(Page::slots_per_page(&l, 12), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds page bounds")]
    fn out_of_bounds_slot_rejected() {
        let l = layout();
        let p = Page::new(13);
        let _ = p.is_live(&l, 1);
    }
}
