//! Plan nodes: pre-execution estimates mirroring the executable scans.
//!
//! Each [`Plan`] reports `blocks_accessed()` and `records_output()` as
//! deterministic functions of the layout *before* opening a scan — the
//! classic SimpleDB planning interface. For densely packed sequentially
//! keyed heaps (what [`crate::heap::TableStorage::populate`] builds) and
//! the exact predicate shapes documented on [`Predicate`], the estimates
//! agree bit-exactly with the [`crate::stats::AccessStats`] counts the
//! scans record; the differential suite asserts exactly that.

use crate::heap::TableStorage;
use crate::scan::{Predicate, ProductScan, ProjectScan, Scan, SelectScan, TableScan};
use crate::schema::Schema;
use crate::stats::AccessStats;

/// A query-plan node that can estimate its cost and open an executor.
pub trait Plan {
    /// Estimated number of block (page) accesses a full execution incurs.
    fn blocks_accessed(&self) -> u64;
    /// Estimated number of records the node outputs.
    fn records_output(&self) -> u64;
    /// The schema of the node's output records.
    fn schema(&self) -> &Schema;
    /// Opens an executable scan over the node's output.
    fn open(&self) -> Box<dyn Scan + '_>;
}

/// Leaf plan: full sequential scan of one table heap.
pub struct TablePlan<'a> {
    table: &'a TableStorage,
    stats: &'a AccessStats,
}

impl<'a> TablePlan<'a> {
    /// Creates a table plan counting accesses into `stats`.
    #[must_use]
    pub fn new(table: &'a TableStorage, stats: &'a AccessStats) -> Self {
        TablePlan { table, stats }
    }
}

impl Plan for TablePlan<'_> {
    fn blocks_accessed(&self) -> u64 {
        self.table.blocks()
    }

    fn records_output(&self) -> u64 {
        self.table.live_records()
    }

    fn schema(&self) -> &Schema {
        self.table.layout().schema()
    }

    fn open(&self) -> Box<dyn Scan + '_> {
        Box::new(TableScan::new(self.table, self.stats))
    }
}

/// Selection plan: filters its input by a [`Predicate`].
pub struct SelectPlan<'a> {
    inner: Box<dyn Plan + 'a>,
    predicate: Predicate,
}

impl<'a> SelectPlan<'a> {
    /// Creates a selection over `inner`.
    #[must_use]
    pub fn new(inner: Box<dyn Plan + 'a>, predicate: Predicate) -> Self {
        SelectPlan { inner, predicate }
    }
}

impl Plan for SelectPlan<'_> {
    fn blocks_accessed(&self) -> u64 {
        // Selection reads everything its input reads.
        self.inner.blocks_accessed()
    }

    fn records_output(&self) -> u64 {
        self.predicate.estimate_output(self.inner.records_output())
    }

    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn open(&self) -> Box<dyn Scan + '_> {
        Box::new(SelectScan::new(self.inner.open(), self.predicate.clone()))
    }
}

/// Projection plan: restricts the output schema to named fields.
pub struct ProjectPlan<'a> {
    inner: Box<dyn Plan + 'a>,
    schema: Schema,
    fields: Vec<String>,
}

impl<'a> ProjectPlan<'a> {
    /// Creates a projection keeping only `fields`.
    ///
    /// # Panics
    ///
    /// Panics if any field is absent from the inner schema.
    #[must_use]
    pub fn new(inner: Box<dyn Plan + 'a>, fields: Vec<String>) -> Self {
        let mut schema = Schema::new();
        for f in &fields {
            let idx = inner
                .schema()
                .field_index(f)
                .unwrap_or_else(|| panic!("projection of unknown field {f:?}"));
            let (name, ty) = &inner.schema().fields()[idx];
            match ty {
                crate::schema::FieldType::Int => schema.add_int(name.clone()),
                crate::schema::FieldType::Bytes(n) => schema.add_bytes(name.clone(), *n),
            }
        }
        ProjectPlan {
            inner,
            schema,
            fields,
        }
    }
}

impl Plan for ProjectPlan<'_> {
    fn blocks_accessed(&self) -> u64 {
        self.inner.blocks_accessed()
    }

    fn records_output(&self) -> u64 {
        self.inner.records_output()
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&self) -> Box<dyn Scan + '_> {
        Box::new(ProjectScan::new(self.inner.open(), self.fields.clone()))
    }
}

/// Cross-product plan: the textbook `B₁ + R₁·B₂` block estimate.
pub struct ProductPlan<'a> {
    left: Box<dyn Plan + 'a>,
    right: Box<dyn Plan + 'a>,
    schema: Schema,
}

impl<'a> ProductPlan<'a> {
    /// Creates a product of two plans.
    ///
    /// # Panics
    ///
    /// Panics if the operand schemas share a field name.
    #[must_use]
    pub fn new(left: Box<dyn Plan + 'a>, right: Box<dyn Plan + 'a>) -> Self {
        let mut schema = Schema::new();
        schema.add_all(left.schema());
        schema.add_all(right.schema());
        ProductPlan {
            left,
            right,
            schema,
        }
    }
}

impl Plan for ProductPlan<'_> {
    fn blocks_accessed(&self) -> u64 {
        // Left read once; right re-read per estimated left output record.
        self.left.blocks_accessed().saturating_add(
            self.left
                .records_output()
                .saturating_mul(self.right.blocks_accessed()),
        )
    }

    fn records_output(&self) -> u64 {
        self.left
            .records_output()
            .saturating_mul(self.right.records_output())
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&self) -> Box<dyn Scan + '_> {
        Box::new(ProductScan::new(self.left.open(), self.right.open()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::run_to_end;
    use ivdss_catalog::ids::TableId;
    use ivdss_catalog::table::TableMeta;

    fn heap(id: u32, name: &str, rows: u64) -> TableStorage {
        let meta = TableMeta::new(TableId::new(id), name, rows, 24);
        TableStorage::populate(&meta, rows, 128, 5)
    }

    #[test]
    fn table_plan_estimates_match_execution() {
        let h = heap(0, "t", 23);
        let stats = AccessStats::new();
        let plan = TablePlan::new(&h, &stats);
        let out = run_to_end(plan.open().as_mut());
        assert_eq!(out, plan.records_output());
        assert_eq!(stats.blocks(), plan.blocks_accessed());
        assert_eq!(stats.records(), plan.records_output());
    }

    #[test]
    fn select_plan_estimate_exact_for_last_residue() {
        let h = heap(0, "t", 100);
        let stats = AccessStats::new();
        let plan = SelectPlan::new(
            Box::new(TablePlan::new(&h, &stats)),
            Predicate::KeyModEq {
                field: "t_key".into(),
                modulus: 7,
                residue: 6,
            },
        );
        let out = run_to_end(plan.open().as_mut());
        assert_eq!(out, plan.records_output());
        assert_eq!(stats.blocks(), plan.blocks_accessed());
    }

    #[test]
    fn product_plan_textbook_cost() {
        let l = heap(0, "l", 10);
        let r = heap(1, "r", 8);
        let stats = AccessStats::new();
        let plan = ProductPlan::new(
            Box::new(TablePlan::new(&l, &stats)),
            Box::new(TablePlan::new(&r, &stats)),
        );
        assert_eq!(plan.records_output(), 80);
        let out = run_to_end(plan.open().as_mut());
        assert_eq!(out, 80);
        assert_eq!(stats.blocks(), plan.blocks_accessed());
        assert!(plan.schema().has_field("l_key"));
        assert!(plan.schema().has_field("r_key"));
    }

    #[test]
    fn project_plan_narrows_schema_only() {
        let h = heap(0, "t", 12);
        let stats = AccessStats::new();
        let plan = ProjectPlan::new(
            Box::new(TablePlan::new(&h, &stats)),
            vec!["t_key".to_string()],
        );
        assert_eq!(plan.schema().len(), 1);
        let out = run_to_end(plan.open().as_mut());
        assert_eq!(out, plan.records_output());
        assert_eq!(stats.blocks(), plan.blocks_accessed());
    }

    #[test]
    #[should_panic(expected = "unknown field")]
    fn projecting_missing_field_rejected() {
        let h = heap(0, "t", 1);
        let stats = AccessStats::new();
        let _ = ProjectPlan::new(
            Box::new(TablePlan::new(&h, &stats)),
            vec!["nope".to_string()],
        );
    }
}
