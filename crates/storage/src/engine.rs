//! The storage engine: materialized catalog tables + measured scans.
//!
//! [`StorageEngine::build`] materializes one [`TableStorage`] heap per
//! catalog table (capped at [`StorageConfig::row_cap`] rows so synthetic
//! catalogs with multi-million-row tables stay cheap) and executes scans
//! under a [`DeviceProfile`] that converts the deterministic access
//! counts into deterministic "measured" latencies. Every scan executed
//! through the serving path records a `(bytes, seconds)` sample into the
//! engine's recorder, feeding [`ivdss_costmodel::calibrate::fit_local`].

use std::collections::BTreeSet;
use std::sync::Mutex;

use ivdss_catalog::catalog::Catalog;
use ivdss_catalog::ids::TableId;
use ivdss_costmodel::calibrate::{fit_local, CalibrationSample, LocalFit};
use ivdss_costmodel::model::{CostModel, PlanCost};
use ivdss_costmodel::query::QuerySpec;
use ivdss_simkernel::rng::SeedFactory;
use ivdss_simkernel::time::SimDuration;

use crate::heap::TableStorage;
use crate::plan::{Plan, SelectPlan, TablePlan};
use crate::scan::{run_to_end, Predicate};
use crate::stats::AccessStats;

/// Storage build parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageConfig {
    /// Page size in bytes.
    pub page_size: usize,
    /// Maximum rows materialized per table (catalog row counts above the
    /// cap are truncated; [`StorageEngine::is_full_fidelity`] reports
    /// whether any table was capped).
    pub row_cap: u64,
    /// Root seed for record payload generation.
    pub seed: u64,
}

impl Default for StorageConfig {
    fn default() -> Self {
        StorageConfig {
            page_size: 4096,
            row_cap: 4096,
            seed: 0x57_0A_4E,
        }
    }
}

/// Deterministic device timing: converts access counts into latency.
///
/// Measured latency is `per_scan_overhead + blocks × seconds_per_block +
/// records × seconds_per_record` — a pure function of the counts, so
/// calibration coefficients fitted from it are bit-reproducible (wall
/// clock would not be). Units follow the cost model's time unit
/// (minutes at the default rates).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceProfile {
    /// Latency charged per block (page) access.
    pub seconds_per_block: f64,
    /// Latency charged per record access.
    pub seconds_per_record: f64,
    /// Fixed setup latency charged once per scan.
    pub per_scan_overhead: f64,
}

impl Default for DeviceProfile {
    fn default() -> Self {
        DeviceProfile {
            seconds_per_block: 2.0e-4,
            seconds_per_record: 1.0e-6,
            per_scan_overhead: 5.0e-4,
        }
    }
}

impl DeviceProfile {
    /// Latency of a scan with the given access counts.
    #[must_use]
    pub fn seconds(&self, blocks: u64, records: u64) -> f64 {
        self.per_scan_overhead
            + self.seconds_per_block * blocks as f64
            + self.seconds_per_record * records as f64
    }
}

/// Result of one executed scan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScanMeasurement {
    /// The scanned table.
    pub table: TableId,
    /// Blocks actually accessed.
    pub blocks: u64,
    /// Records actually accessed.
    pub records: u64,
    /// Catalog bytes the stored rows span (`stored_rows × row_bytes`).
    pub bytes: u64,
    /// Measured latency under the engine's [`DeviceProfile`].
    pub seconds: f64,
}

/// Materialized storage for every table of one catalog.
#[derive(Debug)]
pub struct StorageEngine {
    config: StorageConfig,
    device: DeviceProfile,
    tables: Vec<TableStorage>,
    model_bytes: Vec<u64>,
    capped: bool,
    recorder: Mutex<Vec<CalibrationSample>>,
}

impl StorageEngine {
    /// Materializes every catalog table with deterministic seeded data.
    ///
    /// # Panics
    ///
    /// Panics if a table's row width does not fit in a page.
    #[must_use]
    pub fn build(catalog: &Catalog, config: &StorageConfig) -> Self {
        let seeds = SeedFactory::new(config.seed);
        let mut tables = Vec::new();
        let mut model_bytes = Vec::new();
        let mut capped = false;
        for id in catalog.table_ids() {
            let meta = catalog.table(id);
            let rows = meta.rows().min(config.row_cap);
            capped |= rows < meta.rows();
            let seed = seeds.seed_for_indexed("storage:table", id.index());
            tables.push(TableStorage::populate(meta, rows, config.page_size, seed));
            model_bytes.push(rows.saturating_mul(u64::from(meta.row_bytes())));
        }
        StorageEngine {
            config: *config,
            device: DeviceProfile::default(),
            tables,
            model_bytes,
            capped,
            recorder: Mutex::new(Vec::new()),
        }
    }

    /// Replaces the device timing profile.
    #[must_use]
    pub fn with_device(mut self, device: DeviceProfile) -> Self {
        self.device = device;
        self
    }

    /// The build configuration.
    #[must_use]
    pub fn config(&self) -> StorageConfig {
        self.config
    }

    /// The device timing profile.
    #[must_use]
    pub fn device(&self) -> DeviceProfile {
        self.device
    }

    /// Whether every table holds its full catalog row count (no table hit
    /// the row cap).
    #[must_use]
    pub fn is_full_fidelity(&self) -> bool {
        !self.capped
    }

    /// Whether a heap was materialized for this table (false for tables
    /// added to the catalog after the storage build, e.g. by a
    /// schema-growth scenario).
    #[must_use]
    pub fn has_table(&self, table: TableId) -> bool {
        table.index() < self.tables.len()
    }

    /// The materialized heap for a table.
    ///
    /// # Panics
    ///
    /// Panics if the table is unknown.
    #[must_use]
    pub fn table(&self, table: TableId) -> &TableStorage {
        &self.tables[table.index()]
    }

    /// Catalog bytes the stored rows of a table span.
    #[must_use]
    pub fn stored_bytes(&self, table: TableId) -> u64 {
        self.model_bytes[table.index()]
    }

    /// Pre-execution full-scan estimates: `(blocks, records)`.
    #[must_use]
    pub fn scan_estimates(&self, table: TableId) -> (u64, u64) {
        let stats = AccessStats::new();
        let plan = TablePlan::new(self.table(table), &stats);
        (plan.blocks_accessed(), plan.records_output())
    }

    /// Executes a full table scan and measures it.
    #[must_use]
    pub fn execute_table_scan(&self, table: TableId) -> ScanMeasurement {
        let stats = AccessStats::new();
        let plan = TablePlan::new(self.table(table), &stats);
        let _ = run_to_end(plan.open().as_mut());
        self.measure(table, &stats)
    }

    /// Executes a predicated scan; returns the measurement and the number
    /// of records the selection output.
    #[must_use]
    pub fn execute_select(&self, table: TableId, predicate: Predicate) -> (ScanMeasurement, u64) {
        let stats = AccessStats::new();
        let plan = SelectPlan::new(
            Box::new(TablePlan::new(self.table(table), &stats)),
            predicate,
        );
        let output = run_to_end(plan.open().as_mut());
        (self.measure(table, &stats), output)
    }

    fn measure(&self, table: TableId, stats: &AccessStats) -> ScanMeasurement {
        ScanMeasurement {
            table,
            blocks: stats.blocks(),
            records: stats.records(),
            bytes: self.stored_bytes(table),
            seconds: self.device.seconds(stats.blocks(), stats.records()),
        }
    }

    /// Appends one calibration sample to the engine's recorder.
    ///
    /// # Panics
    ///
    /// Panics if the recorder mutex is poisoned.
    pub fn record_sample(&self, bytes: f64, seconds: f64) {
        self.recorder
            .lock()
            .expect("storage recorder poisoned")
            .push(CalibrationSample { bytes, seconds });
    }

    /// Snapshot of all recorded samples, in recording order.
    ///
    /// # Panics
    ///
    /// Panics if the recorder mutex is poisoned.
    #[must_use]
    pub fn samples(&self) -> Vec<CalibrationSample> {
        self.recorder
            .lock()
            .expect("storage recorder poisoned")
            .clone()
    }

    /// Clears the sample recorder.
    ///
    /// # Panics
    ///
    /// Panics if the recorder mutex is poisoned.
    pub fn clear_samples(&self) {
        self.recorder
            .lock()
            .expect("storage recorder poisoned")
            .clear();
    }

    /// Fits local-scan coefficients from the recorded samples.
    #[must_use]
    pub fn fit(&self) -> Option<LocalFit> {
        fit_local(&self.samples())
    }
}

/// A cost model whose local-processing component is an *executed*
/// measurement rather than an estimate.
///
/// Used by `ServeEngine`'s storage-backed mode: after real scans run for
/// the chosen plan's local tables, the delivery evaluation wraps the live
/// model so the delivered IV reflects the measured local latency while
/// remote and transmission components stay modeled.
#[derive(Clone, Copy)]
pub struct MeasuredLocalCost<'a> {
    inner: &'a dyn CostModel,
    measured_local: SimDuration,
}

impl<'a> MeasuredLocalCost<'a> {
    /// Wraps `inner`, overriding local processing with `measured_local`.
    #[must_use]
    pub fn new(inner: &'a dyn CostModel, measured_local: SimDuration) -> Self {
        MeasuredLocalCost {
            inner,
            measured_local,
        }
    }
}

impl CostModel for MeasuredLocalCost<'_> {
    fn plan_cost(
        &self,
        catalog: &Catalog,
        query: &QuerySpec,
        remote: &BTreeSet<TableId>,
    ) -> PlanCost {
        let mut cost = self.inner.plan_cost(catalog, query, remote);
        cost.local_processing = self.measured_local;
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivdss_catalog::tpch::{tpch_catalog, TpchConfig};
    use ivdss_costmodel::model::AnalyticCostModel;
    use ivdss_costmodel::query::{QueryId, QuerySpec};

    fn tiny_catalog() -> Catalog {
        tpch_catalog(&TpchConfig {
            scale_factor: 0.0005,
            ..TpchConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn build_is_deterministic_and_full_fidelity_when_under_cap() {
        let cat = tiny_catalog();
        let cfg = StorageConfig::default();
        let a = StorageEngine::build(&cat, &cfg);
        let b = StorageEngine::build(&cat, &cfg);
        assert!(a.is_full_fidelity());
        for t in cat.table_ids() {
            let ma = a.execute_table_scan(t);
            let mb = b.execute_table_scan(t);
            assert_eq!(ma, mb);
            assert_eq!(ma.records, a.table(t).live_records());
        }
    }

    #[test]
    fn row_cap_truncates_and_reports() {
        let cat = tiny_catalog();
        let cfg = StorageConfig {
            row_cap: 10,
            ..StorageConfig::default()
        };
        let s = StorageEngine::build(&cat, &cfg);
        assert!(!s.is_full_fidelity());
        for t in cat.table_ids() {
            assert!(s.table(t).live_records() <= 10);
        }
    }

    #[test]
    fn estimates_match_full_scan_measurement() {
        let cat = tiny_catalog();
        let s = StorageEngine::build(&cat, &StorageConfig::default());
        for t in cat.table_ids() {
            let (blocks, records) = s.scan_estimates(t);
            let m = s.execute_table_scan(t);
            assert_eq!((m.blocks, m.records), (blocks, records));
            assert!(m.seconds > 0.0);
        }
    }

    #[test]
    fn recorder_feeds_a_reproducible_fit() {
        let cat = tiny_catalog();
        let s = StorageEngine::build(&cat, &StorageConfig::default());
        for t in cat.table_ids() {
            let m = s.execute_table_scan(t);
            s.record_sample(m.bytes as f64, m.seconds);
        }
        let a = s.fit().unwrap();
        s.clear_samples();
        for t in cat.table_ids() {
            let m = s.execute_table_scan(t);
            s.record_sample(m.bytes as f64, m.seconds);
        }
        let b = s.fit().unwrap();
        assert_eq!(a.overhead.to_bits(), b.overhead.to_bits());
        assert_eq!(a.secs_per_byte.to_bits(), b.secs_per_byte.to_bits());
    }

    #[test]
    fn measured_local_overrides_only_local_component() {
        let cat = tiny_catalog();
        let base = AnalyticCostModel::paper_scale();
        let q = QuerySpec::new(QueryId::new(0), cat.table_ids()[..2].to_vec());
        let remote: BTreeSet<TableId> = [cat.table_ids()[1]].into_iter().collect();
        let measured = SimDuration::new(0.125);
        let wrapped = MeasuredLocalCost::new(&base, measured);
        let got = wrapped.plan_cost(&cat, &q, &remote);
        let want = base.plan_cost(&cat, &q, &remote);
        assert_eq!(got.local_processing, measured);
        assert_eq!(got.remote_processing, want.remote_processing);
        assert_eq!(got.transmission, want.transmission);
    }
}
