//! Field schemas and slotted-record layouts.
//!
//! A [`Schema`] names the fields of a record; a [`Layout`] fixes their
//! physical offsets inside a fixed-length slot. Catalog tables carry only
//! `rows × row_bytes` metadata, so [`table_schema`] maps a
//! [`TableMeta`] onto a canonical physical shape: one 8-byte integer key
//! (`<name>_key`, holding `0..rows` after population) plus a fixed-length
//! byte field padding the slot to the catalog's declared row width. The
//! mapping is deterministic, so layout-derived plan estimates are too.

use ivdss_catalog::table::TableMeta;

/// Width in bytes of an integer field.
pub const INT_BYTES: usize = 8;

/// The type of one record field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FieldType {
    /// A 64-bit signed integer, stored little-endian in 8 bytes.
    Int,
    /// A fixed-length byte string of the given width.
    Bytes(u16),
}

impl FieldType {
    /// Storage width of the field in bytes.
    #[must_use]
    pub fn width(self) -> usize {
        match self {
            FieldType::Int => INT_BYTES,
            FieldType::Bytes(n) => n as usize,
        }
    }
}

/// An ordered list of named, typed fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<(String, FieldType)>,
}

impl Schema {
    /// Creates an empty schema.
    #[must_use]
    pub fn new() -> Self {
        Schema { fields: Vec::new() }
    }

    /// Appends an integer field.
    ///
    /// # Panics
    ///
    /// Panics if the name is empty or already present.
    pub fn add_int(&mut self, name: impl Into<String>) {
        self.add(name.into(), FieldType::Int);
    }

    /// Appends a fixed-length byte field.
    ///
    /// # Panics
    ///
    /// Panics if the name is empty or already present, or `len` is zero.
    pub fn add_bytes(&mut self, name: impl Into<String>, len: u16) {
        assert!(len > 0, "byte field must have positive width");
        self.add(name.into(), FieldType::Bytes(len));
    }

    fn add(&mut self, name: String, ty: FieldType) {
        assert!(!name.is_empty(), "field name must not be empty");
        assert!(
            !self.has_field(&name),
            "duplicate field name {name:?} in schema"
        );
        self.fields.push((name, ty));
    }

    /// Appends every field of `other` (names must stay unique).
    pub fn add_all(&mut self, other: &Schema) {
        for (name, ty) in &other.fields {
            self.add(name.clone(), *ty);
        }
    }

    /// Whether a field with this name exists.
    #[must_use]
    pub fn has_field(&self, name: &str) -> bool {
        self.fields.iter().any(|(n, _)| n == name)
    }

    /// Index of the named field, if present.
    #[must_use]
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|(n, _)| n == name)
    }

    /// The fields in declaration order.
    #[must_use]
    pub fn fields(&self) -> &[(String, FieldType)] {
        &self.fields
    }

    /// Number of fields.
    #[must_use]
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the schema has no fields.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }
}

impl Default for Schema {
    fn default() -> Self {
        Schema::new()
    }
}

/// Physical record layout: one leading live-flag byte, then every field at
/// a fixed offset. `slot_size` is the full slot width including the flag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    schema: Schema,
    offsets: Vec<usize>,
    slot_size: usize,
}

impl Layout {
    /// Computes offsets for `schema`, packing fields in declaration order
    /// after the 1-byte live flag.
    ///
    /// # Panics
    ///
    /// Panics if the schema is empty.
    #[must_use]
    pub fn new(schema: Schema) -> Self {
        assert!(!schema.is_empty(), "layout requires at least one field");
        let mut offsets = Vec::with_capacity(schema.len());
        let mut pos = 1; // live flag occupies byte 0
        for (_, ty) in schema.fields() {
            offsets.push(pos);
            pos += ty.width();
        }
        Layout {
            schema,
            offsets,
            slot_size: pos,
        }
    }

    /// The schema this layout realizes.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Byte offset of field `idx` within a slot.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn offset(&self, idx: usize) -> usize {
        self.offsets[idx]
    }

    /// Storage width of field `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn field_width(&self, idx: usize) -> usize {
        self.schema.fields()[idx].1.width()
    }

    /// Full slot width in bytes (live flag + all fields).
    #[must_use]
    pub fn slot_size(&self) -> usize {
        self.slot_size
    }
}

/// Name of the integer key field in the canonical table schema.
#[must_use]
pub fn key_field(meta: &TableMeta) -> String {
    format!("{}_key", meta.name())
}

/// Canonical schema for a catalog table: `<name>_key` (Int) plus, when the
/// declared row width exceeds 8 bytes, `<name>_pad` (Bytes) sized so the
/// fields together occupy exactly `row_bytes`.
#[must_use]
pub fn table_schema(meta: &TableMeta) -> Schema {
    let mut schema = Schema::new();
    schema.add_int(key_field(meta));
    let row_bytes = meta.row_bytes() as usize;
    if row_bytes > INT_BYTES {
        let pad = (row_bytes - INT_BYTES).min(u16::MAX as usize) as u16;
        schema.add_bytes(format!("{}_pad", meta.name()), pad);
    }
    schema
}

/// [`Layout`] of the canonical table schema.
#[must_use]
pub fn table_layout(meta: &TableMeta) -> Layout {
    Layout::new(table_schema(meta))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivdss_catalog::ids::TableId;

    #[test]
    fn layout_offsets_are_packed() {
        let mut s = Schema::new();
        s.add_int("a");
        s.add_bytes("b", 5);
        s.add_int("c");
        let l = Layout::new(s);
        assert_eq!(l.offset(0), 1);
        assert_eq!(l.offset(1), 9);
        assert_eq!(l.offset(2), 14);
        assert_eq!(l.slot_size(), 22);
        assert_eq!(l.field_width(1), 5);
    }

    #[test]
    fn table_schema_matches_row_bytes() {
        let meta = TableMeta::new(TableId::new(3), "orders", 100, 120);
        let l = table_layout(&meta);
        // flag + key(8) + pad(112) = 121 = 1 + row_bytes.
        assert_eq!(l.slot_size(), 1 + 120);
        assert!(l.schema().has_field("orders_key"));
        assert!(l.schema().has_field("orders_pad"));
    }

    #[test]
    fn narrow_rows_get_key_only() {
        let meta = TableMeta::new(TableId::new(0), "tiny", 10, 4);
        let s = table_schema(&meta);
        assert_eq!(s.len(), 1);
        assert_eq!(Layout::new(s).slot_size(), 1 + INT_BYTES);
    }

    #[test]
    #[should_panic(expected = "duplicate field")]
    fn duplicate_field_rejected() {
        let mut s = Schema::new();
        s.add_int("x");
        s.add_int("x");
    }

    #[test]
    fn add_all_merges() {
        let mut a = Schema::new();
        a.add_int("x");
        let mut b = Schema::new();
        b.add_bytes("y", 3);
        a.add_all(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.field_index("y"), Some(1));
    }
}
