//! Executable scans that count every block and record access.
//!
//! Scans mirror the [`crate::plan`] tree: a [`TableScan`] walks a
//! [`TableStorage`] heap page by page, [`SelectScan`] filters,
//! [`ProjectScan`] restricts the visible fields, and [`ProductScan`]
//! forms the cross product by re-scanning its right input once per left
//! record. Every page entered and every live record yielded by a table
//! scan is counted into the execution's [`AccessStats`].
//!
//! `before_first` only resets cursors — no access is counted until
//! iteration actually touches a page. This makes [`ProductScan`] lazily
//! exact: an empty left input never opens the right side, so measured
//! blocks are `B₁` rather than the planner's `B₁ + R₁·B₂` upper bound.

use crate::heap::{RecordId, TableStorage};
use crate::stats::AccessStats;

/// A positioned iterator over records.
pub trait Scan {
    /// Repositions before the first record (no access is counted).
    fn before_first(&mut self);
    /// Advances to the next record; returns false when exhausted.
    fn next(&mut self) -> bool;
    /// Reads an integer field of the current record.
    ///
    /// # Panics
    ///
    /// Panics if the scan is not positioned on a record or the field is
    /// unknown (or hidden by a projection).
    fn get_int(&self, field: &str) -> i64;
    /// Whether the scan exposes this field.
    fn has_field(&self, field: &str) -> bool;
}

/// Drives a scan from the start to exhaustion, returning the number of
/// records it yields.
pub fn run_to_end(scan: &mut dyn Scan) -> u64 {
    scan.before_first();
    let mut n = 0;
    while scan.next() {
        n += 1;
    }
    n
}

/// Sequential scan over one table's heap.
pub struct TableScan<'a> {
    table: &'a TableStorage,
    stats: &'a AccessStats,
    page: Option<usize>,
    slot: usize,
    current: Option<RecordId>,
}

impl<'a> TableScan<'a> {
    /// Creates a scan positioned before the first record.
    #[must_use]
    pub fn new(table: &'a TableStorage, stats: &'a AccessStats) -> Self {
        TableScan {
            table,
            stats,
            page: None,
            slot: 0,
            current: None,
        }
    }
}

impl Scan for TableScan<'_> {
    fn before_first(&mut self) {
        self.page = None;
        self.slot = 0;
        self.current = None;
    }

    fn next(&mut self) -> bool {
        loop {
            match self.page {
                None => {
                    if self.table.blocks() == 0 {
                        return false;
                    }
                    self.page = Some(0);
                    self.slot = 0;
                    self.stats.count_block();
                }
                Some(p) => {
                    while self.slot < self.table.slots_per_page() {
                        let rid = RecordId {
                            page: p,
                            slot: self.slot,
                        };
                        self.slot += 1;
                        if self.table.is_live(rid) {
                            self.current = Some(rid);
                            self.stats.count_record();
                            return true;
                        }
                    }
                    let next = p + 1;
                    if next as u64 >= self.table.blocks() {
                        self.current = None;
                        return false;
                    }
                    self.page = Some(next);
                    self.slot = 0;
                    self.stats.count_block();
                }
            }
        }
    }

    fn get_int(&self, field: &str) -> i64 {
        let rid = self.current.expect("table scan not positioned on a record");
        let idx = self
            .table
            .layout()
            .schema()
            .field_index(field)
            .unwrap_or_else(|| panic!("unknown field {field:?}"));
        self.table.get_int(rid, idx)
    }

    fn has_field(&self, field: &str) -> bool {
        self.table.layout().schema().has_field(field)
    }
}

/// A selection predicate over a single integer field.
///
/// The variants are chosen so output counts are *computable from the
/// layout* for sequentially keyed tables: `KeyLt` is always exact, and
/// `KeyModEq` with `residue = modulus − 1` is exact (the coarse
/// `rows / modulus` optimizer estimate misses at most the final partial
/// stride, which residue `modulus − 1` never lands in).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// Matches every record.
    True,
    /// `field % modulus == residue`.
    KeyModEq {
        /// The integer field to test.
        field: String,
        /// Stride of the residue class; must be positive.
        modulus: u64,
        /// Residue selected from each stride.
        residue: u64,
    },
    /// `field < bound` (fields are interpreted as unsigned keys).
    KeyLt {
        /// The integer field to test.
        field: String,
        /// Exclusive upper bound.
        bound: u64,
    },
}

impl Predicate {
    /// Evaluates the predicate on the scan's current record.
    #[must_use]
    pub fn matches(&self, scan: &dyn Scan) -> bool {
        match self {
            Predicate::True => true,
            Predicate::KeyModEq {
                field,
                modulus,
                residue,
            } => {
                assert!(*modulus > 0, "modulus must be positive");
                (scan.get_int(field) as u64) % modulus == *residue
            }
            Predicate::KeyLt { field, bound } => (scan.get_int(field) as u64) < *bound,
        }
    }

    /// The optimizer's output estimate for `input` incoming records.
    #[must_use]
    pub fn estimate_output(&self, input: u64) -> u64 {
        match self {
            Predicate::True => input,
            Predicate::KeyModEq { modulus, .. } => {
                assert!(*modulus > 0, "modulus must be positive");
                input / modulus
            }
            Predicate::KeyLt { bound, .. } => input.min(*bound),
        }
    }
}

/// Filters an inner scan by a [`Predicate`].
pub struct SelectScan<'a> {
    inner: Box<dyn Scan + 'a>,
    predicate: Predicate,
}

impl<'a> SelectScan<'a> {
    /// Creates a filtering scan.
    #[must_use]
    pub fn new(inner: Box<dyn Scan + 'a>, predicate: Predicate) -> Self {
        SelectScan { inner, predicate }
    }
}

impl Scan for SelectScan<'_> {
    fn before_first(&mut self) {
        self.inner.before_first();
    }

    fn next(&mut self) -> bool {
        while self.inner.next() {
            if self.predicate.matches(self.inner.as_ref()) {
                return true;
            }
        }
        false
    }

    fn get_int(&self, field: &str) -> i64 {
        self.inner.get_int(field)
    }

    fn has_field(&self, field: &str) -> bool {
        self.inner.has_field(field)
    }
}

/// Restricts the fields visible through an inner scan.
pub struct ProjectScan<'a> {
    inner: Box<dyn Scan + 'a>,
    fields: Vec<String>,
}

impl<'a> ProjectScan<'a> {
    /// Creates a projecting scan.
    #[must_use]
    pub fn new(inner: Box<dyn Scan + 'a>, fields: Vec<String>) -> Self {
        ProjectScan { inner, fields }
    }
}

impl Scan for ProjectScan<'_> {
    fn before_first(&mut self) {
        self.inner.before_first();
    }

    fn next(&mut self) -> bool {
        self.inner.next()
    }

    fn get_int(&self, field: &str) -> i64 {
        assert!(
            self.has_field(field),
            "field {field:?} hidden by projection"
        );
        self.inner.get_int(field)
    }

    fn has_field(&self, field: &str) -> bool {
        self.fields.iter().any(|f| f == field)
    }
}

/// Cross product: for every left record, re-scans the right input.
pub struct ProductScan<'a> {
    left: Box<dyn Scan + 'a>,
    right: Box<dyn Scan + 'a>,
    left_valid: bool,
}

impl<'a> ProductScan<'a> {
    /// Creates a product scan positioned before the first pair.
    #[must_use]
    pub fn new(left: Box<dyn Scan + 'a>, right: Box<dyn Scan + 'a>) -> Self {
        ProductScan {
            left,
            right,
            left_valid: false,
        }
    }
}

impl Scan for ProductScan<'_> {
    fn before_first(&mut self) {
        self.left.before_first();
        self.right.before_first();
        self.left_valid = false;
    }

    fn next(&mut self) -> bool {
        if !self.left_valid {
            if !self.left.next() {
                return false;
            }
            self.left_valid = true;
        }
        loop {
            if self.right.next() {
                return true;
            }
            if !self.left.next() {
                return false;
            }
            self.right.before_first();
        }
    }

    fn get_int(&self, field: &str) -> i64 {
        if self.left.has_field(field) {
            self.left.get_int(field)
        } else {
            self.right.get_int(field)
        }
    }

    fn has_field(&self, field: &str) -> bool {
        self.left.has_field(field) || self.right.has_field(field)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivdss_catalog::ids::TableId;
    use ivdss_catalog::table::TableMeta;

    fn heap(name: &str, rows: u64) -> TableStorage {
        let meta = TableMeta::new(TableId::new(0), name, rows, 24);
        TableStorage::populate(&meta, rows, 128, 9)
    }

    #[test]
    fn table_scan_counts_every_block_and_record() {
        let h = heap("t", 20); // slot 25, spp 5 -> 4 pages
        let stats = AccessStats::new();
        let mut scan = TableScan::new(&h, &stats);
        assert_eq!(run_to_end(&mut scan), 20);
        assert_eq!(stats.blocks(), h.blocks());
        assert_eq!(stats.records(), 20);
    }

    #[test]
    fn empty_table_touches_no_blocks() {
        let h = heap("t", 0);
        let stats = AccessStats::new();
        let mut scan = TableScan::new(&h, &stats);
        assert_eq!(run_to_end(&mut scan), 0);
        assert_eq!(stats.blocks(), 0);
    }

    #[test]
    fn select_mod_residue_last_is_exact() {
        let h = heap("t", 17);
        let stats = AccessStats::new();
        let pred = Predicate::KeyModEq {
            field: "t_key".into(),
            modulus: 5,
            residue: 4,
        };
        let expect = pred.estimate_output(17);
        let mut scan = SelectScan::new(Box::new(TableScan::new(&h, &stats)), pred);
        assert_eq!(run_to_end(&mut scan), expect);
        assert_eq!(expect, 3); // keys 4, 9, 14
    }

    #[test]
    fn select_mod_residue_zero_overshoots_estimate() {
        let h = heap("t", 17);
        let stats = AccessStats::new();
        let pred = Predicate::KeyModEq {
            field: "t_key".into(),
            modulus: 5,
            residue: 0,
        };
        let mut scan = SelectScan::new(Box::new(TableScan::new(&h, &stats)), pred.clone());
        // keys 0, 5, 10, 15 -> 4 matches; estimate 17/5 = 3.
        assert_eq!(run_to_end(&mut scan), 4);
        assert_eq!(pred.estimate_output(17), 3);
    }

    #[test]
    fn product_rescans_right_per_left_record() {
        let left = heap("l", 3); // 1 page
        let right = heap("r", 7); // slot 25, spp 5 -> 2 pages
        let stats = AccessStats::new();
        let mut scan = ProductScan::new(
            Box::new(TableScan::new(&left, &stats)),
            Box::new(TableScan::new(&right, &stats)),
        );
        assert_eq!(run_to_end(&mut scan), 21);
        // B1 + R1·B2 = 1 + 3·2 = 7 blocks.
        assert_eq!(stats.blocks(), 7);
    }

    #[test]
    fn product_with_empty_left_never_opens_right() {
        let left = heap("l", 0);
        let right = heap("r", 7);
        let stats = AccessStats::new();
        let mut scan = ProductScan::new(
            Box::new(TableScan::new(&left, &stats)),
            Box::new(TableScan::new(&right, &stats)),
        );
        assert_eq!(run_to_end(&mut scan), 0);
        assert_eq!(stats.blocks(), 0);
    }

    #[test]
    fn projection_hides_fields() {
        let h = heap("t", 2);
        let stats = AccessStats::new();
        let mut scan = ProjectScan::new(
            Box::new(TableScan::new(&h, &stats)),
            vec!["t_key".to_string()],
        );
        assert!(scan.next());
        assert!(scan.has_field("t_key"));
        assert!(!scan.has_field("t_pad"));
        let _ = scan.get_int("t_key");
    }
}
