//! # ivdss-storage — deterministic record-page storage + measured scans
//!
//! Everything upstream of this crate estimates: [`ivdss_costmodel`]'s
//! analytic model turns catalog byte counts into latencies without ever
//! touching a byte of data. This crate closes the loop with a minimal,
//! fully deterministic storage engine in the classic SimpleDB shape:
//!
//! * [`schema`] — field schemas and slotted-record [`schema::Layout`]s,
//!   including the canonical mapping from a catalog
//!   [`ivdss_catalog::table::TableMeta`] to a physical layout;
//! * [`page`] — fixed-size slotted pages of fixed-length records;
//! * [`heap`] — [`heap::TableStorage`], an in-memory page heap per table
//!   with deterministic seeded population;
//! * [`scan`] — executable scans ([`scan::TableScan`], [`scan::SelectScan`],
//!   [`scan::ProjectScan`], [`scan::ProductScan`]) that count every block
//!   and record access into an [`stats::AccessStats`] collector;
//! * [`plan`] — the [`plan::Plan`] tree mirroring the scans, reporting
//!   `blocks_accessed()` / `records_output()` *estimates before execution*
//!   (deterministic functions of the layout, so the differential suite can
//!   assert estimate == measured bit-exactly);
//! * [`engine`] — [`engine::StorageEngine`], which materializes every
//!   catalog table, executes scans under a [`engine::DeviceProfile`] that
//!   converts access counts into deterministic measured latencies, and
//!   records `(bytes, seconds)` calibration samples for
//!   [`ivdss_costmodel::calibrate::fit_local`].
//!
//! The measured side deliberately derives latency from *access counts*,
//! not wall clock: calibration coefficients fitted from these samples are
//! bit-reproducible across runs, which is what lets the regression suite
//! pin them.
//!
//! # Example
//!
//! ```
//! use ivdss_catalog::tpch::{tpch_catalog, TpchConfig};
//! use ivdss_storage::engine::{StorageConfig, StorageEngine};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let catalog = tpch_catalog(&TpchConfig {
//!     scale_factor: 0.001,
//!     ..TpchConfig::default()
//! })?;
//! let storage = StorageEngine::build(&catalog, &StorageConfig::default());
//! let t = catalog.table_ids()[0];
//! let (blocks_est, records_est) = storage.scan_estimates(t);
//! let m = storage.execute_table_scan(t);
//! assert_eq!((m.blocks, m.records), (blocks_est, records_est));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod heap;
pub mod page;
pub mod plan;
pub mod scan;
pub mod schema;
pub mod stats;

pub use engine::{DeviceProfile, MeasuredLocalCost, ScanMeasurement, StorageConfig, StorageEngine};
pub use heap::{RecordId, TableStorage};
pub use page::Page;
pub use plan::{Plan, ProductPlan, ProjectPlan, SelectPlan, TablePlan};
pub use scan::{run_to_end, Predicate, ProductScan, ProjectScan, Scan, SelectScan, TableScan};
pub use schema::{key_field, table_layout, table_schema, FieldType, Layout, Schema};
pub use stats::AccessStats;
