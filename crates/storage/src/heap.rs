//! Per-table page heaps with deterministic population.

use ivdss_catalog::ids::TableId;
use ivdss_catalog::table::TableMeta;

use crate::page::Page;
use crate::schema::{table_layout, Layout};

/// Address of one record slot: page index + slot index within the page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RecordId {
    /// Index of the page holding the record.
    pub page: usize,
    /// Slot index within that page.
    pub slot: usize,
}

/// An in-memory heap of slotted pages for one table.
///
/// Inserts fill the lowest free slot, so a freshly populated table packs
/// records densely: a full scan touches exactly
/// `ceil(rows / slots_per_page)` pages, which is what lets plan estimates
/// match measured block counts bit-exactly.
#[derive(Debug, Clone)]
pub struct TableStorage {
    table: TableId,
    layout: Layout,
    page_size: usize,
    slots_per_page: usize,
    pages: Vec<Page>,
    live: u64,
    first_free: usize,
}

impl TableStorage {
    /// Creates an empty heap.
    ///
    /// # Panics
    ///
    /// Panics if a slot of `layout` does not fit in `page_size` bytes.
    #[must_use]
    pub fn new(table: TableId, layout: Layout, page_size: usize) -> Self {
        let slots_per_page = Page::slots_per_page(&layout, page_size);
        assert!(
            slots_per_page > 0,
            "page size {page_size} cannot hold a slot of {} bytes",
            layout.slot_size()
        );
        TableStorage {
            table,
            layout,
            page_size,
            slots_per_page,
            pages: Vec::new(),
            live: 0,
            first_free: 0,
        }
    }

    /// Builds a heap for a catalog table and fills it with `rows` records:
    /// sequential keys `0..rows` plus seeded pad bytes. Sequential keys
    /// make predicate output counts exactly computable from the layout.
    #[must_use]
    pub fn populate(meta: &TableMeta, rows: u64, page_size: usize, seed: u64) -> Self {
        let mut heap = TableStorage::new(meta.id(), table_layout(meta), page_size);
        let has_pad = heap.layout.schema().len() > 1;
        for key in 0..rows {
            let rid = heap.insert();
            heap.set_int(rid, 0, key as i64);
            if has_pad {
                let width = heap.layout.field_width(1);
                let pattern = (seed ^ key.wrapping_mul(0x9E37_79B9_7F4A_7C15)).to_le_bytes();
                let fill: Vec<u8> = (0..width).map(|i| pattern[i % 8]).collect();
                heap.set_bytes(rid, 1, &fill);
            }
        }
        heap
    }

    /// The catalog table this heap stores.
    #[must_use]
    pub fn table(&self) -> TableId {
        self.table
    }

    /// The record layout.
    #[must_use]
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Page size in bytes.
    #[must_use]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Record slots per page.
    #[must_use]
    pub fn slots_per_page(&self) -> usize {
        self.slots_per_page
    }

    /// Number of allocated pages (blocks).
    #[must_use]
    pub fn blocks(&self) -> u64 {
        self.pages.len() as u64
    }

    /// Number of live records.
    #[must_use]
    pub fn live_records(&self) -> u64 {
        self.live
    }

    /// Borrow of page `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn page(&self, idx: usize) -> &Page {
        &self.pages[idx]
    }

    fn rid_of(&self, global_slot: usize) -> RecordId {
        RecordId {
            page: global_slot / self.slots_per_page,
            slot: global_slot % self.slots_per_page,
        }
    }

    /// Inserts a record into the lowest free slot, allocating a page when
    /// the heap is full, and marks it live. Field bytes are whatever the
    /// slot last held — callers write fields after inserting.
    pub fn insert(&mut self) -> RecordId {
        loop {
            let rid = self.rid_of(self.first_free);
            if rid.page == self.pages.len() {
                self.pages.push(Page::new(self.page_size));
            }
            if self.pages[rid.page].is_live(&self.layout, rid.slot) {
                self.first_free += 1;
                continue;
            }
            self.pages[rid.page].set_live(&self.layout, rid.slot, true);
            self.live += 1;
            self.first_free += 1;
            return rid;
        }
    }

    /// Frees a live record's slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot is not live.
    pub fn delete(&mut self, rid: RecordId) {
        assert!(self.is_live(rid), "delete of non-live record {rid:?}");
        self.pages[rid.page].set_live(&self.layout, rid.slot, false);
        self.live -= 1;
        let global = rid.page * self.slots_per_page + rid.slot;
        self.first_free = self.first_free.min(global);
    }

    /// Whether the slot holds a live record (false for unallocated pages).
    #[must_use]
    pub fn is_live(&self, rid: RecordId) -> bool {
        rid.slot < self.slots_per_page
            && rid.page < self.pages.len()
            && self.pages[rid.page].is_live(&self.layout, rid.slot)
    }

    /// Writes an integer field of a record.
    pub fn set_int(&mut self, rid: RecordId, field: usize, value: i64) {
        self.pages[rid.page].write_int(&self.layout, rid.slot, field, value);
    }

    /// Reads an integer field of a record.
    #[must_use]
    pub fn get_int(&self, rid: RecordId, field: usize) -> i64 {
        self.pages[rid.page].read_int(&self.layout, rid.slot, field)
    }

    /// Writes a byte field of a record (zero-padded to the field width).
    pub fn set_bytes(&mut self, rid: RecordId, field: usize, value: &[u8]) {
        self.pages[rid.page].write_bytes(&self.layout, rid.slot, field, value);
    }

    /// Reads a byte field of a record.
    #[must_use]
    pub fn get_bytes(&self, rid: RecordId, field: usize) -> &[u8] {
        self.pages[rid.page].read_bytes(&self.layout, rid.slot, field)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivdss_catalog::ids::TableId;

    fn meta(rows: u64, row_bytes: u32) -> TableMeta {
        TableMeta::new(TableId::new(0), "t", rows, row_bytes)
    }

    #[test]
    fn populate_packs_densely() {
        let m = meta(100, 40);
        let h = TableStorage::populate(&m, 100, 256, 7);
        // slot = 41, spp = 6, 100 rows -> ceil(100/6) = 17 pages.
        assert_eq!(h.slots_per_page(), 6);
        assert_eq!(h.blocks(), 17);
        assert_eq!(h.live_records(), 100);
    }

    #[test]
    fn keys_are_sequential() {
        let m = meta(10, 16);
        let h = TableStorage::populate(&m, 10, 64, 3);
        let mut seen = Vec::new();
        for page in 0..h.blocks() as usize {
            for slot in 0..h.slots_per_page() {
                let rid = RecordId { page, slot };
                if h.is_live(rid) {
                    seen.push(h.get_int(rid, 0));
                }
            }
        }
        assert_eq!(seen, (0..10).collect::<Vec<i64>>());
    }

    #[test]
    fn delete_then_insert_reuses_lowest_slot() {
        let m = meta(5, 16);
        let mut h = TableStorage::populate(&m, 5, 64, 0);
        let victim = RecordId { page: 0, slot: 1 };
        h.delete(victim);
        assert_eq!(h.live_records(), 4);
        let rid = h.insert();
        assert_eq!(rid, victim);
        assert_eq!(h.live_records(), 5);
    }

    #[test]
    fn pad_bytes_deterministic_per_seed() {
        let m = meta(4, 32);
        let a = TableStorage::populate(&m, 4, 128, 11);
        let b = TableStorage::populate(&m, 4, 128, 11);
        let c = TableStorage::populate(&m, 4, 128, 12);
        let rid = RecordId { page: 0, slot: 2 };
        assert_eq!(a.get_bytes(rid, 1), b.get_bytes(rid, 1));
        assert_ne!(a.get_bytes(rid, 1), c.get_bytes(rid, 1));
    }

    #[test]
    #[should_panic(expected = "cannot hold a slot")]
    fn oversized_slot_rejected() {
        let m = meta(1, 1000);
        let _ = TableStorage::populate(&m, 1, 64, 0);
    }
}
