//! Execution statistics: the `StatManager`-style access collector.

use std::cell::Cell;

/// Counts actual block and record accesses during scan execution.
///
/// One collector is created per execution on the caller's stack and
/// shared by reference across the scan tree (`Cell` keeps scans usable
/// through shared references without making anything `!Send` at rest —
/// the collector itself never crosses threads).
#[derive(Debug, Default)]
pub struct AccessStats {
    blocks: Cell<u64>,
    records: Cell<u64>,
}

impl AccessStats {
    /// Creates a zeroed collector.
    #[must_use]
    pub fn new() -> Self {
        AccessStats::default()
    }

    /// Records one block (page) access.
    pub fn count_block(&self) {
        self.blocks.set(self.blocks.get() + 1);
    }

    /// Records one record access.
    pub fn count_record(&self) {
        self.records.set(self.records.get() + 1);
    }

    /// Blocks accessed so far.
    #[must_use]
    pub fn blocks(&self) -> u64 {
        self.blocks.get()
    }

    /// Records accessed so far.
    #[must_use]
    pub fn records(&self) -> u64 {
        self.records.get()
    }

    /// Resets both counters to zero.
    pub fn reset(&self) {
        self.blocks.set(0);
        self.records.set(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate_and_reset() {
        let s = AccessStats::new();
        s.count_block();
        s.count_block();
        s.count_record();
        assert_eq!((s.blocks(), s.records()), (2, 1));
        s.reset();
        assert_eq!((s.blocks(), s.records()), (0, 0));
    }
}
