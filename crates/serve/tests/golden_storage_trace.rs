//! Golden-trace snapshot of a storage-backed serve run.
//!
//! One fixed scenario (seeded TPC-H replica catalog, record-page storage
//! engine, seeded arrival stream) runs on the sim clock with the engine
//! in storage-backed mode: every dispatched plan's local tables are
//! really scanned, so the trace carries `scan_started`/`scan_done`
//! events with the estimated and measured access counts. The rendered
//! trace is compared **byte for byte** against
//! `tests/fixtures/golden_storage_trace.txt`; re-bless deliberately with
//!
//! ```text
//! GOLDEN_BLESS=1 cargo test -p ivdss-serve --test golden_storage_trace
//! ```
//!
//! The pre-existing goldens (`golden_trace.txt`, net traces, scenario
//! pins) must stay byte-identical — storage-backed mode is opt-in and
//! this suite is the proof it stays that way.

use std::sync::Arc;

use ivdss_catalog::tpch::{tpch_catalog, TpchConfig};
use ivdss_core::value::DiscountRates;
use ivdss_costmodel::model::AnalyticCostModel;
use ivdss_obs::{Trace, Tracer};
use ivdss_replication::timelines::{SyncMode, SyncTimelines};
use ivdss_serve::clock::DesClock;
use ivdss_serve::engine::{ServeConfig, ServeEngine};
use ivdss_simkernel::rng::SeedFactory;
use ivdss_storage::{StorageConfig, StorageEngine};
use ivdss_workloads::stream::ArrivalStream;
use ivdss_workloads::synthetic::{random_queries, RandomQueryConfig};

const SEED: u64 = 0x57_0A;
const QUERIES: usize = 10;

/// Runs the fixed storage-backed scenario once and returns the rendered
/// trace bytes.
fn run_golden() -> String {
    let seeds = SeedFactory::new(SEED);
    let catalog = tpch_catalog(&TpchConfig {
        scale_factor: 0.0005,
        sites: 3,
        replicated_tables: 8,
        mean_sync_period: 6.0,
        seed: seeds.seed_for("catalog"),
        ..TpchConfig::default()
    })
    .expect("golden catalog configuration is valid");
    let storage = StorageEngine::build(&catalog, &StorageConfig::default());
    assert!(
        storage.is_full_fidelity(),
        "golden tables must fit the row cap"
    );
    let timelines = SyncTimelines::from_plan(catalog.replication(), SyncMode::Deterministic);
    let model = AnalyticCostModel::paper_scale();
    let templates = random_queries(&RandomQueryConfig {
        queries: 5,
        tables: catalog.table_count(),
        max_tables_per_query: 3,
        weight_range: (0.8, 2.0),
        seed: seeds.seed_for("queries"),
    });
    let mut stream = ArrivalStream::new(templates, 2.0, seeds.seed_for("arrivals"));

    let trace = Arc::new(Trace::new());
    let tracer = Tracer::recording(Arc::clone(&trace));
    let mut engine = ServeEngine::new(
        &catalog,
        &timelines,
        &model,
        ServeConfig::new(DiscountRates::new(0.01, 0.05)),
        DesClock::new(),
    )
    .with_storage(&storage)
    .with_tracer(tracer);
    for _ in 0..QUERIES {
        engine
            .submit(stream.next_request())
            .expect("golden submission plans");
    }
    engine.drain().expect("golden drain plans");
    trace.render()
}

#[test]
fn golden_storage_trace_matches_fixture_byte_for_byte() {
    let rendered = run_golden();

    // In-process determinism first: two identical runs, identical bytes.
    let again = run_golden();
    assert_eq!(
        rendered.as_bytes(),
        again.as_bytes(),
        "two identical seeded storage-backed runs must render byte-identical traces"
    );

    // The scenario must exercise the storage path, or the golden file
    // degenerates into an ordinary serve snapshot.
    for needle in [
        "submitted",
        "scan_started",
        "scan_done",
        " blocks_est=",
        " blocks=",
        " seconds=",
        "sync_delivered",
        " completed ",
    ] {
        assert!(
            rendered.contains(needle),
            "golden scenario no longer exercises {needle:?}"
        );
    }

    let fixture = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/golden_storage_trace.txt"
    );
    if std::env::var_os("GOLDEN_BLESS").is_some() {
        std::fs::write(fixture, &rendered).expect("bless writes the fixture");
    }
    let expected = std::fs::read_to_string(fixture).expect(
        "golden fixture missing — regenerate with \
         GOLDEN_BLESS=1 cargo test -p ivdss-serve --test golden_storage_trace",
    );
    assert!(
        rendered == expected,
        "trace diverged from tests/fixtures/golden_storage_trace.txt \
         (review the diff, then re-bless with GOLDEN_BLESS=1):\n\
         rendered {} bytes, fixture {} bytes",
        rendered.len(),
        expected.len()
    );
}
