//! Property tests for the serving subsystem: cache exactness against the
//! full scatter-and-gather search, and admission/shedding invariants.

use ivdss_catalog::catalog::Catalog;
use ivdss_catalog::ids::TableId;
use ivdss_catalog::synthetic::{synthetic_catalog, SyntheticConfig};
use ivdss_core::plan::{NoQueues, PlanContext, QueryRequest};
use ivdss_core::search::ScatterGatherSearch;
use ivdss_core::value::{BusinessValue, DiscountRates};
use ivdss_costmodel::model::StylizedCostModel;
use ivdss_costmodel::query::{QueryId, QuerySpec};
use ivdss_replication::schedule::Schedule;
use ivdss_replication::timelines::SyncTimelines;
use ivdss_serve::cache::{CacheOutcome, PlanCache};
use ivdss_simkernel::time::SimTime;
use proptest::prelude::*;

/// Five tables over two sites; tables 0–2 replicated with the given
/// periodic schedules (period, phase), so sync phases are fully
/// randomizable.
fn fixture(schedules: &[(f64, f64)]) -> (Catalog, SyncTimelines) {
    let catalog = synthetic_catalog(&SyntheticConfig {
        tables: 5,
        sites: 2,
        replicated_tables: 0,
        seed: 23,
        ..SyntheticConfig::default()
    })
    .unwrap();
    let mut timelines = SyncTimelines::new();
    for (i, &(period, phase)) in schedules.iter().enumerate() {
        timelines.insert(TableId::new(i as u32), Schedule::periodic(period, phase));
    }
    (catalog, timelines)
}

fn footprint(with_t3: bool, with_t4: bool) -> Vec<TableId> {
    let mut tables = vec![TableId::new(0), TableId::new(1), TableId::new(2)];
    if with_t3 {
        tables.push(TableId::new(3));
    }
    if with_t4 {
        tables.push(TableId::new(4));
    }
    tables
}

proptest! {
    /// The headline cache property: a *hit* returns a plan whose IV is
    /// identical to a fresh scatter-and-gather search at the live submit
    /// time, across randomized sync periods, phases, footprints, rates
    /// and submit offsets. (The entry is populated at one instant of the
    /// inter-sync window and hit at a different one.)
    #[test]
    fn cache_hit_iv_matches_fresh_search(
        p0 in 1.0..20.0f64,
        p1 in 1.0..20.0f64,
        p2 in 1.0..20.0f64,
        ph0 in 0.0..1.0f64,
        ph1 in 0.0..1.0f64,
        ph2 in 0.0..1.0f64,
        lcl in 0.005..0.3f64,
        lsl in 0.005..0.3f64,
        populate_at in 0.0..50.0f64,
        offset in 0.0..0.999f64,
        with_t3 in any::<bool>(),
        with_t4 in any::<bool>(),
        bv in 0.1..10.0f64
    ) {
        let (catalog, timelines) =
            fixture(&[(p0, ph0 * p0), (p1, ph1 * p1), (p2, ph2 * p2)]);
        let model = StylizedCostModel::paper_fig4();
        let ctx = PlanContext {
            catalog: &catalog,
            timelines: &timelines,
            model: &model,
            rates: DiscountRates::new(lcl, lsl),
            queues: &NoQueues,
        };
        let tables = footprint(with_t3, with_t4);
        let replicated = [TableId::new(0), TableId::new(1), TableId::new(2)];

        let s1 = SimTime::new(populate_at);
        // A second submit instant in the same inter-sync window: strictly
        // before the next sync of any footprint table.
        let (_, next_sync) = timelines.next_sync_among(&replicated, s1).unwrap();
        let s2 = SimTime::new(
            populate_at + offset * (next_sync.value() - populate_at),
        );

        let mut cache = PlanCache::new(16);
        let req1 = QueryRequest::new(
            QuerySpec::new(QueryId::new(0), tables.clone()),
            s1,
        );
        let (eval1, outcome1) = cache.plan(&ctx, &req1).unwrap();
        prop_assert_eq!(outcome1, CacheOutcome::Miss);
        let fresh1 = ScatterGatherSearch::new().search(&ctx, &req1).unwrap();
        prop_assert!(
            (eval1.information_value.value() - fresh1.best.information_value.value()).abs()
                <= 1e-12 * fresh1.best.information_value.value().max(1.0),
            "miss path: cache {} vs search {}",
            eval1.information_value.value(),
            fresh1.best.information_value.value()
        );

        // Different id and business value must not matter: neither is in
        // the key, and BV scales every candidate equally.
        let req2 = QueryRequest::new(
            QuerySpec::new(QueryId::new(1), tables),
            s2,
        )
        .with_business_value(BusinessValue::new(bv));
        let (eval2, outcome2) = cache.plan(&ctx, &req2).unwrap();
        prop_assert_eq!(outcome2, CacheOutcome::Hit);
        let fresh2 = ScatterGatherSearch::new().search(&ctx, &req2).unwrap();
        prop_assert!(
            (eval2.information_value.value() - fresh2.best.information_value.value()).abs()
                <= 1e-12 * fresh2.best.information_value.value().max(1.0),
            "hit path at s2={} (window [{}, {})): cache {} vs search {}",
            s2.value(),
            populate_at,
            next_sync.value(),
            eval2.information_value.value(),
            fresh2.best.information_value.value()
        );
    }

    /// Queries whose footprint has no replicated table still plan
    /// through the cache (all-remote champion only) and match the fresh
    /// search.
    #[test]
    fn cache_handles_unreplicated_footprints(
        submit in 0.0..100.0f64,
        lcl in 0.005..0.3f64,
        lsl in 0.005..0.3f64
    ) {
        let (catalog, timelines) = fixture(&[(5.0, 0.0)]);
        let model = StylizedCostModel::paper_fig4();
        let ctx = PlanContext {
            catalog: &catalog,
            timelines: &timelines,
            model: &model,
            rates: DiscountRates::new(lcl, lsl),
            queues: &NoQueues,
        };
        let mut cache = PlanCache::new(4);
        let req = QueryRequest::new(
            QuerySpec::new(QueryId::new(0), vec![TableId::new(3), TableId::new(4)]),
            SimTime::new(submit),
        );
        let (eval, _) = cache.plan(&ctx, &req).unwrap();
        let fresh = ScatterGatherSearch::new().search(&ctx, &req).unwrap();
        prop_assert!(
            (eval.information_value.value() - fresh.best.information_value.value()).abs() <= 1e-12
        );
        // And the second lookup is a hit (no sync phase in the key).
        let (_, outcome) = cache.plan(&ctx, &req).unwrap();
        prop_assert_eq!(outcome, CacheOutcome::Hit);
    }
}
