//! Direct test of the floored-outage re-plan path.
//!
//! The engine's [`PhaseMemo`] is sound only under stateless queue
//! contexts: site floors are time-dependent state, so the outage
//! re-plan must bypass the memo entirely. This test scripts one outage
//! over a site the nominal plan spans remotely, drives a single query
//! through [`ServeEngine`], and asserts — through the plan-decision
//! audit and the trace — that the re-plan (a) actually fired, (b) never
//! touched the memo, and (c) chose exactly the plan a memo-free
//! [`ScatterGatherSearch::search_from`] picks over the identical
//! floored context.

use std::sync::Arc;

use ivdss_catalog::placement::PlacementStrategy;
use ivdss_catalog::synthetic::{synthetic_catalog, SyntheticConfig};
use ivdss_core::plan::{NoQueues, PlanContext, QueryRequest, SiteFloors};
use ivdss_core::search::ScatterGatherSearch;
use ivdss_core::value::DiscountRates;
use ivdss_costmodel::model::StylizedCostModel;
use ivdss_faults::{FaultPlan, Outage};
use ivdss_obs::{PlanSource, Trace, Tracer};
use ivdss_replication::timelines::{SyncMode, SyncTimelines};
use ivdss_serve::clock::DesClock;
use ivdss_serve::engine::{ServeConfig, ServeEngine};
use ivdss_simkernel::time::SimTime;
use ivdss_workloads::synthetic::{random_queries, RandomQueryConfig};

const SUBMIT: f64 = 1.0;
const OUTAGE_END: f64 = 80.0;

#[test]
fn outage_replan_bypasses_the_memo_and_matches_the_memo_free_search() {
    let catalog = synthetic_catalog(&SyntheticConfig {
        tables: 8,
        sites: 3,
        placement: PlacementStrategy::Skewed,
        replicated_tables: 4,
        mean_sync_period: 5.0,
        seed: 0xB7FA55,
        ..SyntheticConfig::default()
    })
    .expect("catalog configuration is valid");
    let timelines = SyncTimelines::from_plan(catalog.replication(), SyncMode::Deterministic);
    let model = StylizedCostModel::paper_fig4();
    let rates = DiscountRates::new(0.01, 0.05);
    let templates = random_queries(&RandomQueryConfig {
        queries: 6,
        tables: 8,
        max_tables_per_query: 6,
        weight_range: (0.8, 2.0),
        seed: 0x5EED,
    });

    // Pick a template whose *nominal* plan leaves remote work, and the
    // site that work spans: that is the site the scripted outage takes
    // down, guaranteeing the dispatched plan trips the re-plan check.
    let nominal_ctx = PlanContext {
        catalog: &catalog,
        timelines: &timelines,
        model: &model,
        rates,
        queues: &NoQueues,
    };
    let search = ScatterGatherSearch::new();
    let (request, down_site) = templates
        .iter()
        .find_map(|spec| {
            let request = QueryRequest::new(spec.clone(), SimTime::new(SUBMIT));
            let best = search.search(&nominal_ctx, &request).ok()?.best;
            let remote: Vec<_> = request
                .query
                .tables()
                .iter()
                .copied()
                .filter(|t| !best.local_tables.contains(t))
                .collect();
            if remote.is_empty() || best.execute_at >= SimTime::new(OUTAGE_END) {
                return None;
            }
            let site = catalog.sites_spanned(&remote).into_iter().next()?;
            Some((request, site))
        })
        .expect("some template plans remote work before the outage ends");

    let faults = FaultPlan::from_parts(
        Vec::new(),
        vec![Outage {
            site: down_site,
            start: SimTime::ZERO,
            end: SimTime::new(OUTAGE_END),
        }],
        (1.0, 1.0),
        0,
        SimTime::new(1_000.0),
    );

    let trace = Arc::new(Trace::new());
    let mut engine = ServeEngine::with_faults(
        &catalog,
        &timelines,
        &model,
        ServeConfig::new(rates),
        DesClock::new(),
        faults.clone(),
    )
    .with_tracer(Tracer::recording(Arc::clone(&trace)));

    let outcome = engine.submit(request.clone()).expect("submission plans");
    let completions: Vec<_> = outcome
        .completed
        .into_iter()
        .chain(engine.drain().expect("drain plans"))
        .collect();
    assert_eq!(completions.len(), 1, "the single query completes");
    let completion = &completions[0];
    assert!(
        completion.replanned,
        "the plan spans the down site, so dispatch must re-plan"
    );
    assert_eq!(trace.counts().get("replanned").copied().unwrap_or(0), 1);
    assert_eq!(engine.snapshot().faults_replans, 1);

    // (a) + (b): the audit records the re-plan, and its memo counters
    // prove the PhaseMemo was never consulted — floors are
    // time-dependent queue state, so a memo probe here would be unsound.
    let audit = engine
        .plan_audit(request.id())
        .expect("audit collection is on by default");
    assert_eq!(audit.source, PlanSource::OutageReplan);
    let search_audit = audit
        .search
        .as_ref()
        .expect("an outage re-plan carries its full search audit");
    assert_eq!(
        (search_audit.memo_hits, search_audit.memo_misses),
        (0, 0),
        "the floored re-plan must bypass the sync-phase memo"
    );
    assert!(search_audit.explored() > 0);

    // (c): the chosen plan is exactly what the memo-free sequential
    // search picks over the same floored context at the dispatch time.
    let floors = faults.site_floors(SimTime::new(SUBMIT));
    assert_eq!(floors.get(&down_site), Some(&SimTime::new(OUTAGE_END)));
    let floored = SiteFloors::new(&NoQueues, floors);
    let floored_ctx = PlanContext {
        catalog: &catalog,
        timelines: &timelines,
        model: &model,
        rates,
        queues: &floored,
    };
    let reference = search
        .search_from(&floored_ctx, &request, SimTime::new(SUBMIT))
        .expect("memo-free floored search succeeds")
        .best;
    assert_eq!(audit.chosen_release, reference.execute_at);
    assert_eq!(
        audit.chosen_local,
        reference.local_tables.iter().copied().collect::<Vec<_>>()
    );
    assert_eq!(
        audit.planned_iv.to_bits(),
        reference.information_value.value().to_bits(),
        "audited planned IV must match the memo-free search bit for bit"
    );
    assert_eq!(search_audit.explored(), {
        let outcome = search
            .search_from(&floored_ctx, &request, SimTime::new(SUBMIT))
            .unwrap();
        outcome.plans_explored
    });
}
