//! Deterministic chaos suite for the serving engine.
//!
//! Runs the engine under a generated [`FaultPlan`] across a wide band of
//! seeds and asserts structural invariants that must survive *any*
//! fault schedule:
//!
//! 1. **Quiescence** — after the stream ends and the engine drains,
//!    nothing is left queued and every submitted query was either
//!    delivered or shed.
//! 2. **No double-booking** — the reservation calendars carry exactly
//!    one local booking per delivered query, one remote booking per
//!    (query, spanned remote site) pair, and the local busy time is
//!    exactly the sum of the delivered local service costs.
//! 3. **Degradation bound** — a delivered (possibly re-planned) query
//!    never exceeds the information value a fault-free planner promised
//!    at submission; recorded IV loss is finite and non-negative.
//! 4. **Cache hygiene** — after every submission, no cache entry's
//!    recorded sync phase disagrees with the engine's current timeline
//!    belief (an invalidated phase is never servable).
//! 5. **Determinism** — the same seed reproduces the identical metrics
//!    text dump, byte for byte.
//!
//! The suite is a plain seeded loop (not proptest): every seed in the
//! band runs on every invocation, so a failure names a seed that will
//! fail forever.

use ivdss_catalog::catalog::Catalog;
use ivdss_catalog::placement::PlacementStrategy;
use ivdss_catalog::synthetic::{synthetic_catalog, SyntheticConfig};
use ivdss_core::plan::{NoQueues, PlanContext, QueryRequest};
use ivdss_core::planner::{IvqpPlanner, Planner};
use ivdss_core::value::DiscountRates;
use ivdss_costmodel::model::StylizedCostModel;
use ivdss_faults::{FaultConfig, FaultPlan};
use ivdss_replication::timelines::{SyncMode, SyncTimelines};
use ivdss_serve::clock::DesClock;
use ivdss_serve::engine::{Completion, ServeConfig, ServeEngine};
use ivdss_serve::loadgen::LoadReport;
use ivdss_simkernel::rng::SeedFactory;
use ivdss_simkernel::time::SimTime;
use ivdss_workloads::stream::ArrivalStream;
use ivdss_workloads::synthetic::{random_queries, RandomQueryConfig};

const SEEDS: u64 = 120;
const QUERIES: usize = 40;
const HORIZON: f64 = 600.0;

struct Scenario {
    catalog: Catalog,
    timelines: SyncTimelines,
    model: StylizedCostModel,
    rates: DiscountRates,
    faults: FaultPlan,
    requests: Vec<QueryRequest>,
}

fn scenario(seed: u64) -> Scenario {
    let seeds = SeedFactory::new(seed);
    let catalog = synthetic_catalog(&SyntheticConfig {
        tables: 8,
        sites: 3,
        placement: PlacementStrategy::Skewed,
        replicated_tables: 4,
        mean_sync_period: 5.0,
        seed: seeds.seed_for("catalog"),
        ..SyntheticConfig::default()
    })
    .expect("chaos catalog configuration is valid");
    let timelines = SyncTimelines::from_plan(catalog.replication(), SyncMode::Deterministic);
    let faults = FaultPlan::generate(
        &FaultConfig {
            slip_probability: 0.25,
            drop_probability: 0.1,
            slip_delay: (1.0, 8.0),
            outage_mtbf: 120.0,
            outage_duration: (5.0, 25.0),
            jitter: (1.0, 1.4),
            horizon: SimTime::new(HORIZON),
        },
        &timelines,
        catalog.site_count(),
        seeds.seed_for("faults"),
    );
    let templates = random_queries(&RandomQueryConfig {
        queries: 8,
        tables: 8,
        max_tables_per_query: 4,
        weight_range: (0.8, 2.0),
        seed: seeds.seed_for("queries"),
    });
    let mut stream = ArrivalStream::new(templates, 1.5, seeds.seed_for("arrivals"));
    let requests = (0..QUERIES).map(|_| stream.next_request()).collect();
    Scenario {
        catalog,
        timelines,
        model: StylizedCostModel::paper_fig4(),
        rates: DiscountRates::new(0.01, 0.05),
        faults,
        requests,
    }
}

/// Runs the scenario's request stream through a faulted engine,
/// asserting cache hygiene after every step, and returns the report and
/// the metrics text dump.
fn run(s: &Scenario) -> (LoadReport, String) {
    let mut config = ServeConfig::new(s.rates);
    // A finite queue so IV-aware shedding participates in some seeds.
    config.queue_capacity = 16;
    let mut engine = ServeEngine::with_faults(
        &s.catalog,
        &s.timelines,
        &s.model,
        config,
        DesClock::new(),
        s.faults.clone(),
    );
    let mut report = LoadReport::default();
    for request in &s.requests {
        let outcome = engine.submit(request.clone()).expect("submission plans");
        report.shed.extend(outcome.shed);
        report.completions.extend(outcome.completed);
        assert_eq!(
            engine
                .cache()
                .stale_entries(engine.timelines(), engine.now()),
            0,
            "cache holds an entry with an invalidated sync phase"
        );
    }
    report
        .completions
        .extend(engine.drain().expect("drain plans"));

    // Invariant 1: quiescence.
    assert_eq!(engine.queue_depth(), 0, "drained engine must be empty");
    assert_eq!(
        report.completions.len() + report.shed.len(),
        s.requests.len(),
        "every query is either delivered or shed"
    );

    // Invariant 2: no double-booking on any calendar.
    let local = engine.facilities().local();
    assert_eq!(
        local.jobs_booked(),
        report.completions.len() as u64,
        "exactly one local booking per delivered query"
    );
    let booked_local: f64 = report
        .completions
        .iter()
        .map(|c| c.evaluation.cost.local_service().value())
        .sum();
    assert!(
        (local.total_busy_time().value() - booked_local).abs() < 1e-6,
        "local busy time {} must equal the sum of local service costs {}",
        local.total_busy_time().value(),
        booked_local
    );
    let by_id: std::collections::HashMap<_, _> = s.requests.iter().map(|r| (r.id(), r)).collect();
    let expected_remote: u64 = report
        .completions
        .iter()
        .map(|c| {
            let request = by_id[&c.query];
            let remote: Vec<_> = request
                .query
                .tables()
                .iter()
                .copied()
                .filter(|t| !c.evaluation.local_tables.contains(t))
                .collect();
            if remote.is_empty() {
                0
            } else {
                s.catalog.sites_spanned(&remote).len() as u64
            }
        })
        .sum();
    let actual_remote: u64 = (0..s.catalog.site_count())
        .map(|i| {
            engine
                .facilities()
                .remote(ivdss_catalog::ids::SiteId::new(i as u32))
                .jobs_booked()
        })
        .sum();
    assert_eq!(
        actual_remote, expected_remote,
        "one remote booking per (query, spanned site) pair"
    );

    // Invariant 3: the fault-free planning bound is never beaten.
    //
    // Strictly speaking this is an empirical bound over the fixed seed
    // band, not a theorem: a slipped sync carries data current as of its
    // late completion, which can hand one query a refresh sooner than
    // its next nominal one (see core/tests/differential.rs). In the
    // served pipeline that edge is swamped by queuing, jitter and floor
    // degradation, and the band is deterministic, so the assertion is
    // stable.
    let nominal_ctx = PlanContext {
        catalog: &s.catalog,
        timelines: &s.timelines,
        model: &s.model,
        rates: s.rates,
        queues: &NoQueues,
    };
    for c in &report.completions {
        let request = by_id[&c.query];
        let ideal = IvqpPlanner::new()
            .select_plan(&nominal_ctx, request)
            .expect("fault-free planning succeeds");
        let delivered = c.evaluation.information_value.value();
        assert!(
            delivered <= ideal.information_value.value() + 1e-9,
            "query {:?}: delivered IV {delivered} beats the fault-free bound {}",
            c.query,
            ideal.information_value.value()
        );
        assert!(
            c.iv_lost.is_finite() && c.iv_lost >= 0.0,
            "IV loss must be finite and non-negative, got {}",
            c.iv_lost
        );
    }

    let text = engine.snapshot().to_text();
    (report, text)
}

#[test]
fn chaos_invariants_hold_across_the_seed_band() {
    let mut faulted_seeds = 0u64;
    let mut replans = 0usize;
    for seed in 0..SEEDS {
        let s = scenario(seed);
        if !s.faults.is_empty() {
            faulted_seeds += 1;
        }
        let (report, _) = run(&s);
        replans += report
            .completions
            .iter()
            .filter(|c: &&Completion| c.replanned)
            .count();
    }
    // The band must actually exercise the machinery, not vacuously pass.
    assert!(
        faulted_seeds > SEEDS * 9 / 10,
        "nearly every seed should generate faults, got {faulted_seeds}/{SEEDS}"
    );
    assert!(
        replans > 0,
        "some dispatches across the band must hit an outage and re-plan"
    );
}

#[test]
fn same_seed_reproduces_identical_metrics() {
    for seed in [0, 17, 63, 111] {
        let s1 = scenario(seed);
        let s2 = scenario(seed);
        assert_eq!(s1.faults, s2.faults, "fault generation is deterministic");
        let (_, text1) = run(&s1);
        let (_, text2) = run(&s2);
        assert_eq!(
            text1, text2,
            "seed {seed}: metrics text dumps must match byte for byte"
        );
    }
}

#[test]
fn faulted_run_degrades_but_still_delivers() {
    // One representative seed, inspected more closely: the engine under
    // faults still delivers most queries, and the degradation shows up
    // in the fault counters rather than as a stall or panic.
    let s = scenario(7);
    assert!(!s.faults.is_empty());
    let (report, text) = run(&s);
    assert!(
        report.completions.len() >= QUERIES * 3 / 4,
        "most queries still complete under chaos, got {}",
        report.completions.len()
    );
    assert!(text.contains("serve_faults_syncs_slipped_total"));
    assert!(text.contains("serve_faults_iv_lost_total"));
}
