//! Golden-trace snapshot of a seeded run with **incremental
//! re-planning on revisions** enabled.
//!
//! Same discipline as `golden_trace`: one fixed scenario, rendered
//! bytes compared byte-for-byte against
//! `tests/fixtures/golden_repair_trace.txt`, re-blessed only
//! deliberately via
//!
//! ```text
//! GOLDEN_BLESS=1 cargo test -p ivdss-serve --test golden_repair_trace
//! ```
//!
//! The scenario differs from the base golden in two knobs: a
//! zero-tolerance dispatch gate keeps queries waiting in the admission
//! queue, and [`ServeConfig::replan_on_revision`] is on — so when a
//! fault revision lands at a sync tick, every queued query touching the
//! revised table is proactively re-planned through the [`ReplanCache`]
//! and a `plan_repaired` event (with its reused/recomputed counters) is
//! pinned into the fixture.
//!
//! [`ReplanCache`]: ivdss_core::repair::ReplanCache

use std::sync::Arc;

use ivdss_catalog::placement::PlacementStrategy;
use ivdss_catalog::synthetic::{synthetic_catalog, SyntheticConfig};
use ivdss_core::value::DiscountRates;
use ivdss_costmodel::model::StylizedCostModel;
use ivdss_faults::observe::emit_fault_plan;
use ivdss_faults::{FaultConfig, FaultPlan};
use ivdss_obs::{Trace, Tracer};
use ivdss_replication::timelines::{SyncMode, SyncTimelines};
use ivdss_serve::clock::DesClock;
use ivdss_serve::engine::{ServeConfig, ServeEngine};
use ivdss_simkernel::rng::SeedFactory;
use ivdss_simkernel::time::{SimDuration, SimTime};
use ivdss_workloads::stream::ArrivalStream;
use ivdss_workloads::synthetic::{random_queries, RandomQueryConfig};

const SEED: u64 = 0x9E9A;
const QUERIES: usize = 12;

/// Runs the fixed repair scenario once, recording into a fresh trace,
/// and returns the rendered bytes.
fn run_golden() -> String {
    let seeds = SeedFactory::new(SEED);
    let catalog = synthetic_catalog(&SyntheticConfig {
        tables: 8,
        sites: 3,
        placement: PlacementStrategy::Skewed,
        replicated_tables: 4,
        mean_sync_period: 5.0,
        seed: seeds.seed_for("catalog"),
        ..SyntheticConfig::default()
    })
    .expect("golden catalog configuration is valid");
    let timelines = SyncTimelines::from_plan(catalog.replication(), SyncMode::Deterministic);
    let model = StylizedCostModel::paper_fig4();
    let faults = FaultPlan::generate(
        &FaultConfig {
            slip_probability: 0.45,
            drop_probability: 0.1,
            slip_delay: (1.0, 8.0),
            horizon: SimTime::new(200.0),
            ..FaultConfig::default()
        },
        &timelines,
        catalog.site_count(),
        seeds.seed_for("faults"),
    );
    let templates = random_queries(&RandomQueryConfig {
        queries: 6,
        tables: 8,
        max_tables_per_query: 4,
        weight_range: (0.8, 2.0),
        seed: seeds.seed_for("queries"),
    });
    let mut stream = ArrivalStream::new(templates, 2.0, seeds.seed_for("arrivals"));

    // Cache off (full search telemetry), zero dispatch tolerance (the
    // queue actually holds queries when revisions land), repair-on-
    // revision on (the knob under test).
    let mut config = ServeConfig::new(DiscountRates::new(0.01, 0.05));
    config.use_cache = false;
    config.dispatch_backlog = SimDuration::ZERO;
    config.replan_on_revision = true;

    let trace = Arc::new(Trace::new());
    let tracer = Tracer::recording(Arc::clone(&trace));
    emit_fault_plan(&faults, &tracer);
    let mut engine = ServeEngine::with_faults(
        &catalog,
        &timelines,
        &model,
        config,
        DesClock::new(),
        faults,
    )
    .with_tracer(tracer);
    for _ in 0..QUERIES {
        engine
            .submit(stream.next_request())
            .expect("golden submission plans");
    }
    engine.drain().expect("golden drain plans");
    trace.render()
}

#[test]
fn golden_repair_trace_matches_fixture_byte_for_byte() {
    let rendered = run_golden();

    // In-process determinism first: two identical runs, identical bytes.
    let again = run_golden();
    assert_eq!(
        rendered.as_bytes(),
        again.as_bytes(),
        "two identical seeded runs must render byte-identical traces"
    );

    // The scenario must exercise the repair path, or the fixture is a
    // vacuous copy of the base golden.
    for needle in [
        "fault_slip_planned",
        "revision_applied",
        "plan_repaired",
        "search_started",
        "search_finished",
        " completed ",
    ] {
        assert!(
            rendered.contains(needle),
            "golden repair scenario no longer exercises {needle:?}"
        );
    }

    let fixture = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/golden_repair_trace.txt"
    );
    if std::env::var_os("GOLDEN_BLESS").is_some() {
        std::fs::write(fixture, &rendered).expect("bless writes the fixture");
    }
    let expected = std::fs::read_to_string(fixture).expect(
        "golden repair fixture missing — regenerate with \
         GOLDEN_BLESS=1 cargo test -p ivdss-serve --test golden_repair_trace",
    );
    assert!(
        rendered == expected,
        "trace diverged from tests/fixtures/golden_repair_trace.txt \
         (review the diff, then re-bless with GOLDEN_BLESS=1):\n\
         rendered {} bytes, fixture {} bytes",
        rendered.len(),
        expected.len()
    );
}
