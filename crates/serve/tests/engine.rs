//! End-to-end tests of the serving engine: overload shedding, cache
//! behaviour under syncs, determinism, and the MQO batch-window seam.

use ivdss_catalog::catalog::Catalog;
use ivdss_catalog::ids::TableId;
use ivdss_catalog::replica::{ReplicaSpec, ReplicationPlan};
use ivdss_catalog::synthetic::{synthetic_catalog, SyntheticConfig};
use ivdss_core::value::{BusinessValue, DiscountRates};
use ivdss_costmodel::model::StylizedCostModel;
use ivdss_costmodel::query::{QueryId, QuerySpec};
use ivdss_replication::timelines::{SyncMode, SyncTimelines};
use ivdss_serve::clock::DesClock;
use ivdss_serve::engine::{ServeConfig, ServeEngine};
use ivdss_serve::loadgen::{run_closed_loop, run_open_loop, ClosedLoopConfig, OpenLoopConfig};
use ivdss_simkernel::time::{SimDuration, SimTime};

fn t(i: u32) -> TableId {
    TableId::new(i)
}

fn fixture() -> (Catalog, SyncTimelines, StylizedCostModel) {
    let base = synthetic_catalog(&SyntheticConfig {
        tables: 6,
        sites: 2,
        replicated_tables: 0,
        seed: 42,
        ..SyntheticConfig::default()
    })
    .unwrap();
    let mut plan = ReplicationPlan::new();
    plan.add(t(0), ReplicaSpec::new(5.0));
    plan.add(t(1), ReplicaSpec::new(8.0));
    let catalog = base.with_replication(plan).unwrap();
    let timelines = SyncTimelines::from_plan(catalog.replication(), SyncMode::Deterministic);
    (catalog, timelines, StylizedCostModel::paper_fig4())
}

fn templates() -> Vec<QuerySpec> {
    vec![
        QuerySpec::new(QueryId::new(0), vec![t(0), t(1)]),
        QuerySpec::new(QueryId::new(1), vec![t(0), t(2)]),
        QuerySpec::new(QueryId::new(2), vec![t(1), t(3), t(4)]),
    ]
}

fn overload_config() -> ServeConfig {
    let mut config = ServeConfig::new(DiscountRates::new(0.01, 0.05));
    config.queue_capacity = 3;
    // Dispatch only into an idle local server; with ~2-minute service
    // times and sub-minute arrivals the queue must fill.
    config.dispatch_backlog = SimDuration::ZERO;
    config
}

#[test]
fn overload_sheds_and_metrics_balance() {
    let (catalog, timelines, model) = fixture();
    let mut engine = ServeEngine::new(
        &catalog,
        &timelines,
        &model,
        overload_config(),
        DesClock::new(),
    );
    let report = run_open_loop(
        &mut engine,
        templates(),
        &OpenLoopConfig {
            queries: 200,
            mean_interarrival: 0.5,
            seed: 9,
            business_value: BusinessValue::UNIT,
        },
    )
    .unwrap();
    assert!(!report.shed.is_empty(), "undersized queue must shed");
    let snap = engine.snapshot();
    assert_eq!(snap.queries_submitted, 200);
    assert_eq!(snap.queries_shed, report.shed.len() as u64);
    // Conservation: every submitted query was either shed or delivered
    // (drain() empties the queue at the end).
    assert_eq!(snap.queries_completed + snap.queries_shed, 200);
    assert_eq!(report.completions.len() as u64, snap.queries_completed);
    assert!(snap.queue_depth_peak >= 3.0, "queue must have filled");
    assert!(snap.total_delivered_iv > 0.0);
    // Delivered IV is reported consistently between report and registry.
    assert!((report.total_delivered_iv() - snap.total_delivered_iv).abs() < 1e-9);
}

#[test]
fn cache_hits_and_sync_invalidations_accumulate() {
    let (catalog, timelines, model) = fixture();
    let config = ServeConfig::new(DiscountRates::new(0.01, 0.05));
    let mut engine = ServeEngine::new(&catalog, &timelines, &model, config, DesClock::new());
    let report = run_open_loop(
        &mut engine,
        templates(),
        &OpenLoopConfig {
            queries: 300,
            mean_interarrival: 1.0,
            seed: 3,
            business_value: BusinessValue::UNIT,
        },
    )
    .unwrap();
    assert_eq!(report.completions.len(), 300);
    let snap = engine.snapshot();
    assert!(
        snap.plan_cache_hits > 0,
        "repeated templates in one sync window must hit"
    );
    assert!(
        snap.plan_cache_invalidations > 0,
        "periodic syncs across a 300-minute run must invalidate entries"
    );
    assert!(snap.cache_hit_rate() > 0.0 && snap.cache_hit_rate() < 1.0);
}

#[test]
fn runs_are_deterministic() {
    let (catalog, timelines, model) = fixture();
    let run = || {
        let mut engine = ServeEngine::new(
            &catalog,
            &timelines,
            &model,
            overload_config(),
            DesClock::new(),
        );
        let report = run_open_loop(
            &mut engine,
            templates(),
            &OpenLoopConfig {
                queries: 120,
                mean_interarrival: 0.7,
                seed: 77,
                business_value: BusinessValue::UNIT,
            },
        )
        .unwrap();
        (report, engine.snapshot())
    };
    let (r1, s1) = run();
    let (r2, s2) = run();
    assert_eq!(r1, r2);
    assert_eq!(s1, s2);
    assert_eq!(s1.to_text(), s2.to_text());
}

#[test]
fn cache_off_delivers_identical_iv() {
    // The cache is an exactness-preserving optimization: the delivered
    // IV stream must be bit-identical with and without it.
    let (catalog, timelines, model) = fixture();
    let run = |use_cache: bool| {
        let mut config = ServeConfig::new(DiscountRates::new(0.01, 0.05));
        config.use_cache = use_cache;
        let mut engine = ServeEngine::new(&catalog, &timelines, &model, config, DesClock::new());
        run_open_loop(
            &mut engine,
            templates(),
            &OpenLoopConfig {
                queries: 150,
                mean_interarrival: 1.5,
                seed: 5,
                business_value: BusinessValue::UNIT,
            },
        )
        .unwrap()
        .completions
        .iter()
        .map(|c| (c.query, c.evaluation.information_value.value()))
        .collect::<Vec<_>>()
    };
    let cached = run(true);
    let fresh = run(false);
    assert_eq!(cached.len(), fresh.len());
    for ((qc, ivc), (qf, ivf)) in cached.iter().zip(fresh.iter()) {
        assert_eq!(qc, qf);
        assert!(
            (ivc - ivf).abs() <= 1e-12 * ivf.max(1.0),
            "{qc}: cached {ivc} vs fresh {ivf}"
        );
    }
}

#[test]
fn closed_loop_completes_every_query() {
    let (catalog, timelines, model) = fixture();
    let config = ServeConfig::new(DiscountRates::new(0.01, 0.05));
    let mut engine = ServeEngine::new(&catalog, &timelines, &model, config, DesClock::new());
    let report = run_closed_loop(
        &mut engine,
        templates(),
        &ClosedLoopConfig {
            clients: 4,
            queries: 60,
            think_time: 3.0,
            business_value: BusinessValue::UNIT,
        },
    )
    .unwrap();
    assert_eq!(report.completions.len() + report.shed.len(), 60);
    assert!(report.shed.is_empty(), "closed loop self-regulates");
    // Finishes are causally ordered per client's own stream.
    assert!(report.total_delivered_iv() > 0.0);
    assert_eq!(engine.snapshot().queries_completed, 60);
}

#[test]
fn queued_queries_form_batch_windows() {
    let (catalog, timelines, model) = fixture();
    let mut engine = ServeEngine::new(
        &catalog,
        &timelines,
        &model,
        overload_config(),
        DesClock::new(),
    );
    // Fill the queue with near-simultaneous arrivals; nothing dispatches
    // while the first booking occupies the local server.
    let specs = templates();
    for (i, spec) in specs.iter().enumerate() {
        let req = ivdss_core::plan::QueryRequest::new(
            spec.with_id(QueryId::new(i as u64)),
            SimTime::new(0.1 * i as f64),
        );
        engine.submit(req).unwrap();
    }
    assert!(engine.queue_depth() > 0, "backlog gate must leave a queue");
    let windows = engine.batch_windows().unwrap();
    let grouped: usize = windows.iter().map(Vec::len).sum();
    assert_eq!(grouped, engine.queue_depth(), "windows partition the queue");
    assert!(!windows.is_empty());
}
