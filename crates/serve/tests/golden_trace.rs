//! Golden-trace snapshot of a seeded faulted serve run.
//!
//! One fixed scenario (seed, catalog, fault plan, arrival stream) runs
//! with a recording tracer and its rendered trace is compared **byte
//! for byte** against the checked-in fixture
//! `tests/fixtures/golden_trace.txt`. Any change to event ordering,
//! payload fields or float formatting shows up as a fixture diff that
//! has to be reviewed and re-blessed deliberately:
//!
//! ```text
//! GOLDEN_BLESS=1 cargo test -p ivdss-serve --test golden_trace
//! ```
//!
//! A second in-process run of the identical scenario must also render
//! the identical bytes, so run-to-run determinism is asserted even
//! while a bless is in progress.

use std::sync::Arc;

use ivdss_catalog::placement::PlacementStrategy;
use ivdss_catalog::synthetic::{synthetic_catalog, SyntheticConfig};
use ivdss_core::value::DiscountRates;
use ivdss_costmodel::model::StylizedCostModel;
use ivdss_faults::observe::emit_fault_plan;
use ivdss_faults::{FaultConfig, FaultPlan};
use ivdss_obs::{Trace, Tracer};
use ivdss_replication::timelines::{SyncMode, SyncTimelines};
use ivdss_serve::clock::DesClock;
use ivdss_serve::engine::{ServeConfig, ServeEngine};
use ivdss_simkernel::rng::SeedFactory;
use ivdss_simkernel::time::SimTime;
use ivdss_workloads::stream::ArrivalStream;
use ivdss_workloads::synthetic::{random_queries, RandomQueryConfig};

const SEED: u64 = 0x601D;
const QUERIES: usize = 12;

/// Runs the fixed golden scenario once, recording into a fresh trace,
/// and returns the rendered bytes.
fn run_golden() -> String {
    let seeds = SeedFactory::new(SEED);
    let catalog = synthetic_catalog(&SyntheticConfig {
        tables: 8,
        sites: 3,
        placement: PlacementStrategy::Skewed,
        replicated_tables: 4,
        mean_sync_period: 5.0,
        seed: seeds.seed_for("catalog"),
        ..SyntheticConfig::default()
    })
    .expect("golden catalog configuration is valid");
    let timelines = SyncTimelines::from_plan(catalog.replication(), SyncMode::Deterministic);
    let model = StylizedCostModel::paper_fig4();
    let faults = FaultPlan::generate(
        &FaultConfig {
            slip_probability: 0.3,
            drop_probability: 0.1,
            slip_delay: (1.0, 8.0),
            outage_mtbf: 60.0,
            outage_duration: (5.0, 20.0),
            jitter: (1.0, 1.4),
            horizon: SimTime::new(200.0),
        },
        &timelines,
        catalog.site_count(),
        seeds.seed_for("faults"),
    );
    let templates = random_queries(&RandomQueryConfig {
        queries: 6,
        tables: 8,
        max_tables_per_query: 4,
        weight_range: (0.8, 2.0),
        seed: seeds.seed_for("queries"),
    });
    let mut stream = ArrivalStream::new(templates, 2.0, seeds.seed_for("arrivals"));

    // Cache off so the trace also snapshots the full search telemetry
    // (waves, bound trajectory) rather than just cache lookups.
    let mut config = ServeConfig::new(DiscountRates::new(0.01, 0.05));
    config.use_cache = false;

    let trace = Arc::new(Trace::new());
    let tracer = Tracer::recording(Arc::clone(&trace));
    emit_fault_plan(&faults, &tracer);
    let mut engine = ServeEngine::with_faults(
        &catalog,
        &timelines,
        &model,
        config,
        DesClock::new(),
        faults,
    )
    .with_tracer(tracer);
    for _ in 0..QUERIES {
        engine
            .submit(stream.next_request())
            .expect("golden submission plans");
    }
    engine.drain().expect("golden drain plans");
    trace.render()
}

#[test]
fn golden_trace_matches_fixture_byte_for_byte() {
    let rendered = run_golden();

    // In-process determinism first: two identical runs, identical bytes.
    let again = run_golden();
    assert_eq!(
        rendered.as_bytes(),
        again.as_bytes(),
        "two identical seeded runs must render byte-identical traces"
    );

    // The scenario must exercise the interesting paths, or the golden
    // file degenerates into a vacuous snapshot.
    for needle in [
        "fault_slip_planned",
        "fault_outage_planned",
        "submitted",
        " admission ",
        "search_started",
        "search_wave",
        "search_bound",
        "search_finished",
        "sync_delivered",
        " completed ",
    ] {
        assert!(
            rendered.contains(needle),
            "golden scenario no longer exercises {needle:?}"
        );
    }

    let fixture = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/golden_trace.txt"
    );
    if std::env::var_os("GOLDEN_BLESS").is_some() {
        std::fs::write(fixture, &rendered).expect("bless writes the fixture");
    }
    let expected = std::fs::read_to_string(fixture).expect(
        "golden fixture missing — regenerate with \
         GOLDEN_BLESS=1 cargo test -p ivdss-serve --test golden_trace",
    );
    assert!(
        rendered == expected,
        "trace diverged from tests/fixtures/golden_trace.txt \
         (review the diff, then re-bless with GOLDEN_BLESS=1):\n\
         rendered {} bytes, fixture {} bytes",
        rendered.len(),
        expected.len()
    );
}
