//! Sync-phase plan cache.
//!
//! Plan search is the expensive step of serving: a scatter-and-gather
//! search evaluates every local subset at every candidate release time.
//! But under a [`NoQueues`] planning context the search's verdict depends
//! on the query only through its footprint and cost profile, and on time
//! only through *where the submit instant falls between synchronizations*.
//! Within one inter-sync window each candidate's information value, as a
//! function of the submit time `s`, is `K · r^s` with exactly three
//! possible growth classes:
//!
//! * **immediate, some local replicas** — CL is constant, SL grows with
//!   `s` (the replicas age): `r = 1 − λ_SL`;
//! * **immediate, all-remote** — CL and SL are both constant:  `r = 1`;
//! * **delayed to a future sync `τ`** — SL is constant, CL shrinks as the
//!   submit instant approaches `τ`: `r = (1 − λ_CL)⁻¹`.
//!
//! Ordering *within* a class is therefore submit-invariant across the
//! window, so caching the per-class champion (at most three candidates)
//! and re-evaluating those champions at the live submit time reproduces
//! the full search's optimum **exactly** — this is verified against
//! [`ScatterGatherSearch`] by a property test. The champion enumeration
//! must only be careful to consider every sync point that could win for
//! *any* submit instant in the window: a delayed candidate at `τ` beats
//! the always-available all-remote fallback `F` only if
//! `(1 − λ_CL)^(τ − s) > F/BV`, and `s < τ₁` throughout the window, so
//! sync points up to `τ₁ + maxCL(F/BV)` suffice (bounded by a fixed cap
//! when `λ_CL = 0`).
//!
//! The cache key captures everything else the verdict depends on: the
//! footprint, the cost profile, the discount rates and the per-table
//! last-sync times (which *define* the window — any completed sync
//! changes the key, so entries for old windows can never be hit again).
//! Invalidation driven by [`SyncEvent`]s is thus garbage collection, not
//! correctness: it evicts entries whose window has closed.
//!
//! The cache assumes a fixed catalog and cost model; do not share one
//! cache across differently configured engines. Business value is
//! deliberately *not* in the key — it scales every candidate's IV
//! equally and never changes the argmax.
//!
//! [`NoQueues`]: ivdss_core::plan::NoQueues
//! [`ScatterGatherSearch`]: ivdss_core::search::ScatterGatherSearch

use std::collections::{BTreeSet, HashMap, VecDeque};

use ivdss_catalog::ids::TableId;
use ivdss_core::plan::{evaluate_plan, PlanContext, PlanError, PlanEvaluation, QueryRequest};
use ivdss_core::search::{is_better, local_subsets, replicated_footprint, DEFAULT_MAX_SYNC_POINTS};
use ivdss_replication::events::SyncEvent;
use ivdss_replication::timelines::SyncTimelines;
use ivdss_simkernel::time::SimTime;

/// Sentinel for "this replica has never completed a sync".
const NEVER_SYNCED: u64 = u64::MAX;

/// Everything a cached planning verdict depends on (except business
/// value, which cannot change the argmax).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanCacheKey {
    /// Sorted query footprint.
    footprint: Vec<TableId>,
    /// `(weight, selectivity)` bit patterns of the cost profile.
    profile: (u64, u64),
    /// `(λ_CL, λ_SL)` bit patterns.
    rates: (u64, u64),
    /// Bit pattern of each replicated footprint table's last sync time
    /// at submission (sorted by table), identifying the inter-sync
    /// window.
    sync_phase: Vec<u64>,
}

impl PlanCacheKey {
    /// Builds the key for `request` under `ctx` at its submission time.
    #[must_use]
    pub fn for_request(ctx: &PlanContext<'_>, request: &QueryRequest) -> Self {
        let mut footprint: Vec<TableId> = request.query.tables().to_vec();
        footprint.sort_unstable();
        footprint.dedup();
        let sync_phase = footprint
            .iter()
            .filter(|&&t| ctx.timelines.has_replica(t))
            .map(|&t| {
                ctx.timelines
                    .last_sync(t, request.submitted_at)
                    .map_or(NEVER_SYNCED, |at| at.value().to_bits())
            })
            .collect();
        PlanCacheKey {
            footprint,
            profile: (
                request.query.weight().to_bits(),
                request.query.selectivity().to_bits(),
            ),
            rates: (ctx.rates.cl.rate().to_bits(), ctx.rates.sl.rate().to_bits()),
            sync_phase,
        }
    }
}

/// Whether a lookup was answered from the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Champions were re-evaluated at the live submit time.
    Hit,
    /// The entry was populated by a fresh champion enumeration.
    Miss,
}

/// One cached candidate: a release policy plus the local replica set.
#[derive(Debug, Clone, PartialEq)]
struct Candidate {
    /// `None` = release immediately at the submit time; `Some(τ)` =
    /// delayed to the absolute sync point `τ` (valid for every submit
    /// instant in the entry's window, which `τ` strictly follows).
    release: Option<SimTime>,
    local: BTreeSet<TableId>,
}

#[derive(Debug, Clone)]
struct CacheEntry {
    /// Replicated footprint tables, aligned with `last_syncs`.
    replicated: Vec<TableId>,
    /// Last sync time per replicated table when the entry was built.
    last_syncs: Vec<Option<SimTime>>,
    /// Per-growth-class champions (1–3 candidates).
    candidates: Vec<Candidate>,
}

/// A bounded plan cache keyed by (footprint, cost profile, discount
/// rates, per-table sync phase), with FIFO eviction at capacity and
/// sync-event-driven garbage collection.
///
/// # Examples
///
/// A repeated lookup in the same sync window is a hit and returns the
/// exact search answer:
///
/// ```
/// use ivdss_catalog::ids::TableId;
/// use ivdss_catalog::replica::{ReplicaSpec, ReplicationPlan};
/// use ivdss_catalog::synthetic::{synthetic_catalog, SyntheticConfig};
/// use ivdss_core::plan::{NoQueues, PlanContext, QueryRequest};
/// use ivdss_core::planner::{IvqpPlanner, Planner};
/// use ivdss_core::value::DiscountRates;
/// use ivdss_costmodel::model::StylizedCostModel;
/// use ivdss_costmodel::query::{QueryId, QuerySpec};
/// use ivdss_replication::timelines::{SyncMode, SyncTimelines};
/// use ivdss_serve::cache::{CacheOutcome, PlanCache};
/// use ivdss_simkernel::time::SimTime;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let base = synthetic_catalog(&SyntheticConfig {
///     tables: 3, sites: 2, replicated_tables: 0, ..SyntheticConfig::default()
/// })?;
/// let mut plan = ReplicationPlan::new();
/// plan.add(TableId::new(0), ReplicaSpec::new(6.0));
/// let catalog = base.with_replication(plan)?;
/// let timelines = SyncTimelines::from_plan(catalog.replication(), SyncMode::Deterministic);
/// let model = StylizedCostModel::paper_fig4();
/// let ctx = PlanContext {
///     catalog: &catalog,
///     timelines: &timelines,
///     model: &model,
///     rates: DiscountRates::new(0.01, 0.05),
///     queues: &NoQueues,
/// };
/// let request = QueryRequest::new(
///     QuerySpec::new(QueryId::new(7), vec![TableId::new(0), TableId::new(1)]),
///     SimTime::new(2.0),
/// );
///
/// let mut cache = PlanCache::new(64);
/// let (first, outcome) = cache.plan(&ctx, &request)?;
/// assert_eq!(outcome, CacheOutcome::Miss);
/// let (second, outcome) = cache.plan(&ctx, &request)?;
/// assert_eq!(outcome, CacheOutcome::Hit);
/// // A hit is exactly the scatter-and-gather answer, not an approximation.
/// assert_eq!(second, first);
/// assert_eq!(second, IvqpPlanner::new().select_plan(&ctx, &request)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PlanCache {
    entries: HashMap<PlanCacheKey, CacheEntry>,
    insertion_order: VecDeque<PlanCacheKey>,
    capacity: usize,
    max_sync_points: usize,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

impl PlanCache {
    /// Creates a cache holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        PlanCache {
            entries: HashMap::new(),
            insertion_order: VecDeque::new(),
            capacity,
            max_sync_points: DEFAULT_MAX_SYNC_POINTS,
            hits: 0,
            misses: 0,
            invalidations: 0,
        }
    }

    /// Live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups answered from cached champions.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that required a fresh enumeration.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries evicted by synchronization events.
    #[must_use]
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// Selects the IV-optimal plan for `request`, from cached champions
    /// when the (footprint, sync-phase) entry exists, populating it
    /// otherwise.
    ///
    /// The planning context must use [`NoQueues`] (or any queue
    /// estimator whose answer is state-independent); the cacheability
    /// argument in the module docs does not hold for live queues.
    ///
    /// # Errors
    ///
    /// Propagates [`PlanError`] from plan evaluation.
    ///
    /// [`NoQueues`]: ivdss_core::plan::NoQueues
    pub fn plan(
        &mut self,
        ctx: &PlanContext<'_>,
        request: &QueryRequest,
    ) -> Result<(PlanEvaluation, CacheOutcome), PlanError> {
        let key = PlanCacheKey::for_request(ctx, request);
        if let Some(entry) = self.entries.get(&key) {
            let mut best: Option<PlanEvaluation> = None;
            for candidate in &entry.candidates {
                let execute_at = candidate
                    .release
                    .map_or(request.submitted_at, |at| at.max(request.submitted_at));
                let eval = evaluate_plan(ctx, request, execute_at, &candidate.local)?;
                if is_better(&eval, best.as_ref()) {
                    best = Some(eval);
                }
            }
            if let Some(best) = best {
                self.hits += 1;
                return Ok((best, CacheOutcome::Hit));
            }
        }

        let (best, entry) = Self::populate(ctx, request, self.max_sync_points)?;
        self.misses += 1;
        if !self.entries.contains_key(&key) {
            while self.entries.len() >= self.capacity {
                match self.insertion_order.pop_front() {
                    Some(oldest) => {
                        self.entries.remove(&oldest);
                    }
                    None => break,
                }
            }
            self.insertion_order.push_back(key.clone());
        }
        self.entries.insert(key, entry);
        Ok((best, CacheOutcome::Miss))
    }

    /// Enumerates the per-class champions for `request` and returns the
    /// overall best plus the cache entry.
    fn populate(
        ctx: &PlanContext<'_>,
        request: &QueryRequest,
        max_sync_points: usize,
    ) -> Result<(PlanEvaluation, CacheEntry), PlanError> {
        let submit = request.submitted_at;
        let replicated = replicated_footprint(ctx, request);
        let subsets = local_subsets(&replicated);

        // Class "immediate all-remote": always feasible, constant IV
        // across the window; also the fallback that bounds how far
        // delaying can pay off.
        let all_remote = evaluate_plan(ctx, request, submit, &subsets[0])?;

        // Class "immediate with local replicas".
        let mut immediate_local: Option<PlanEvaluation> = None;
        for local in &subsets[1..] {
            let eval = evaluate_plan(ctx, request, submit, local)?;
            if is_better(&eval, immediate_local.as_ref()) {
                immediate_local = Some(eval);
            }
        }

        // Class "delayed to a future sync": enumerate sync points far
        // enough that no candidate which could win for *any* submit
        // instant in the window is missed (see module docs).
        let mut delayed: Option<PlanEvaluation> = None;
        if !replicated.is_empty() {
            let fallback_ratio =
                all_remote.information_value.value() / request.business_value.value();
            let mut horizon: Option<SimTime> = None;
            let mut cursor = submit;
            let mut visited = 0usize;
            while let Some((_, sync_at)) = ctx.timelines.next_sync_among(&replicated, cursor) {
                if visited == 0 && fallback_ratio > 0.0 {
                    horizon = ctx
                        .rates
                        .cl
                        .max_latency_for_factor(fallback_ratio.min(1.0))
                        .map(|slack| sync_at + slack);
                }
                if let Some(h) = horizon {
                    if sync_at > h {
                        break;
                    }
                }
                visited += 1;
                if visited > max_sync_points {
                    break;
                }
                for local in &subsets[1..] {
                    let eval = evaluate_plan(ctx, request, sync_at, local)?;
                    if is_better(&eval, delayed.as_ref()) {
                        delayed = Some(eval);
                    }
                }
                cursor = sync_at;
            }
        }

        let last_syncs = replicated
            .iter()
            .map(|&t| ctx.timelines.last_sync(t, submit))
            .collect();
        let mut candidates = vec![Candidate {
            release: None,
            local: BTreeSet::new(),
        }];
        let mut best = all_remote;
        if let Some(eval) = immediate_local {
            candidates.push(Candidate {
                release: None,
                local: eval.local_tables.clone(),
            });
            if is_better(&eval, Some(&best)) {
                best = eval;
            }
        }
        if let Some(eval) = delayed {
            candidates.push(Candidate {
                release: Some(eval.execute_at),
                local: eval.local_tables.clone(),
            });
            if is_better(&eval, Some(&best)) {
                best = eval;
            }
        }
        Ok((
            best,
            CacheEntry {
                replicated,
                last_syncs,
                candidates,
            },
        ))
    }

    /// Evicts every entry whose replicated footprint includes `table` and
    /// returns how many entries were dropped. Used when `table`'s
    /// timeline is *revised* (a scheduled sync slipped or dropped): the
    /// entry's delayed champions may reference the revised sync point, so
    /// unlike ordinary sync-event GC the eviction is a correctness
    /// matter, not just garbage collection.
    pub fn invalidate_table(&mut self, table: TableId) -> usize {
        let stale: Vec<PlanCacheKey> = self
            .entries
            .iter()
            .filter(|(_, entry)| entry.replicated.contains(&table))
            .map(|(key, _)| key.clone())
            .collect();
        for key in &stale {
            self.entries.remove(key);
        }
        self.insertion_order
            .retain(|key| self.entries.contains_key(key));
        self.invalidations += stale.len() as u64;
        stale.len()
    }

    /// Counts entries whose recorded sync phase disagrees with
    /// `timelines` at `now` — entries a lookup *could not hit* (the key
    /// embeds the phase) but that invalidation should have collected.
    /// The chaos suite asserts this is zero after every tick; it is an
    /// observability probe, not part of the serving path.
    #[must_use]
    pub fn stale_entries(&self, timelines: &SyncTimelines, now: SimTime) -> usize {
        self.entries
            .values()
            .filter(|entry| {
                entry
                    .replicated
                    .iter()
                    .zip(&entry.last_syncs)
                    .any(|(&t, &seen)| timelines.last_sync(t, now) != seen)
            })
            .count()
    }

    /// Evicts every entry invalidated by the given synchronization
    /// events (an entry is stale once any table of its replicated
    /// footprint completed a sync after the entry's recorded phase) and
    /// returns how many entries were dropped.
    pub fn apply_sync_events(&mut self, events: &[SyncEvent]) -> usize {
        if events.is_empty() || self.entries.is_empty() {
            return 0;
        }
        let stale: Vec<PlanCacheKey> = self
            .entries
            .iter()
            .filter(|(_, entry)| {
                events.iter().any(|event| {
                    entry
                        .replicated
                        .iter()
                        .position(|&t| t == event.table)
                        .is_some_and(|idx| entry.last_syncs[idx].is_none_or(|seen| seen < event.at))
                })
            })
            .map(|(key, _)| key.clone())
            .collect();
        for key in &stale {
            self.entries.remove(key);
        }
        self.insertion_order
            .retain(|key| self.entries.contains_key(key));
        self.invalidations += stale.len() as u64;
        stale.len()
    }
}
