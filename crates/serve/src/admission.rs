//! Bounded admission queue with IV-aware load shedding.
//!
//! When the serving engine cannot keep up, *something* must be dropped.
//! A FIFO tail-drop would discard the newest query regardless of worth;
//! the paper's economics say to discard the query whose loss costs the
//! least **information value**. Each queued query's *marginal IV* is
//! estimated as the IV of its always-feasible fallback plan — execute
//! immediately, all-remote — evaluated at the current time, then boosted
//! by the §3.3 aging term ([`AgingPolicy::effective_value`]) so that
//! long-waiting queries are not starved out by a stream of fresh
//! arrivals. When an arrival finds the queue full, the minimum-marginal-
//! IV query among *queue ∪ {arrival}* is shed — which may well be the
//! arrival itself, but never blindly the newest.
//!
//! The all-remote-immediate estimator is deliberately cheap (one plan
//! evaluation, no search) and conservative: it is a lower bound on what
//! the planner can deliver, and it is the one candidate class whose IV
//! does not depend on sync phase, so ranking by it is stable while
//! queries wait.

use std::collections::{BTreeSet, VecDeque};

use ivdss_core::plan::{evaluate_plan, PlanContext, QueryRequest};
use ivdss_core::starvation::AgingPolicy;
use ivdss_costmodel::query::QueryId;
use ivdss_simkernel::time::SimTime;

/// A query waiting for dispatch.
#[derive(Debug, Clone, PartialEq)]
pub struct QueuedQuery {
    /// The pending request.
    pub request: QueryRequest,
    /// When it entered the queue.
    pub enqueued_at: SimTime,
}

/// What [`AdmissionQueue::offer`] did with an arrival.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmitOutcome {
    /// The queue had room; the arrival was appended.
    Admitted,
    /// The queue was full; the named *queued* query had the lowest
    /// marginal IV and was shed to make room for the arrival.
    AdmittedAfterShedding {
        /// The evicted query.
        shed: QueryId,
        /// Its marginal IV at eviction time.
        shed_marginal_iv: f64,
    },
    /// The queue was full and the arrival itself had the lowest marginal
    /// IV (ties favour the incumbents); it was not enqueued.
    Rejected {
        /// The arrival's marginal IV.
        marginal_iv: f64,
    },
}

/// Estimates the marginal information value of `request` at `now`: the
/// IV of the immediate all-remote fallback plan, aged by how long the
/// query has already waited.
///
/// # Panics
///
/// Panics if `ctx` cannot evaluate the all-remote immediate plan, which
/// is feasible for every well-formed request.
#[must_use]
pub fn marginal_iv(
    ctx: &PlanContext<'_>,
    request: &QueryRequest,
    now: SimTime,
    aging: AgingPolicy,
) -> f64 {
    let eval = evaluate_plan(
        ctx,
        request,
        now.max(request.submitted_at),
        &BTreeSet::new(),
    )
    .expect("the all-remote immediate plan is always feasible");
    let waiting = (now - request.submitted_at).clamp_non_negative();
    aging.effective_value(eval.information_value, waiting)
}

/// A bounded FIFO queue whose overflow policy sheds by minimum marginal
/// IV.
#[derive(Debug, Clone)]
pub struct AdmissionQueue {
    entries: VecDeque<QueuedQuery>,
    capacity: usize,
    aging: AgingPolicy,
}

impl AdmissionQueue {
    /// Creates a queue holding at most `capacity` queries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize, aging: AgingPolicy) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        AdmissionQueue {
            entries: VecDeque::new(),
            capacity,
            aging,
        }
    }

    /// Queued queries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The capacity bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The oldest queued query, if any.
    #[must_use]
    pub fn peek(&self) -> Option<&QueuedQuery> {
        self.entries.front()
    }

    /// Removes and returns the oldest queued query.
    pub fn pop_front(&mut self) -> Option<QueuedQuery> {
        self.entries.pop_front()
    }

    /// Removes and returns the *youngest* queued query — the
    /// work-stealing victim: it is last in FIFO order, so taking it
    /// never reorders or delays the queries ahead of it.
    pub fn pop_back(&mut self) -> Option<QueuedQuery> {
        self.entries.pop_back()
    }

    /// Iterates the queued queries in FIFO order.
    pub fn iter(&self) -> impl Iterator<Item = &QueuedQuery> {
        self.entries.iter()
    }

    /// Offers `request` to the queue at `now`. With room it is simply
    /// appended; at capacity the minimum-marginal-IV query among the
    /// queue plus the arrival is shed (ties keep the incumbents).
    ///
    /// # Examples
    ///
    /// A full queue sheds the lowest-value query — here the cheap
    /// incumbent, not the newest arrival:
    ///
    /// ```
    /// use ivdss_catalog::ids::TableId;
    /// use ivdss_catalog::synthetic::{synthetic_catalog, SyntheticConfig};
    /// use ivdss_core::plan::{NoQueues, PlanContext, QueryRequest};
    /// use ivdss_core::starvation::AgingPolicy;
    /// use ivdss_core::value::{BusinessValue, DiscountRates};
    /// use ivdss_costmodel::model::StylizedCostModel;
    /// use ivdss_costmodel::query::{QueryId, QuerySpec};
    /// use ivdss_replication::timelines::{SyncMode, SyncTimelines};
    /// use ivdss_serve::admission::{AdmissionQueue, AdmitOutcome};
    /// use ivdss_simkernel::time::SimTime;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let catalog = synthetic_catalog(&SyntheticConfig {
    ///     tables: 2, sites: 2, replicated_tables: 0, ..SyntheticConfig::default()
    /// })?;
    /// let timelines = SyncTimelines::from_plan(catalog.replication(), SyncMode::Deterministic);
    /// let model = StylizedCostModel::paper_fig4();
    /// let ctx = PlanContext {
    ///     catalog: &catalog,
    ///     timelines: &timelines,
    ///     model: &model,
    ///     rates: DiscountRates::new(0.01, 0.05),
    ///     queues: &NoQueues,
    /// };
    /// let request = |id: u64, bv: f64| {
    ///     QueryRequest::new(
    ///         QuerySpec::new(QueryId::new(id), vec![TableId::new(0)]),
    ///         SimTime::new(1.0),
    ///     )
    ///     .with_business_value(BusinessValue::new(bv))
    /// };
    ///
    /// let mut queue = AdmissionQueue::new(1, AgingPolicy::DISABLED);
    /// assert_eq!(
    ///     queue.offer(&ctx, request(1, 1.0), SimTime::new(1.0)),
    ///     AdmitOutcome::Admitted
    /// );
    /// // Queue full: the high-value arrival displaces the incumbent.
    /// let outcome = queue.offer(&ctx, request(2, 50.0), SimTime::new(1.0));
    /// assert!(matches!(
    ///     outcome,
    ///     AdmitOutcome::AdmittedAfterShedding { shed, .. } if shed == QueryId::new(1)
    /// ));
    /// # Ok(())
    /// # }
    /// ```
    pub fn offer(
        &mut self,
        ctx: &PlanContext<'_>,
        request: QueryRequest,
        now: SimTime,
    ) -> AdmitOutcome {
        self.push(
            ctx,
            QueuedQuery {
                request,
                enqueued_at: now,
            },
            now,
        )
    }

    /// Offers an *already-queued* query — a work-stealing transfer or a
    /// failover from another engine's queue — preserving its original
    /// enqueue time so waiting and §3.3 aging accounting stay honest.
    /// The capacity policy is identical to [`AdmissionQueue::offer`]:
    /// with room the entry is appended; at capacity the minimum-
    /// marginal-IV query among the queue plus the arrival is shed (ties
    /// keep the incumbents).
    pub fn push(
        &mut self,
        ctx: &PlanContext<'_>,
        queued: QueuedQuery,
        now: SimTime,
    ) -> AdmitOutcome {
        if self.entries.len() < self.capacity {
            self.entries.push_back(queued);
            return AdmitOutcome::Admitted;
        }

        let incoming_iv = marginal_iv(ctx, &queued.request, now, self.aging);
        let victim = self
            .entries
            .iter()
            .enumerate()
            .map(|(idx, q)| (idx, marginal_iv(ctx, &q.request, now, self.aging)))
            .min_by(|a, b| a.1.total_cmp(&b.1));
        match victim {
            Some((idx, queued_iv)) if queued_iv < incoming_iv => {
                let shed = self.entries.remove(idx).expect("victim index is in bounds");
                self.entries.push_back(queued);
                AdmitOutcome::AdmittedAfterShedding {
                    shed: shed.request.id(),
                    shed_marginal_iv: queued_iv,
                }
            }
            _ => AdmitOutcome::Rejected {
                marginal_iv: incoming_iv,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivdss_catalog::catalog::Catalog;
    use ivdss_catalog::ids::TableId;
    use ivdss_catalog::replica::{ReplicaSpec, ReplicationPlan};
    use ivdss_catalog::synthetic::{synthetic_catalog, SyntheticConfig};
    use ivdss_core::plan::NoQueues;
    use ivdss_core::value::{BusinessValue, DiscountRates};
    use ivdss_costmodel::model::StylizedCostModel;
    use ivdss_costmodel::query::QuerySpec;
    use ivdss_replication::timelines::{SyncMode, SyncTimelines};

    fn fixture() -> (Catalog, SyncTimelines, StylizedCostModel) {
        let base = synthetic_catalog(&SyntheticConfig {
            tables: 3,
            sites: 2,
            replicated_tables: 0,
            seed: 11,
            ..SyntheticConfig::default()
        })
        .unwrap();
        let mut plan = ReplicationPlan::new();
        plan.add(TableId::new(0), ReplicaSpec::new(5.0));
        let catalog = base.with_replication(plan).unwrap();
        let timelines = SyncTimelines::from_plan(catalog.replication(), SyncMode::Deterministic);
        (catalog, timelines, StylizedCostModel::paper_fig4())
    }

    fn request(id: u64, bv: f64, submitted: f64) -> QueryRequest {
        QueryRequest::new(
            QuerySpec::new(QueryId::new(id), vec![TableId::new(0), TableId::new(1)]),
            SimTime::new(submitted),
        )
        .with_business_value(BusinessValue::new(bv))
    }

    #[test]
    fn admits_until_capacity() {
        let (catalog, timelines, model) = fixture();
        let ctx = PlanContext {
            catalog: &catalog,
            timelines: &timelines,
            model: &model,
            rates: DiscountRates::new(0.05, 0.05),
            queues: &NoQueues,
        };
        let mut q = AdmissionQueue::new(2, AgingPolicy::DISABLED);
        assert_eq!(
            q.offer(&ctx, request(0, 1.0, 0.0), SimTime::ZERO),
            AdmitOutcome::Admitted
        );
        assert_eq!(
            q.offer(&ctx, request(1, 1.0, 0.0), SimTime::ZERO),
            AdmitOutcome::Admitted
        );
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn full_queue_sheds_lowest_marginal_iv_not_newest() {
        let (catalog, timelines, model) = fixture();
        let ctx = PlanContext {
            catalog: &catalog,
            timelines: &timelines,
            model: &model,
            rates: DiscountRates::new(0.05, 0.05),
            queues: &NoQueues,
        };
        let mut q = AdmissionQueue::new(2, AgingPolicy::DISABLED);
        q.offer(&ctx, request(0, 0.1, 0.0), SimTime::ZERO); // cheap incumbent
        q.offer(&ctx, request(1, 5.0, 0.0), SimTime::ZERO); // valuable incumbent
                                                            // A valuable arrival displaces the cheap incumbent, not itself.
        let outcome = q.offer(&ctx, request(2, 1.0, 0.0), SimTime::ZERO);
        match outcome {
            AdmitOutcome::AdmittedAfterShedding { shed, .. } => {
                assert_eq!(shed, QueryId::new(0));
            }
            other => panic!("expected eviction of query 0, got {other:?}"),
        }
        let ids: Vec<QueryId> = q.iter().map(|e| e.request.id()).collect();
        assert_eq!(ids, vec![QueryId::new(1), QueryId::new(2)]);
    }

    #[test]
    fn worthless_arrival_is_rejected() {
        let (catalog, timelines, model) = fixture();
        let ctx = PlanContext {
            catalog: &catalog,
            timelines: &timelines,
            model: &model,
            rates: DiscountRates::new(0.05, 0.05),
            queues: &NoQueues,
        };
        let mut q = AdmissionQueue::new(1, AgingPolicy::DISABLED);
        q.offer(&ctx, request(0, 5.0, 0.0), SimTime::ZERO);
        match q.offer(&ctx, request(1, 0.1, 0.0), SimTime::ZERO) {
            AdmitOutcome::Rejected { marginal_iv } => assert!(marginal_iv > 0.0),
            other => panic!("expected rejection, got {other:?}"),
        }
        assert_eq!(q.peek().unwrap().request.id(), QueryId::new(0));
    }

    #[test]
    fn equal_value_ties_keep_incumbents() {
        let (catalog, timelines, model) = fixture();
        let ctx = PlanContext {
            catalog: &catalog,
            timelines: &timelines,
            model: &model,
            rates: DiscountRates::new(0.05, 0.05),
            queues: &NoQueues,
        };
        let mut q = AdmissionQueue::new(1, AgingPolicy::DISABLED);
        q.offer(&ctx, request(0, 1.0, 0.0), SimTime::ZERO);
        assert!(matches!(
            q.offer(&ctx, request(1, 1.0, 0.0), SimTime::ZERO),
            AdmitOutcome::Rejected { .. }
        ));
    }

    #[test]
    fn pop_back_steals_the_youngest() {
        let (catalog, timelines, model) = fixture();
        let ctx = PlanContext {
            catalog: &catalog,
            timelines: &timelines,
            model: &model,
            rates: DiscountRates::new(0.05, 0.05),
            queues: &NoQueues,
        };
        let mut q = AdmissionQueue::new(4, AgingPolicy::DISABLED);
        q.offer(&ctx, request(0, 1.0, 0.0), SimTime::ZERO);
        q.offer(&ctx, request(1, 1.0, 1.0), SimTime::new(1.0));
        let stolen = q.pop_back().expect("two entries queued");
        assert_eq!(stolen.request.id(), QueryId::new(1));
        assert_eq!(stolen.enqueued_at, SimTime::new(1.0));
        assert_eq!(q.peek().unwrap().request.id(), QueryId::new(0));
    }

    #[test]
    fn push_preserves_enqueue_time_and_sheds_at_capacity() {
        let (catalog, timelines, model) = fixture();
        let ctx = PlanContext {
            catalog: &catalog,
            timelines: &timelines,
            model: &model,
            rates: DiscountRates::new(0.05, 0.05),
            queues: &NoQueues,
        };
        let mut q = AdmissionQueue::new(1, AgingPolicy::DISABLED);
        let transferred = QueuedQuery {
            request: request(7, 5.0, 0.0),
            enqueued_at: SimTime::new(0.5),
        };
        assert_eq!(
            q.push(&ctx, transferred, SimTime::new(2.0)),
            AdmitOutcome::Admitted
        );
        assert_eq!(q.peek().unwrap().enqueued_at, SimTime::new(0.5));
        // At capacity the same IV-aware shedding applies: a cheap
        // transfer is rejected, a valuable one displaces the incumbent.
        let cheap = QueuedQuery {
            request: request(8, 0.01, 2.0),
            enqueued_at: SimTime::new(2.0),
        };
        assert!(matches!(
            q.push(&ctx, cheap, SimTime::new(2.0)),
            AdmitOutcome::Rejected { .. }
        ));
        let rich = QueuedQuery {
            request: request(9, 50.0, 2.0),
            enqueued_at: SimTime::new(2.0),
        };
        assert!(matches!(
            q.push(&ctx, rich, SimTime::new(2.0)),
            AdmitOutcome::AdmittedAfterShedding { shed, .. } if shed == QueryId::new(7)
        ));
    }

    #[test]
    fn aging_protects_long_waiters() {
        let (catalog, timelines, model) = fixture();
        let rates = DiscountRates::new(0.05, 0.05);
        let ctx = PlanContext {
            catalog: &catalog,
            timelines: &timelines,
            model: &model,
            rates,
            queues: &NoQueues,
        };
        // The waiter submitted long ago; without aging its discounted IV
        // is far below a fresh arrival's.
        let waiter = request(0, 1.0, 0.0);
        let fresh = request(1, 1.0, 100.0);
        let now = SimTime::new(100.0);
        let plain = AgingPolicy::DISABLED;
        assert!(marginal_iv(&ctx, &waiter, now, plain) < marginal_iv(&ctx, &fresh, now, plain));
        // An outpacing aging rate inverts the ranking, so the waiter is
        // no longer the shedding victim.
        let aging = AgingPolicy::outpacing(rates, 0.01);
        assert!(marginal_iv(&ctx, &waiter, now, aging) > marginal_iv(&ctx, &fresh, now, aging));
    }
}
