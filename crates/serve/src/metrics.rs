//! Serving-engine metrics: counters, gauges and fixed-boundary
//! histograms, with point-in-time snapshots and a text-format dump.
//!
//! The registry reuses the collectors of [`ivdss_simkernel::stats`]:
//! latency and information-value distributions are [`Histogram`]s with
//! *fixed* bucket boundaries (so dumps from different runs are directly
//! comparable bucket-by-bucket), queue depth is a [`TimeWeighted`] gauge
//! (its mean weights each depth by how long the queue sat at it, the
//! standard DES occupancy statistic), and delivered IV keeps streaming
//! moments in an [`OnlineStats`].
//!
//! [`ServeMetrics::snapshot`] freezes everything into plain-data
//! [`MetricsSnapshot`] / [`HistogramSnapshot`] structs;
//! [`MetricsSnapshot::to_text`] renders the snapshot in a
//! Prometheus-flavoured exposition format (counters end in `_total`,
//! histogram buckets are cumulative with `le` upper bounds).

use ivdss_simkernel::stats::{Histogram, OnlineStats, TimeWeighted};
use ivdss_simkernel::time::{SimDuration, SimTime};

/// Upper bound (minutes) of the computational/synchronization latency
/// histograms; 24 ten-minute buckets span `[0, 240)`.
pub const LATENCY_HIST_MAX: f64 = 240.0;
/// Bucket count of the latency histograms.
pub const LATENCY_HIST_BINS: usize = 24;
/// Upper bound of the delivered-IV histogram: 20 buckets over `[0, 1)`,
/// sized for unit business value. Queries with larger business values
/// land in the overflow count, which the dump reports explicitly.
pub const IV_HIST_MAX: f64 = 1.0;
/// Bucket count of the delivered-IV histogram.
pub const IV_HIST_BINS: usize = 20;

/// The serving engine's metrics registry.
#[derive(Debug, Clone)]
pub struct ServeMetrics {
    queries_submitted: u64,
    queries_admitted: u64,
    queries_shed: u64,
    shed_iv: f64,
    queries_completed: u64,
    plan_cache_hits: u64,
    plan_cache_misses: u64,
    plan_cache_invalidations: u64,
    plan_cache_size: u64,
    faults_syncs_slipped: u64,
    faults_syncs_dropped: u64,
    faults_outages: u64,
    faults_replans: u64,
    faults_iv_lost: Histogram,
    faults_iv_lost_sum: f64,
    queue_depth: TimeWeighted,
    cl: Histogram,
    sl: Histogram,
    iv: Histogram,
    iv_stats: OnlineStats,
}

impl ServeMetrics {
    /// Creates an empty registry whose queue-depth gauge starts ticking
    /// at `start`.
    #[must_use]
    pub fn new(start: SimTime) -> Self {
        ServeMetrics {
            queries_submitted: 0,
            queries_admitted: 0,
            queries_shed: 0,
            shed_iv: 0.0,
            queries_completed: 0,
            plan_cache_hits: 0,
            plan_cache_misses: 0,
            plan_cache_invalidations: 0,
            plan_cache_size: 0,
            faults_syncs_slipped: 0,
            faults_syncs_dropped: 0,
            faults_outages: 0,
            faults_replans: 0,
            faults_iv_lost: Histogram::new(0.0, IV_HIST_MAX, IV_HIST_BINS),
            faults_iv_lost_sum: 0.0,
            queue_depth: TimeWeighted::new(start, 0.0),
            cl: Histogram::new(0.0, LATENCY_HIST_MAX, LATENCY_HIST_BINS),
            sl: Histogram::new(0.0, LATENCY_HIST_MAX, LATENCY_HIST_BINS),
            iv: Histogram::new(0.0, IV_HIST_MAX, IV_HIST_BINS),
            iv_stats: OnlineStats::new(),
        }
    }

    /// Counts one submission.
    pub fn record_submitted(&mut self) {
        self.queries_submitted += 1;
    }

    /// Counts one admission into the queue.
    pub fn record_admitted(&mut self) {
        self.queries_admitted += 1;
    }

    /// Counts one IV-aware shed and accumulates the marginal IV the
    /// victim carried at eviction time.
    pub fn record_shed(&mut self, marginal_iv: f64) {
        self.queries_shed += 1;
        self.shed_iv += marginal_iv;
    }

    /// Counts one injected synchronization slip.
    pub fn record_fault_slip(&mut self) {
        self.faults_syncs_slipped += 1;
    }

    /// Counts one injected synchronization drop.
    pub fn record_fault_drop(&mut self) {
        self.faults_syncs_dropped += 1;
    }

    /// Counts one remote-site outage window opening.
    pub fn record_fault_outage(&mut self) {
        self.faults_outages += 1;
    }

    /// Counts one dispatch-time re-plan forced by a fault.
    pub fn record_fault_replan(&mut self) {
        self.faults_replans += 1;
    }

    /// Records the IV a completion lost to degradation (delivered IV vs.
    /// the fault-free planning bound).
    pub fn record_fault_iv_lost(&mut self, iv_lost: f64) {
        self.faults_iv_lost.record(iv_lost);
        self.faults_iv_lost_sum += iv_lost;
    }

    /// Counts one completed query and records its latencies and
    /// delivered information value.
    pub fn record_completion(&mut self, cl: SimDuration, sl: SimDuration, iv: f64) {
        self.queries_completed += 1;
        self.cl.record(cl.value());
        self.sl.record(sl.value());
        self.iv.record(iv);
        self.iv_stats.record(iv);
    }

    /// Counts one plan-cache hit.
    pub fn record_cache_hit(&mut self) {
        self.plan_cache_hits += 1;
    }

    /// Counts one plan-cache miss.
    pub fn record_cache_miss(&mut self) {
        self.plan_cache_misses += 1;
    }

    /// Counts `evicted` entries invalidated by synchronization events.
    pub fn record_cache_invalidations(&mut self, evicted: u64) {
        self.plan_cache_invalidations += evicted;
    }

    /// Sets the plan-cache size gauge.
    pub fn set_cache_size(&mut self, size: usize) {
        self.plan_cache_size = size as u64;
    }

    /// Sets the queue-depth gauge at time `now`.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes an earlier update (time-weighted gauges
    /// require monotone time).
    pub fn set_queue_depth(&mut self, now: SimTime, depth: usize) {
        self.queue_depth.set(now, depth as f64);
    }

    /// Total delivered information value so far.
    #[must_use]
    pub fn total_delivered_iv(&self) -> f64 {
        self.iv_stats.sum()
    }

    /// Freezes the registry into a snapshot; `now` closes the
    /// time-weighted queue-depth window.
    #[must_use]
    pub fn snapshot(&self, now: SimTime) -> MetricsSnapshot {
        MetricsSnapshot {
            at: now,
            queries_submitted: self.queries_submitted,
            queries_admitted: self.queries_admitted,
            queries_shed: self.queries_shed,
            shed_iv: self.shed_iv,
            queries_completed: self.queries_completed,
            plan_cache_hits: self.plan_cache_hits,
            plan_cache_misses: self.plan_cache_misses,
            plan_cache_invalidations: self.plan_cache_invalidations,
            plan_cache_size: self.plan_cache_size,
            faults_syncs_slipped: self.faults_syncs_slipped,
            faults_syncs_dropped: self.faults_syncs_dropped,
            faults_outages: self.faults_outages,
            faults_replans: self.faults_replans,
            faults_iv_lost_total: self.faults_iv_lost_sum,
            faults_iv_lost: HistogramSnapshot::from_histogram(&self.faults_iv_lost),
            queue_depth: self.queue_depth.current(),
            queue_depth_peak: self.queue_depth.peak(),
            queue_depth_mean: self.queue_depth.mean_until(now),
            total_delivered_iv: self.iv_stats.sum(),
            mean_delivered_iv: self.iv_stats.mean(),
            cl: HistogramSnapshot::from_histogram(&self.cl),
            sl: HistogramSnapshot::from_histogram(&self.sl),
            iv: HistogramSnapshot::from_histogram(&self.iv),
        }
    }
}

/// Frozen histogram state: fixed bounds, per-bin counts and the
/// out-of-range tallies.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Inclusive lower bound of the first bin.
    pub low: f64,
    /// Exclusive upper bound of the last bin.
    pub high: f64,
    /// Per-bin counts.
    pub bins: Vec<u64>,
    /// Samples below `low`.
    pub underflow: u64,
    /// Samples at or above `high`.
    pub overflow: u64,
}

impl HistogramSnapshot {
    fn from_histogram(h: &Histogram) -> Self {
        let bins = h.bins().to_vec();
        let (low, _) = h.bin_bounds(0);
        let (_, high) = h.bin_bounds(bins.len() - 1);
        HistogramSnapshot {
            low,
            high,
            bins,
            underflow: h.underflow(),
            overflow: h.overflow(),
        }
    }

    /// Total samples recorded, including out-of-range ones.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.underflow + self.overflow + self.bins.iter().sum::<u64>()
    }

    /// Upper bound of bin `idx`.
    #[must_use]
    pub fn upper_bound(&self, idx: usize) -> f64 {
        let width = (self.high - self.low) / self.bins.len() as f64;
        self.low + width * (idx as f64 + 1.0)
    }

    fn dump(&self, name: &str, out: &mut String) {
        use std::fmt::Write as _;
        let mut cumulative = self.underflow;
        for (idx, &count) in self.bins.iter().enumerate() {
            cumulative += count;
            let _ = writeln!(
                out,
                "{name}_bucket{{le=\"{bound}\"}} {cumulative}",
                bound = self.upper_bound(idx)
            );
        }
        cumulative += self.overflow;
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
        let _ = writeln!(out, "{name}_count {cumulative}");
    }
}

/// A point-in-time copy of every metric in a [`ServeMetrics`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// When the snapshot was taken.
    pub at: SimTime,
    /// Queries offered to the engine.
    pub queries_submitted: u64,
    /// Queries accepted into the admission queue.
    pub queries_admitted: u64,
    /// Queries dropped by IV-aware load shedding.
    pub queries_shed: u64,
    /// Total marginal IV the shed queries carried when evicted.
    pub shed_iv: f64,
    /// Queries planned, dispatched and delivered.
    pub queries_completed: u64,
    /// Plan-cache hits.
    pub plan_cache_hits: u64,
    /// Plan-cache misses (each populates an entry).
    pub plan_cache_misses: u64,
    /// Cache entries evicted by synchronization events.
    pub plan_cache_invalidations: u64,
    /// Live cache entries at snapshot time.
    pub plan_cache_size: u64,
    /// Injected synchronization slips applied so far.
    pub faults_syncs_slipped: u64,
    /// Injected synchronization drops applied so far.
    pub faults_syncs_dropped: u64,
    /// Remote-site outage windows opened so far.
    pub faults_outages: u64,
    /// Dispatch-time re-plans forced by faults.
    pub faults_replans: u64,
    /// Total IV lost to degradation across completions.
    pub faults_iv_lost_total: f64,
    /// Distribution of per-completion IV lost to degradation.
    pub faults_iv_lost: HistogramSnapshot,
    /// Queue depth at snapshot time.
    pub queue_depth: f64,
    /// Highest queue depth observed.
    pub queue_depth_peak: f64,
    /// Time-weighted mean queue depth over the run.
    pub queue_depth_mean: f64,
    /// Sum of delivered information value.
    pub total_delivered_iv: f64,
    /// Mean delivered information value per completed query.
    pub mean_delivered_iv: f64,
    /// Computational-latency distribution (minutes).
    pub cl: HistogramSnapshot,
    /// Synchronization-latency distribution (minutes).
    pub sl: HistogramSnapshot,
    /// Delivered-IV distribution.
    pub iv: HistogramSnapshot,
}

impl MetricsSnapshot {
    /// Cache hit rate in `[0, 1]`; zero when no lookups happened.
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        let lookups = self.plan_cache_hits + self.plan_cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.plan_cache_hits as f64 / lookups as f64
        }
    }

    /// Renders the snapshot in a Prometheus-flavoured text format.
    #[must_use]
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "# ivdss-serve metrics at t={}", self.at.value());
        let _ = writeln!(
            out,
            "serve_queries_submitted_total {}",
            self.queries_submitted
        );
        let _ = writeln!(
            out,
            "serve_queries_admitted_total {}",
            self.queries_admitted
        );
        let _ = writeln!(out, "serve_queries_shed_total {}", self.queries_shed);
        let _ = writeln!(out, "serve_shed_iv_total {}", self.shed_iv);
        let _ = writeln!(
            out,
            "serve_queries_completed_total {}",
            self.queries_completed
        );
        let _ = writeln!(out, "serve_plan_cache_hits_total {}", self.plan_cache_hits);
        let _ = writeln!(
            out,
            "serve_plan_cache_misses_total {}",
            self.plan_cache_misses
        );
        let _ = writeln!(
            out,
            "serve_plan_cache_invalidations_total {}",
            self.plan_cache_invalidations
        );
        let _ = writeln!(out, "serve_plan_cache_size {}", self.plan_cache_size);
        let _ = writeln!(out, "serve_queue_depth {}", self.queue_depth);
        let _ = writeln!(out, "serve_queue_depth_peak {}", self.queue_depth_peak);
        let _ = writeln!(out, "serve_queue_depth_mean {}", self.queue_depth_mean);
        let _ = writeln!(out, "serve_delivered_iv_total {}", self.total_delivered_iv);
        let _ = writeln!(out, "serve_delivered_iv_mean {}", self.mean_delivered_iv);
        let _ = writeln!(
            out,
            "serve_faults_syncs_slipped_total {}",
            self.faults_syncs_slipped
        );
        let _ = writeln!(
            out,
            "serve_faults_syncs_dropped_total {}",
            self.faults_syncs_dropped
        );
        let _ = writeln!(out, "serve_faults_outages_total {}", self.faults_outages);
        let _ = writeln!(out, "serve_faults_replans_total {}", self.faults_replans);
        let _ = writeln!(
            out,
            "serve_faults_iv_lost_total {}",
            self.faults_iv_lost_total
        );
        self.cl.dump("serve_cl_minutes", &mut out);
        self.sl.dump("serve_sl_minutes", &mut out);
        self.iv.dump("serve_delivered_iv", &mut out);
        self.faults_iv_lost.dump("serve_faults_iv_lost", &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_histograms_accumulate() {
        let mut m = ServeMetrics::new(SimTime::ZERO);
        m.record_submitted();
        m.record_admitted();
        m.record_completion(SimDuration::new(15.0), SimDuration::new(45.0), 0.62);
        m.record_completion(SimDuration::new(500.0), SimDuration::new(5.0), 1.7);
        let snap = m.snapshot(SimTime::new(10.0));
        assert_eq!(snap.queries_completed, 2);
        assert_eq!(snap.cl.count(), 2);
        assert_eq!(snap.cl.overflow, 1, "500 min exceeds the fixed range");
        assert_eq!(snap.iv.overflow, 1, "IV above unit BV overflows");
        assert!((snap.total_delivered_iv - 2.32).abs() < 1e-12);
        assert!((snap.mean_delivered_iv - 1.16).abs() < 1e-12);
    }

    #[test]
    fn queue_depth_gauge_is_time_weighted() {
        let mut m = ServeMetrics::new(SimTime::ZERO);
        m.set_queue_depth(SimTime::new(0.0), 4);
        m.set_queue_depth(SimTime::new(5.0), 0);
        let snap = m.snapshot(SimTime::new(10.0));
        // Depth 4 for half the window, 0 for the other half.
        assert!((snap.queue_depth_mean - 2.0).abs() < 1e-12);
        assert_eq!(snap.queue_depth_peak, 4.0);
        assert_eq!(snap.queue_depth, 0.0);
    }

    #[test]
    fn text_dump_has_cumulative_buckets() {
        let mut m = ServeMetrics::new(SimTime::ZERO);
        m.record_completion(SimDuration::new(5.0), SimDuration::new(5.0), 0.5);
        m.record_completion(SimDuration::new(15.0), SimDuration::new(15.0), 0.9);
        let text = m.snapshot(SimTime::new(1.0)).to_text();
        assert!(text.contains("serve_queries_completed_total 2"));
        assert!(text.contains("serve_cl_minutes_bucket{le=\"10\"} 1"));
        assert!(text.contains("serve_cl_minutes_bucket{le=\"20\"} 2"));
        assert!(text.contains("serve_cl_minutes_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("serve_cl_minutes_count 2"));
    }

    #[test]
    fn fault_counters_accumulate_and_dump() {
        let mut m = ServeMetrics::new(SimTime::ZERO);
        m.record_fault_slip();
        m.record_fault_slip();
        m.record_fault_drop();
        m.record_fault_outage();
        m.record_fault_replan();
        m.record_fault_iv_lost(0.25);
        m.record_fault_iv_lost(0.5);
        m.record_shed(0.4);
        let snap = m.snapshot(SimTime::new(1.0));
        assert_eq!(snap.faults_syncs_slipped, 2);
        assert_eq!(snap.faults_syncs_dropped, 1);
        assert_eq!(snap.faults_outages, 1);
        assert_eq!(snap.faults_replans, 1);
        assert!((snap.faults_iv_lost_total - 0.75).abs() < 1e-12);
        assert_eq!(snap.faults_iv_lost.count(), 2);
        assert!((snap.shed_iv - 0.4).abs() < 1e-12);
        let text = snap.to_text();
        assert!(text.contains("serve_faults_syncs_slipped_total 2"));
        assert!(text.contains("serve_faults_syncs_dropped_total 1"));
        assert!(text.contains("serve_faults_outages_total 1"));
        assert!(text.contains("serve_faults_replans_total 1"));
        assert!(text.contains("serve_faults_iv_lost_total 0.75"));
        assert!(text.contains("serve_faults_iv_lost_count 2"));
        assert!(text.contains("serve_shed_iv_total 0.4"));
    }

    #[test]
    fn cache_hit_rate_handles_zero_lookups() {
        let m = ServeMetrics::new(SimTime::ZERO);
        let snap = m.snapshot(SimTime::ZERO);
        assert_eq!(snap.cache_hit_rate(), 0.0);
        let mut m = ServeMetrics::new(SimTime::ZERO);
        m.record_cache_hit();
        m.record_cache_hit();
        m.record_cache_miss();
        let snap = m.snapshot(SimTime::ZERO);
        assert!((snap.cache_hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }
}
