//! # ivdss-serve — online query serving for the IV-driven DSS
//!
//! The rest of the workspace studies the paper's planner *offline*:
//! fixed request batches replayed through experiments. This crate turns
//! the machinery into an **online serving engine** — queries arrive
//! continuously, are admitted (or shed) by information value, planned
//! through a sync-phase plan cache, and dispatched onto reservation
//! calendars — with a metrics registry suitable for near-real-time
//! operation of the system the paper envisions.
//!
//! * [`clock`] — the [`Clock`] abstraction: deterministic DES time for
//!   tests and benches, wall time for live runs;
//! * [`admission`] — a bounded queue whose overflow policy sheds the
//!   minimum *marginal IV* (business value after projected CL/SL
//!   discounts, aged per §3.3), never blindly the newest arrival;
//! * [`cache`] — a plan cache keyed by (query footprint, cost profile,
//!   discount rates, per-table sync phase); within one inter-sync
//!   window the cached per-class champions reproduce the full
//!   scatter-and-gather optimum exactly, and completed syncs garbage-
//!   collect dead windows;
//! * [`engine`] — [`ServeEngine`]: admission → (cached) planning →
//!   calendar dispatch, with delivered IV re-costed against live queue
//!   state;
//! * [`metrics`] — counters, gauges, fixed-boundary CL/SL/IV histograms
//!   and a time-weighted queue-depth gauge, with snapshots and a text
//!   dump;
//! * [`loadgen`] — deterministic open-loop (Poisson) and closed-loop
//!   (client-population) harnesses.
//!
//! # Example
//!
//! ```
//! use ivdss_catalog::ids::TableId;
//! use ivdss_catalog::replica::{ReplicaSpec, ReplicationPlan};
//! use ivdss_catalog::synthetic::{synthetic_catalog, SyntheticConfig};
//! use ivdss_core::value::{BusinessValue, DiscountRates};
//! use ivdss_costmodel::model::StylizedCostModel;
//! use ivdss_costmodel::query::{QueryId, QuerySpec};
//! use ivdss_replication::timelines::{SyncMode, SyncTimelines};
//! use ivdss_serve::clock::DesClock;
//! use ivdss_serve::engine::{ServeConfig, ServeEngine};
//! use ivdss_serve::loadgen::{run_open_loop, OpenLoopConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let base = synthetic_catalog(&SyntheticConfig {
//!     tables: 4, sites: 2, replicated_tables: 0, ..SyntheticConfig::default()
//! })?;
//! let mut plan = ReplicationPlan::new();
//! plan.add(TableId::new(0), ReplicaSpec::new(8.0));
//! let catalog = base.with_replication(plan)?;
//! let timelines = SyncTimelines::from_plan(catalog.replication(), SyncMode::Deterministic);
//! let model = StylizedCostModel::paper_fig4();
//!
//! let config = ServeConfig::new(DiscountRates::new(0.01, 0.05));
//! let mut engine = ServeEngine::new(&catalog, &timelines, &model, config, DesClock::new());
//! let report = run_open_loop(
//!     &mut engine,
//!     vec![QuerySpec::new(QueryId::new(0), vec![TableId::new(0), TableId::new(1)])],
//!     &OpenLoopConfig {
//!         queries: 50,
//!         mean_interarrival: 5.0,
//!         seed: 7,
//!         business_value: BusinessValue::UNIT,
//!     },
//! )?;
//! assert_eq!(report.completions.len(), 50);
//! assert!(report.total_delivered_iv() > 0.0);
//! let snapshot = engine.snapshot();
//! assert!(snapshot.plan_cache_hits > 0, "repeated footprints hit the cache");
//! println!("{}", snapshot.to_text());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod cache;
pub mod clock;
pub mod engine;
pub mod loadgen;
pub mod metrics;

pub use admission::{marginal_iv, AdmissionQueue, AdmitOutcome, QueuedQuery};
pub use cache::{CacheOutcome, PlanCache, PlanCacheKey};
pub use clock::{Clock, DesClock, WallClock};
pub use engine::{Completion, ServeConfig, ServeEngine, SubmitReport};
pub use loadgen::{run_closed_loop, run_open_loop, ClosedLoopConfig, LoadReport, OpenLoopConfig};
pub use metrics::{HistogramSnapshot, MetricsSnapshot, ServeMetrics};
