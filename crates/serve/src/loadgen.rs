//! Deterministic load-generation harnesses for the serving engine.
//!
//! Two classic shapes, both driven on the engine's own clock so runs
//! are exactly reproducible from a seed:
//!
//! * **open loop** ([`run_open_loop`]) — arrivals come from a Poisson
//!   [`ArrivalStream`] regardless of how the engine keeps up; the right
//!   model for "queries arrive when analysts ask them" and the one the
//!   paper's experiments use. Under overload the admission queue fills
//!   and shedding begins.
//! * **closed loop** ([`run_closed_loop`]) — a fixed population of
//!   clients, each waiting for its previous query (plus a think time)
//!   before issuing the next; throughput self-regulates, which is the
//!   shape benches want when measuring planning cost without unbounded
//!   queue growth.

use std::collections::HashMap;

use ivdss_core::plan::{PlanError, QueryRequest};
use ivdss_core::value::BusinessValue;
use ivdss_costmodel::query::{QueryId, QuerySpec};
use ivdss_simkernel::time::SimTime;
use ivdss_workloads::stream::ArrivalStream;

use crate::clock::Clock;
use crate::engine::{Completion, ServeEngine};

/// Outcome of a load-generation run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LoadReport {
    /// Every delivered query, in completion order.
    pub completions: Vec<Completion>,
    /// Every query dropped by IV-aware shedding.
    pub shed: Vec<QueryId>,
}

impl LoadReport {
    /// Sum of delivered information value.
    #[must_use]
    pub fn total_delivered_iv(&self) -> f64 {
        self.completions
            .iter()
            .map(|c| c.evaluation.information_value.value())
            .sum()
    }
}

/// Open-loop (arrival-driven) generator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpenLoopConfig {
    /// Queries to submit.
    pub queries: usize,
    /// Mean exponential inter-arrival time.
    pub mean_interarrival: f64,
    /// Arrival-process seed.
    pub seed: u64,
    /// Business value assigned to every query.
    pub business_value: BusinessValue,
}

/// Submits `config.queries` Poisson arrivals built from the cycled
/// `templates`, then drains the engine.
///
/// # Errors
///
/// Propagates [`PlanError`] from the engine.
pub fn run_open_loop<C: Clock>(
    engine: &mut ServeEngine<'_, C>,
    templates: Vec<QuerySpec>,
    config: &OpenLoopConfig,
) -> Result<LoadReport, PlanError> {
    let mut stream = ArrivalStream::new(templates, config.mean_interarrival, config.seed)
        .with_business_value(config.business_value);
    let mut report = LoadReport::default();
    for _ in 0..config.queries {
        let outcome = engine.submit(stream.next_request())?;
        report.shed.extend(outcome.shed);
        report.completions.extend(outcome.completed);
    }
    report.completions.extend(engine.drain()?);
    Ok(report)
}

/// Closed-loop (population-driven) generator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClosedLoopConfig {
    /// Concurrent clients.
    pub clients: usize,
    /// Total queries to issue across all clients.
    pub queries: usize,
    /// Fixed think time between a client's completion and its next
    /// submission.
    pub think_time: f64,
    /// Business value assigned to every query.
    pub business_value: BusinessValue,
}

/// Runs a fixed client population against the engine: each client
/// submits, waits for its query to complete (or be shed), thinks, and
/// submits again, until `config.queries` have been issued in total.
///
/// # Errors
///
/// Propagates [`PlanError`] from the engine.
///
/// # Panics
///
/// Panics if `config.clients == 0`.
pub fn run_closed_loop<C: Clock>(
    engine: &mut ServeEngine<'_, C>,
    templates: Vec<QuerySpec>,
    config: &ClosedLoopConfig,
) -> Result<LoadReport, PlanError> {
    assert!(config.clients > 0, "need at least one client");
    assert!(!templates.is_empty(), "need at least one template");
    let mut report = LoadReport::default();
    // Stagger the first submissions so clients do not arrive as one
    // burst at t=0.
    let mut next_submit: Vec<Option<f64>> = (0..config.clients)
        .map(|i| Some(i as f64 * config.think_time / config.clients as f64))
        .collect();
    let mut owner: HashMap<QueryId, usize> = HashMap::new();
    let mut issued = 0usize;

    fn settle(
        completions: Vec<Completion>,
        think_time: f64,
        owner: &mut HashMap<QueryId, usize>,
        report: &mut LoadReport,
        next_submit: &mut [Option<f64>],
    ) {
        for completion in completions {
            if let Some(client) = owner.remove(&completion.query) {
                next_submit[client] = Some(completion.evaluation.finish.value() + think_time);
            }
            report.completions.push(completion);
        }
    }

    while issued < config.queries {
        let ready = next_submit
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.map(|t| (i, t)))
            .min_by(|a, b| a.1.total_cmp(&b.1));
        let Some((client, at)) = ready else {
            // Every client is waiting on a queued query: force dispatch.
            let done = engine.drain()?;
            assert!(
                !done.is_empty(),
                "closed loop deadlocked: all clients blocked, nothing queued"
            );
            settle(
                done,
                config.think_time,
                &mut owner,
                &mut report,
                &mut next_submit,
            );
            continue;
        };

        let id = QueryId::new(issued as u64);
        let spec = templates[issued % templates.len()].with_id(id);
        let at = at.max(engine.now().value());
        let request =
            QueryRequest::new(spec, SimTime::new(at)).with_business_value(config.business_value);
        issued += 1;
        next_submit[client] = None;
        owner.insert(id, client);

        let outcome = engine.submit(request)?;
        if let Some(victim) = outcome.shed {
            if let Some(shed_client) = owner.remove(&victim) {
                // The shed client moves on after a think time.
                next_submit[shed_client] = Some(engine.now().value() + config.think_time);
            }
            report.shed.push(victim);
        }
        settle(
            outcome.completed,
            config.think_time,
            &mut owner,
            &mut report,
            &mut next_submit,
        );
    }
    let done = engine.drain()?;
    settle(
        done,
        config.think_time,
        &mut owner,
        &mut report,
        &mut next_submit,
    );
    Ok(report)
}
