//! The online serving engine.
//!
//! [`ServeEngine`] accepts a continuous stream of [`QueryRequest`]s and,
//! per query: (1) drains completed synchronization events from the
//! replication timelines into the plan cache's invalidator, (2) runs
//! IV-aware admission ([`AdmissionQueue`]), (3) selects a plan — from
//! the sync-phase [`PlanCache`] or by a fresh [`IvqpPlanner`] search —
//! under a [`NoQueues`] planning context, and (4) dispatches the plan
//! through reservation-calendar facilities ([`FacilityQueues`]),
//! re-evaluating the chosen candidate against live calendar state so the
//! *delivered* information value reflects actual queuing.
//!
//! Planning and dispatch are deliberately split across two queue
//! estimators. Plans are *chosen* under [`NoQueues`], which is what
//! makes the cache sound (its key needs no queue state); they are then
//! *booked* and re-costed against the live calendars, which is what
//! makes the delivered IV honest. The same split mirrors the paper's
//! structure: §3.1 selects plans analytically, the evaluation replays
//! them against contended servers.
//!
//! Dispatch is gated by a backlog bound: a query leaves the admission
//! queue only while the local federation server's backlog (time until
//! its calendar has an idle instant) is below
//! [`ServeConfig::dispatch_backlog`]. Under overload the queue fills and
//! the IV-aware shedding policy starts choosing victims.

use ivdss_catalog::catalog::Catalog;
use ivdss_catalog::ids::TableId;
use ivdss_core::plan::{
    evaluate_plan, FacilityQueues, NoQueues, PlanContext, PlanError, PlanEvaluation, QueryRequest,
};
use ivdss_core::planner::{IvqpPlanner, Planner};
use ivdss_core::starvation::AgingPolicy;
use ivdss_core::value::DiscountRates;
use ivdss_costmodel::model::CostModel;
use ivdss_costmodel::query::QueryId;
use ivdss_mqo::workload::live_batch_windows;
use ivdss_replication::events::SyncEventCursor;
use ivdss_replication::timelines::SyncTimelines;
use ivdss_simkernel::time::{SimDuration, SimTime};

use crate::admission::{AdmissionQueue, AdmitOutcome, QueuedQuery};
use crate::cache::{CacheOutcome, PlanCache};
use crate::clock::Clock;
use crate::metrics::{MetricsSnapshot, ServeMetrics};

/// Tuning knobs of a [`ServeEngine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Discount rates applied to every query.
    pub rates: DiscountRates,
    /// Admission-queue bound; arrivals beyond it trigger IV-aware
    /// shedding.
    pub queue_capacity: usize,
    /// Plan-cache entry bound (FIFO eviction beyond it).
    pub cache_capacity: usize,
    /// Aging applied to queued queries' marginal IV (§3.3); disabled by
    /// default.
    pub aging: AgingPolicy,
    /// `false` runs a fresh plan search per query (the cache-off
    /// baseline of the throughput bench).
    pub use_cache: bool,
    /// Maximum local-server backlog tolerated before dispatch defers
    /// and queries wait in the admission queue.
    pub dispatch_backlog: SimDuration,
}

impl ServeConfig {
    /// A permissive default configuration for the given rates: deep
    /// queue, caching on, no aging, effectively unbounded dispatch.
    #[must_use]
    pub fn new(rates: DiscountRates) -> Self {
        ServeConfig {
            rates,
            queue_capacity: 64,
            cache_capacity: 256,
            aging: AgingPolicy::DISABLED,
            use_cache: true,
            dispatch_backlog: SimDuration::new(f64::INFINITY),
        }
    }
}

/// A delivered query: its full evaluation against live calendar state.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// The completed query.
    pub query: QueryId,
    /// The delivered plan evaluation (latencies and IV include actual
    /// calendar queuing).
    pub evaluation: PlanEvaluation,
    /// How long the query sat in the admission queue before dispatch.
    pub waited: SimDuration,
}

/// What one [`ServeEngine::submit`] call did.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SubmitReport {
    /// Query shed by admission control, if any (possibly the submitted
    /// one).
    pub shed: Option<QueryId>,
    /// Queries dispatched and delivered during this step, in dispatch
    /// order.
    pub completed: Vec<Completion>,
}

/// The online query-serving engine. See the module docs for the
/// pipeline.
pub struct ServeEngine<'a, C: Clock> {
    catalog: &'a Catalog,
    timelines: &'a SyncTimelines,
    model: &'a dyn CostModel,
    config: ServeConfig,
    clock: C,
    queue: AdmissionQueue,
    cache: PlanCache,
    facilities: FacilityQueues,
    cursor: SyncEventCursor,
    metrics: ServeMetrics,
}

impl<'a, C: Clock> ServeEngine<'a, C> {
    /// Creates an engine over the given catalog, timelines and cost
    /// model, starting at the clock's current time.
    #[must_use]
    pub fn new(
        catalog: &'a Catalog,
        timelines: &'a SyncTimelines,
        model: &'a dyn CostModel,
        config: ServeConfig,
        clock: C,
    ) -> Self {
        let start = clock.now();
        ServeEngine {
            catalog,
            timelines,
            model,
            queue: AdmissionQueue::new(config.queue_capacity, config.aging),
            cache: PlanCache::new(config.cache_capacity),
            facilities: FacilityQueues::new(catalog.site_count()),
            cursor: SyncEventCursor::new(start),
            metrics: ServeMetrics::new(start),
            config,
            clock,
        }
    }

    /// The engine's current time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Queries waiting in the admission queue.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// The metrics registry.
    #[must_use]
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// The plan cache.
    #[must_use]
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// Freezes the metrics at the current time.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot(self.clock.now())
    }

    /// The planning context: [`NoQueues`], as the cache requires.
    fn planning_ctx(&self) -> PlanContext<'a> {
        PlanContext {
            catalog: self.catalog,
            timelines: self.timelines,
            model: self.model,
            rates: self.config.rates,
            queues: &NoQueues,
        }
    }

    /// Delivers pending sync events to the cache's invalidator.
    fn sync_tick(&mut self, now: SimTime) {
        let events = self.cursor.advance_to(self.timelines, now);
        if !events.is_empty() {
            let evicted = self.cache.apply_sync_events(&events);
            self.metrics.record_cache_invalidations(evicted as u64);
            self.metrics.set_cache_size(self.cache.len());
        }
    }

    /// Moves the engine's clock to `to` (if in the future), delivering
    /// sync events and dispatching whatever the backlog bound now
    /// admits.
    ///
    /// # Errors
    ///
    /// Propagates [`PlanError`] from planning a dispatched query.
    pub fn advance_to(&mut self, to: SimTime) -> Result<Vec<Completion>, PlanError> {
        self.clock.advance_to(to);
        let now = self.clock.now();
        self.sync_tick(now);
        self.pump(now, false)
    }

    /// Submits a query: admission, planning, dispatch. The clock is
    /// advanced to the request's submission time first.
    ///
    /// # Errors
    ///
    /// Propagates [`PlanError`] from planning a dispatched query.
    pub fn submit(&mut self, request: QueryRequest) -> Result<SubmitReport, PlanError> {
        self.clock.advance_to(request.submitted_at);
        let now = self.clock.now();
        self.sync_tick(now);
        self.metrics.record_submitted();

        let ctx = self.planning_ctx();
        let submitted_id = request.id();
        let shed = match self.queue.offer(&ctx, request, now) {
            AdmitOutcome::Admitted => {
                self.metrics.record_admitted();
                None
            }
            AdmitOutcome::AdmittedAfterShedding { shed, .. } => {
                self.metrics.record_admitted();
                self.metrics.record_shed();
                Some(shed)
            }
            AdmitOutcome::Rejected { .. } => {
                // The arrival itself was the lowest-value query.
                self.metrics.record_shed();
                Some(submitted_id)
            }
        };
        let completed = self.pump(now, false)?;
        Ok(SubmitReport { shed, completed })
    }

    /// Dispatches queued queries while the backlog bound admits them
    /// (or unconditionally when `force` is set).
    fn pump(&mut self, now: SimTime, force: bool) -> Result<Vec<Completion>, PlanError> {
        let mut completed = Vec::new();
        while self.queue.peek().is_some() {
            if !force && self.local_backlog(now) > self.config.dispatch_backlog {
                break;
            }
            let queued = self.queue.pop_front().expect("peeked entry exists");
            completed.push(self.dispatch(queued, now)?);
        }
        self.metrics.set_queue_depth(now, self.queue.len());
        Ok(completed)
    }

    /// Time until the local federation server's calendar has an idle
    /// instant at or after `now`.
    fn local_backlog(&self, now: SimTime) -> SimDuration {
        (self.facilities.local().probe(now, SimDuration::ZERO).start - now).clamp_non_negative()
    }

    /// Plans and dispatches one query against the live calendars.
    fn dispatch(&mut self, queued: QueuedQuery, now: SimTime) -> Result<Completion, PlanError> {
        let request = queued.request;
        let ctx = self.planning_ctx();
        let planned = if self.config.use_cache {
            let (eval, outcome) = self.cache.plan(&ctx, &request)?;
            match outcome {
                CacheOutcome::Hit => self.metrics.record_cache_hit(),
                CacheOutcome::Miss => self.metrics.record_cache_miss(),
            }
            self.metrics.set_cache_size(self.cache.len());
            eval
        } else {
            IvqpPlanner::new().select_plan(&ctx, &request)?
        };

        // Re-evaluate the chosen candidate against live calendar state:
        // the delivered IV must pay for real queuing, not the planner's
        // empty-queue assumption.
        let release = planned.execute_at.max(now);
        let live_ctx = PlanContext {
            catalog: self.catalog,
            timelines: self.timelines,
            model: self.model,
            rates: self.config.rates,
            queues: &self.facilities,
        };
        let delivered = evaluate_plan(&live_ctx, &request, release, &planned.local_tables)?;

        // Commit the reservations the estimator just probed, mirroring
        // evaluate_plan's participation rule: the local server always
        // serves the plan's local work and result reception; each site a
        // remote table lives on serves the remote processing.
        let cost = delivered.cost;
        self.facilities
            .local_mut()
            .book(release, cost.local_service());
        let remote: Vec<TableId> = request
            .query
            .tables()
            .iter()
            .copied()
            .filter(|t| !planned.local_tables.contains(t))
            .collect();
        if !remote.is_empty() {
            for site in self.catalog.sites_spanned(&remote) {
                self.facilities
                    .remote_mut(site)
                    .book(release, cost.remote_processing);
            }
        }

        self.metrics.record_completion(
            delivered.latencies.computational,
            delivered.latencies.synchronization,
            delivered.information_value.value(),
        );
        Ok(Completion {
            query: request.id(),
            evaluation: delivered,
            waited: (now - queued.enqueued_at).clamp_non_negative(),
        })
    }

    /// Dispatches everything still queued, ignoring the backlog bound.
    ///
    /// # Errors
    ///
    /// Propagates [`PlanError`] from planning a dispatched query.
    pub fn drain(&mut self) -> Result<Vec<Completion>, PlanError> {
        let now = self.clock.now();
        self.sync_tick(now);
        self.pump(now, true)
    }

    /// Groups the currently queued queries into §3.2 batch windows
    /// (connected components of overlapping execution ranges), the seam
    /// to multi-query optimization.
    ///
    /// # Errors
    ///
    /// Propagates [`PlanError`] from the per-query range search.
    pub fn batch_windows(&self) -> Result<Vec<Vec<QueryId>>, PlanError> {
        let pending: Vec<QueryRequest> = self.queue.iter().map(|q| q.request.clone()).collect();
        live_batch_windows(&self.planning_ctx(), &pending, self.clock.now())
    }
}
