//! The online serving engine.
//!
//! [`ServeEngine`] accepts a continuous stream of [`QueryRequest`]s and,
//! per query: (1) drains completed synchronization events from the
//! replication timelines into the plan cache's invalidator, (2) runs
//! IV-aware admission ([`AdmissionQueue`]), (3) selects a plan — from
//! the sync-phase [`PlanCache`] or by a fresh scatter-and-gather search
//! (a [`ParallelPlanner`] over a shareable [`PlannerPool`], reusing
//! [`PhaseMemo`] pruning frontiers across dispatches) — under a
//! [`NoQueues`] planning context, and (4) dispatches the plan
//! through reservation-calendar facilities ([`FacilityQueues`]),
//! re-evaluating the chosen candidate against live calendar state so the
//! *delivered* information value reflects actual queuing.
//!
//! Planning and dispatch are deliberately split across two queue
//! estimators. Plans are *chosen* under [`NoQueues`], which is what
//! makes the cache sound (its key needs no queue state); they are then
//! *booked* and re-costed against the live calendars, which is what
//! makes the delivered IV honest. The same split mirrors the paper's
//! structure: §3.1 selects plans analytically, the evaluation replays
//! them against contended servers.
//!
//! Dispatch is gated by a backlog bound: a query leaves the admission
//! queue only while the local federation server's backlog (time until
//! its calendar has an idle instant) is below
//! [`ServeConfig::dispatch_backlog`]. Under overload the queue fills and
//! the IV-aware shedding policy starts choosing victims.
//!
//! # Fault injection
//!
//! [`ServeEngine::with_faults`] arms the engine with a precomputed
//! [`FaultPlan`]. The engine then maintains a *belief* copy of the
//! synchronization timelines ([`std::borrow::Cow`]): each fault-plan
//! revision, once its reveal time passes, is applied to the belief via
//! [`SyncTimelines::revise`] and evicts every cache entry touching the
//! revised table ([`PlanCache::invalidate_table`]) — a cached delayed
//! champion may reference the slipped sync point, so this is a
//! correctness eviction, not garbage collection. Site outages become
//! [`SiteFloors`] over both the planning context (admission's marginal
//! IV and dispatch-time re-planning see the degraded topology) and the
//! live calendars (delivered IV pays for waiting out the outage), and a
//! dispatched plan that would span a down site is re-planned on the
//! spot. Cost jitter applies only at delivery
//! ([`JitteredCostModel`]): plans are chosen from estimates, execution
//! runs hotter — so the cache's exactness argument is untouched. Every
//! completion under faults additionally reports the IV it lost versus
//! the fault-free planning bound.

use std::borrow::Cow;
use std::collections::BTreeMap;
use std::sync::Arc;

use ivdss_catalog::catalog::Catalog;
use ivdss_catalog::ids::{SiteId, TableId};
use ivdss_core::memo::PhaseMemo;
use ivdss_core::parallel::{ParallelPlanner, PlannerPool};
use ivdss_core::plan::{
    evaluate_plan, FacilityQueues, NoQueues, PlanContext, PlanError, PlanEvaluation, QueryRequest,
    SiteFloors,
};
use ivdss_core::repair::ReplanCache;
use ivdss_core::starvation::AgingPolicy;
use ivdss_core::value::DiscountRates;
use ivdss_costmodel::model::CostModel;
use ivdss_costmodel::query::QueryId;
use ivdss_faults::{FaultPlan, JitteredCostModel};
use ivdss_mqo::workload::live_batch_windows;
use ivdss_obs::{
    AdmissionVerdict, AuditLog, EventKind, PlanAudit, PlanSource, SearchAudit, Tracer,
};
use ivdss_replication::events::{RevisionCursor, SyncEventCursor};
use ivdss_replication::timelines::SyncTimelines;
use ivdss_simkernel::time::{SimDuration, SimTime};
use ivdss_storage::{MeasuredLocalCost, StorageEngine};

use crate::admission::{AdmissionQueue, AdmitOutcome, QueuedQuery};
use crate::cache::{CacheOutcome, PlanCache};
use crate::clock::Clock;
use crate::metrics::{MetricsSnapshot, ServeMetrics};

/// Tuning knobs of a [`ServeEngine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Discount rates applied to every query.
    pub rates: DiscountRates,
    /// Admission-queue bound; arrivals beyond it trigger IV-aware
    /// shedding.
    pub queue_capacity: usize,
    /// Plan-cache entry bound (FIFO eviction beyond it).
    pub cache_capacity: usize,
    /// Aging applied to queued queries' marginal IV (§3.3); disabled by
    /// default.
    pub aging: AgingPolicy,
    /// `false` runs a fresh plan search per query (the cache-off
    /// baseline of the throughput bench).
    pub use_cache: bool,
    /// Maximum local-server backlog tolerated before dispatch defers
    /// and queries wait in the admission queue.
    pub dispatch_backlog: SimDuration,
    /// Plan-decision audits retained (most recent first to go; `0`
    /// disables audit collection entirely).
    pub audit_capacity: usize,
    /// `true` lets dispatch-time fresh searches reuse candidate scores
    /// from previous searches of the same query via the engine's
    /// [`ReplanCache`] (incremental re-planning). Transparent: plans,
    /// counters and traces are bit-identical either way — only
    /// wall-clock shrinks.
    pub use_repair: bool,
    /// `true` makes a fault revision proactively repair the plans of
    /// queued queries touching the revised table (emitting a
    /// `plan_repaired` trace event per query), so their dispatch-time
    /// searches start warm. Off by default: it adds events to the
    /// trace.
    pub replan_on_revision: bool,
}

impl ServeConfig {
    /// A permissive default configuration for the given rates: deep
    /// queue, caching on, no aging, effectively unbounded dispatch.
    #[must_use]
    pub fn new(rates: DiscountRates) -> Self {
        ServeConfig {
            rates,
            queue_capacity: 64,
            cache_capacity: 256,
            aging: AgingPolicy::DISABLED,
            use_cache: true,
            dispatch_backlog: SimDuration::new(f64::INFINITY),
            audit_capacity: 256,
            use_repair: true,
            replan_on_revision: false,
        }
    }
}

/// A delivered query: its full evaluation against live calendar state.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// The completed query.
    pub query: QueryId,
    /// The delivered plan evaluation (latencies and IV include actual
    /// calendar queuing and any injected degradation).
    pub evaluation: PlanEvaluation,
    /// How long the query sat in the admission queue before dispatch.
    pub waited: SimDuration,
    /// IV lost to degradation: the fault-free planning bound minus the
    /// delivered IV, clamped at zero. Always zero when no fault plan is
    /// armed.
    pub iv_lost: f64,
    /// `true` if the dispatched plan was re-planned because its original
    /// choice spanned a site that an injected outage had taken down.
    pub replanned: bool,
}

/// What one [`ServeEngine::submit`] call did.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SubmitReport {
    /// Query shed by admission control, if any (possibly the submitted
    /// one).
    pub shed: Option<QueryId>,
    /// Queries dispatched and delivered during this step, in dispatch
    /// order.
    pub completed: Vec<Completion>,
}

/// Replay state of an armed [`FaultPlan`].
struct FaultState {
    plan: FaultPlan,
    revisions: RevisionCursor,
    next_outage: usize,
}

/// Builds the engine's planning context ([`NoQueues`], belief
/// timelines) inline, so the borrow checker sees disjoint field borrows
/// and mutation of `queue`/`cache` can overlap with it.
macro_rules! planning_ctx {
    ($engine:expr) => {
        PlanContext {
            catalog: $engine.catalog,
            timelines: &$engine.timelines,
            model: $engine.model,
            rates: $engine.config.rates,
            queues: &NoQueues,
        }
    };
    ($engine:expr, $queues:expr) => {
        PlanContext {
            catalog: $engine.catalog,
            timelines: &$engine.timelines,
            model: $engine.model,
            rates: $engine.config.rates,
            queues: $queues,
        }
    };
}

/// The online query-serving engine. See the module docs for the
/// pipeline.
pub struct ServeEngine<'a, C: Clock> {
    catalog: &'a Catalog,
    /// The published (fault-free) timelines.
    nominal: &'a SyncTimelines,
    /// The engine's timeline belief: borrows `nominal` until the first
    /// applied revision forces a private revised copy.
    timelines: Cow<'a, SyncTimelines>,
    model: &'a dyn CostModel,
    config: ServeConfig,
    clock: C,
    queue: AdmissionQueue,
    cache: PlanCache,
    facilities: FacilityQueues,
    cursor: SyncEventCursor,
    metrics: ServeMetrics,
    faults: Option<FaultState>,
    /// Dispatch-time plan searches run through this planner (sequential
    /// unless a pool is shared via
    /// [`ServeEngine::with_planner_pool`]).
    planner: ParallelPlanner,
    /// Sync-phase pruning frontiers reused across dispatch searches.
    /// Keyed by phase *offsets*, so timeline revisions never invalidate
    /// it, and only consulted under stateless-queue contexts (the
    /// [`NoQueues`] planning and nominal-bound paths — never the
    /// floored outage re-plan). Owned per engine by default; a cluster
    /// shares one across its shards via
    /// [`ServeEngine::with_phase_memo`] — the sharded memo makes that
    /// contention-cheap, and [`PhaseKey`](ivdss_core::memo::PhaseKey)
    /// carries the replicated footprint, so shards with different
    /// replication plans cannot collide.
    memo: Arc<PhaseMemo>,
    /// Candidate scores surviving from previous searches, reused by
    /// dispatch-time fresh searches (incremental re-planning). Only
    /// sound under the [`NoQueues`] planning context, and invalidated
    /// on every applied timeline revision — the floored outage re-plan
    /// and the nominal-bound search (different timelines!) bypass it.
    replan: ReplanCache,
    /// Storage-backed evaluation mode: when armed via
    /// [`ServeEngine::with_storage`], dispatch executes a real scan per
    /// local replica of the chosen plan and the delivered evaluation
    /// uses the measured local latency instead of the model's estimate.
    /// `None` (the default) is the pure analytic mode — byte-identical
    /// to the engine before storage existed.
    storage: Option<&'a StorageEngine>,
    /// Structured-event emission handle (disabled unless a trace is
    /// attached via [`ServeEngine::with_tracer`]).
    tracer: Tracer,
    /// Per-query plan-decision audits, bounded by
    /// [`ServeConfig::audit_capacity`].
    audits: AuditLog,
}

impl<'a, C: Clock> ServeEngine<'a, C> {
    /// Creates an engine over the given catalog, timelines and cost
    /// model, starting at the clock's current time.
    #[must_use]
    pub fn new(
        catalog: &'a Catalog,
        timelines: &'a SyncTimelines,
        model: &'a dyn CostModel,
        config: ServeConfig,
        clock: C,
    ) -> Self {
        let start = clock.now();
        ServeEngine {
            catalog,
            nominal: timelines,
            timelines: Cow::Borrowed(timelines),
            model,
            queue: AdmissionQueue::new(config.queue_capacity, config.aging),
            cache: PlanCache::new(config.cache_capacity),
            facilities: FacilityQueues::new(catalog.site_count()),
            cursor: SyncEventCursor::new(start),
            metrics: ServeMetrics::new(start),
            config,
            clock,
            faults: None,
            planner: ParallelPlanner::new(Arc::new(PlannerPool::sequential())),
            memo: Arc::new(PhaseMemo::new()),
            replan: ReplanCache::new(),
            storage: None,
            tracer: Tracer::disabled(),
            audits: AuditLog::new(config.audit_capacity),
        }
    }

    /// Shares a planner pool with this engine (builder-style): the
    /// dispatch-time plan searches — cache-off planning, outage
    /// re-planning and the fault-free IV bound — fan their candidate
    /// evaluation out over it. Plan choices are bit-identical to the
    /// sequential engine.
    #[must_use]
    pub fn with_planner_pool(mut self, pool: Arc<PlannerPool>) -> Self {
        self.planner = ParallelPlanner::new(pool);
        self
    }

    /// Shares a sync-phase memo with this engine (builder-style) — the
    /// cluster injects one memo into all its shard engines so
    /// frontiers recorded by any shard prune every shard's searches.
    /// Hit-for-hit behavior within one engine is unchanged: a shared
    /// memo can only *add* frontiers another engine recorded, and the
    /// frontier replay is bit-exact regardless of who recorded it.
    #[must_use]
    pub fn with_phase_memo(mut self, memo: Arc<PhaseMemo>) -> Self {
        self.memo = memo;
        self
    }

    /// Attaches a structured-event tracer (builder-style). The engine
    /// then emits the full pipeline trace — submissions, admission
    /// verdicts, sync deliveries, fault revisions, cache and search
    /// activity, dispatch→completion spans — into the tracer's shared
    /// [`Trace`](ivdss_obs::Trace). Identical seeded runs emit
    /// byte-identical traces; a disabled tracer (the default) costs one
    /// branch per would-be event.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Arms the storage-backed evaluation mode (builder-style): every
    /// dispatched plan's local tables are *actually scanned* through the
    /// record-page engine. Each scan emits `scan_started`/`scan_done`
    /// events, records a `(bytes, seconds)` calibration sample into the
    /// storage engine's recorder, and the summed measured latency
    /// replaces the model's local-processing estimate in the delivered
    /// evaluation (remote and transmission components stay modeled).
    /// Planning is untouched — plans are still *chosen* analytically, so
    /// the cache and memo soundness arguments are unchanged; only
    /// delivery is measured.
    #[must_use]
    pub fn with_storage(mut self, storage: &'a StorageEngine) -> Self {
        self.storage = Some(storage);
        self
    }

    /// Creates an engine that replays `faults` on top of the nominal
    /// timelines (see the module docs for the degradation semantics).
    /// The fault plan's horizon should cover the intended run length:
    /// once a table's timeline is revised it becomes a finite trace
    /// materialized out to that horizon.
    #[must_use]
    pub fn with_faults(
        catalog: &'a Catalog,
        timelines: &'a SyncTimelines,
        model: &'a dyn CostModel,
        config: ServeConfig,
        clock: C,
        faults: FaultPlan,
    ) -> Self {
        let start = clock.now();
        let mut engine = ServeEngine::new(catalog, timelines, model, config, clock);
        engine.faults = Some(FaultState {
            plan: faults,
            revisions: RevisionCursor::new(start),
            next_outage: 0,
        });
        engine
    }

    /// The engine's current time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Queries waiting in the admission queue.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Time until the local federation server's calendar has an idle
    /// instant at the engine's current time — the backlog the dispatch
    /// gate compares against [`ServeConfig::dispatch_backlog`].
    #[must_use]
    pub fn backlog(&self) -> SimDuration {
        self.local_backlog(self.clock.now())
    }

    /// The queries currently waiting for dispatch, in FIFO order.
    pub fn queued(&self) -> impl Iterator<Item = &QueuedQuery> {
        self.queue.iter()
    }

    /// Removes the youngest queued query for a work-stealing transfer
    /// to another engine. The youngest entry is the correct victim: it
    /// is last in FIFO order, so its departure never delays the queries
    /// ahead of it.
    pub fn steal_youngest(&mut self) -> Option<QueuedQuery> {
        let stolen = self.queue.pop_back();
        if stolen.is_some() {
            self.metrics
                .set_queue_depth(self.clock.now(), self.queue.len());
        }
        stolen
    }

    /// Drains the whole admission queue without dispatching — the
    /// shard-outage failover path: a cluster evacuates a down engine's
    /// queue and re-admits the entries elsewhere via
    /// [`ServeEngine::accept`].
    pub fn evacuate(&mut self) -> Vec<QueuedQuery> {
        let mut out = Vec::with_capacity(self.queue.len());
        while let Some(q) = self.queue.pop_front() {
            out.push(q);
        }
        if !out.is_empty() {
            self.metrics.set_queue_depth(self.clock.now(), 0);
        }
        out
    }

    /// The metrics registry.
    #[must_use]
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// The plan cache.
    #[must_use]
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// The live reservation calendars.
    #[must_use]
    pub fn facilities(&self) -> &FacilityQueues {
        &self.facilities
    }

    /// The engine's current timeline belief (the nominal timelines until
    /// a fault revision is applied).
    #[must_use]
    pub fn timelines(&self) -> &SyncTimelines {
        &self.timelines
    }

    /// The armed fault plan, if any.
    #[must_use]
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref().map(|f| &f.plan)
    }

    /// The armed storage engine, if the storage-backed evaluation mode
    /// is on.
    #[must_use]
    pub fn storage(&self) -> Option<&'a StorageEngine> {
        self.storage
    }

    /// The pool dispatch-time plan searches run on.
    #[must_use]
    pub fn planner_pool(&self) -> &Arc<PlannerPool> {
        self.planner.pool()
    }

    /// The sync-phase pruning memo (hit/miss counters for
    /// observability).
    #[must_use]
    pub fn memo(&self) -> &PhaseMemo {
        &self.memo
    }

    /// The memo as a shareable handle (what
    /// [`ServeEngine::with_phase_memo`] accepts).
    #[must_use]
    pub fn shared_memo(&self) -> Arc<PhaseMemo> {
        Arc::clone(&self.memo)
    }

    /// The incremental re-planning cache (hit/miss/invalidation
    /// counters for observability).
    #[must_use]
    pub fn replan_cache(&self) -> &ReplanCache {
        &self.replan
    }

    /// The engine's emission handle (disabled unless attached via
    /// [`ServeEngine::with_tracer`]).
    #[must_use]
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The retained plan-decision audits.
    #[must_use]
    pub fn audits(&self) -> &AuditLog {
        &self.audits
    }

    /// The most recent plan-decision audit for `query` — *why* the
    /// engine dispatched the plan it did.
    #[must_use]
    pub fn plan_audit(&self, query: QueryId) -> Option<&PlanAudit> {
        self.audits.get(query)
    }

    /// Freezes the metrics at the current time.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot(self.clock.now())
    }

    /// Prometheus-style text exposition: the serve metrics dump,
    /// followed — when a tracer is attached — by the trace's per-kind
    /// event counters and its derived latency/IV histograms.
    #[must_use]
    pub fn exposition(&self) -> String {
        let mut out = self.snapshot().to_text();
        if let Some(trace) = self.tracer.trace() {
            out.push_str(&trace.exposition());
        }
        out
    }

    /// Release floors of the sites currently inside an injected outage
    /// (empty without faults).
    fn current_floors(&self, now: SimTime) -> BTreeMap<SiteId, SimTime> {
        self.faults
            .as_ref()
            .map_or_else(BTreeMap::new, |f| f.plan.site_floors(now))
    }

    /// Applies due fault revisions to the timeline belief, counts outage
    /// windows that have opened, then delivers pending sync events to
    /// the cache's invalidator.
    ///
    /// Revisions are applied *before* the sync cursor advances, so a
    /// slipped or dropped completion is never delivered at its nominal
    /// time: the cursor walks the already-revised belief.
    fn sync_tick(&mut self, now: SimTime) -> Result<(), PlanError> {
        let mut revised: Vec<TableId> = Vec::new();
        if let Some(faults) = &mut self.faults {
            let due = faults.revisions.advance_to(faults.plan.revisions(), now);
            for revision in due {
                if self
                    .timelines
                    .to_mut()
                    .revise(revision, faults.plan.horizon())
                {
                    let evicted = self.cache.invalidate_table(revision.table);
                    self.metrics.record_cache_invalidations(evicted as u64);
                    // The replan cache keeps every candidate score the
                    // revision cannot have touched (its dirty floor);
                    // the invalidation is what keeps incremental
                    // re-planning bit-exact.
                    self.replan.invalidate_revision(revision);
                    if !revised.contains(&revision.table) {
                        revised.push(revision.table);
                    }
                    if revision.new_time.is_some() {
                        self.metrics.record_fault_slip();
                    } else {
                        self.metrics.record_fault_drop();
                    }
                    self.tracer.emit_with(now, || EventKind::RevisionApplied {
                        table: revision.table,
                        scheduled: revision.scheduled,
                        new_time: revision.new_time,
                        evicted,
                    });
                }
            }
            let outages = faults.plan.outages();
            while faults.next_outage < outages.len() && outages[faults.next_outage].start <= now {
                let outage = outages[faults.next_outage];
                faults.next_outage += 1;
                self.metrics.record_fault_outage();
                self.tracer.emit_with(now, || EventKind::OutageStarted {
                    site: outage.site,
                    until: outage.end,
                });
            }
        }
        let events = self
            .cursor
            .advance_observed(&self.timelines, now, &self.tracer);
        if !events.is_empty() {
            let evicted = self.cache.apply_sync_events(&events);
            self.metrics.record_cache_invalidations(evicted as u64);
            if evicted > 0 {
                self.tracer
                    .emit_with(now, || EventKind::CacheInvalidated { evicted });
            }
        }
        self.metrics.set_cache_size(self.cache.len());
        if self.config.replan_on_revision {
            self.repair_queued(now, &revised)?;
        }
        Ok(())
    }

    /// Proactively repairs the plans of queued queries whose footprint
    /// touches a just-revised table: each runs an incremental repaired
    /// search *now* (scores outside the revision's dirty window are
    /// reused, the dirty ones recomputed), leaving the replan cache warm
    /// for its dispatch-time search. One `plan_repaired` event per
    /// repaired query reports how much survived.
    fn repair_queued(&mut self, now: SimTime, revised: &[TableId]) -> Result<(), PlanError> {
        if revised.is_empty() || self.queue.is_empty() {
            return Ok(());
        }
        let affected: Vec<QueryRequest> = self
            .queue
            .iter()
            .filter(|q| q.request.query.tables().iter().any(|t| revised.contains(t)))
            .map(|q| q.request.clone())
            .collect();
        for request in affected {
            let query = request.id();
            let before = self.replan.stats();
            // The inner search is deliberately unobserved: the repair is
            // a warm-up, and the dispatch-time search re-emits the full
            // search trace exactly as without repair.
            self.planner.search_repaired_observed(
                &planning_ctx!(self),
                &request,
                request.submitted_at,
                Some(&self.memo),
                Some(&self.replan),
                &Tracer::disabled(),
                None,
            )?;
            let after = self.replan.stats();
            let reused = after.hits - before.hits;
            let recomputed = after.misses - before.misses;
            self.tracer.emit_with(now, || EventKind::PlanRepaired {
                query,
                reused,
                recomputed,
            });
        }
        Ok(())
    }

    /// Moves the engine's clock to `to` (if in the future), delivering
    /// sync events and dispatching whatever the backlog bound now
    /// admits.
    ///
    /// # Errors
    ///
    /// Propagates [`PlanError`] from planning a dispatched query.
    pub fn advance_to(&mut self, to: SimTime) -> Result<Vec<Completion>, PlanError> {
        self.clock.advance_to(to);
        let now = self.clock.now();
        self.sync_tick(now)?;
        self.pump(now, false)
    }

    /// Submits a query: admission, planning, dispatch. The clock is
    /// advanced to the request's submission time first.
    ///
    /// Admission estimates marginal IV under the *degraded* topology:
    /// the belief timelines plus release floors for sites currently in
    /// an outage, so a query whose fallback depends on a down site ranks
    /// honestly low.
    ///
    /// # Errors
    ///
    /// Propagates [`PlanError`] from planning a dispatched query.
    pub fn submit(&mut self, request: QueryRequest) -> Result<SubmitReport, PlanError> {
        self.clock.advance_to(request.submitted_at);
        let now = self.clock.now();
        self.sync_tick(now)?;
        self.metrics.record_submitted();

        let floors = self.current_floors(now);
        let floored = SiteFloors::new(&NoQueues, floors);
        let submitted_id = request.id();
        let business_value = request.business_value.value();
        self.tracer.emit_with(now, || EventKind::Submitted {
            query: submitted_id,
            business_value,
        });
        let outcome = self
            .queue
            .offer(&planning_ctx!(self, &floored), request, now);
        let shed = self.note_admission(outcome, submitted_id, now);
        let completed = self.pump(now, false)?;
        Ok(SubmitReport { shed, completed })
    }

    /// Accepts a query handed over from another engine of a sharded
    /// cluster — a work-stealing transfer or a shard-outage failover.
    /// The entry keeps its original enqueue time (waiting and §3.3
    /// aging accounting stay honest) and passes through the same
    /// IV-aware admission policy as a fresh arrival, but is *not*
    /// counted as a new submission: the shard it was routed to already
    /// counted it.
    ///
    /// # Errors
    ///
    /// Propagates [`PlanError`] from planning a dispatched query.
    pub fn accept(&mut self, queued: QueuedQuery) -> Result<SubmitReport, PlanError> {
        let now = self.clock.now();
        self.sync_tick(now)?;
        let floors = self.current_floors(now);
        let floored = SiteFloors::new(&NoQueues, floors);
        let arrival = queued.request.id();
        let outcome = self.queue.push(&planning_ctx!(self, &floored), queued, now);
        let shed = self.note_admission(outcome, arrival, now);
        let completed = self.pump(now, false)?;
        Ok(SubmitReport { shed, completed })
    }

    /// Records the metrics and trace event of an admission outcome;
    /// returns the shed victim, if any.
    fn note_admission(
        &mut self,
        outcome: AdmitOutcome,
        arrival: QueryId,
        now: SimTime,
    ) -> Option<QueryId> {
        let (shed, verdict, shed_marginal_iv) = match outcome {
            AdmitOutcome::Admitted => {
                self.metrics.record_admitted();
                (None, AdmissionVerdict::Admitted, None)
            }
            AdmitOutcome::AdmittedAfterShedding {
                shed,
                shed_marginal_iv,
            } => {
                self.metrics.record_admitted();
                self.metrics.record_shed(shed_marginal_iv);
                (
                    Some(shed),
                    AdmissionVerdict::AdmittedAfterShedding,
                    Some(shed_marginal_iv),
                )
            }
            AdmitOutcome::Rejected { marginal_iv } => {
                // The arrival itself was the lowest-value query.
                self.metrics.record_shed(marginal_iv);
                (Some(arrival), AdmissionVerdict::Rejected, Some(marginal_iv))
            }
        };
        let depth = self.queue.len();
        self.tracer.emit_with(now, || EventKind::Admission {
            query: arrival,
            verdict,
            shed,
            shed_marginal_iv,
            depth,
        });
        shed
    }

    /// Dispatches queued queries while the backlog bound admits them
    /// (or unconditionally when `force` is set).
    fn pump(&mut self, now: SimTime, force: bool) -> Result<Vec<Completion>, PlanError> {
        let mut completed = Vec::new();
        while self.queue.peek().is_some() {
            if !force && self.local_backlog(now) > self.config.dispatch_backlog {
                break;
            }
            let queued = self.queue.pop_front().expect("peeked entry exists");
            completed.push(self.dispatch(queued, now)?);
        }
        self.metrics.set_queue_depth(now, self.queue.len());
        Ok(completed)
    }

    /// Time until the local federation server's calendar has an idle
    /// instant at or after `now`.
    fn local_backlog(&self, now: SimTime) -> SimDuration {
        (self.facilities.local().probe(now, SimDuration::ZERO).start - now).clamp_non_negative()
    }

    /// The remote footprint of a chosen plan.
    fn remote_tables(request: &QueryRequest, planned: &PlanEvaluation) -> Vec<TableId> {
        request
            .query
            .tables()
            .iter()
            .copied()
            .filter(|t| !planned.local_tables.contains(t))
            .collect()
    }

    /// Plans and dispatches one query against the live calendars.
    fn dispatch(&mut self, queued: QueuedQuery, now: SimTime) -> Result<Completion, PlanError> {
        let request = queued.request;
        let query = request.id();
        let collect_audit = !self.audits.is_disabled();
        let mut search_audit: Option<SearchAudit> = None;
        let mut source;
        let planned = if self.config.use_cache {
            let (eval, outcome) = self.cache.plan(&planning_ctx!(self), &request)?;
            let hit = matches!(outcome, CacheOutcome::Hit);
            self.tracer
                .emit_with(now, || EventKind::CacheLookup { query, hit });
            match outcome {
                CacheOutcome::Hit => self.metrics.record_cache_hit(),
                CacheOutcome::Miss => self.metrics.record_cache_miss(),
            }
            self.metrics.set_cache_size(self.cache.len());
            source = if hit {
                PlanSource::CacheHit
            } else {
                PlanSource::CacheMiss
            };
            eval
        } else {
            // NoQueues context → the sync-phase memo and the replan
            // cache are both sound here. Repair is transparent: the
            // outcome, counters and emitted search events are
            // bit-identical with or without it.
            source = PlanSource::FreshSearch;
            let mut audit = collect_audit.then(SearchAudit::default);
            let repair = self.config.use_repair.then_some(&self.replan);
            let best = self
                .planner
                .search_repaired_observed(
                    &planning_ctx!(self),
                    &request,
                    request.submitted_at,
                    Some(&self.memo),
                    repair,
                    &self.tracer,
                    audit.as_mut(),
                )?
                .best;
            search_audit = audit;
            best
        };

        // Outage-aware re-planning: if the chosen plan would span a site
        // that is down at its release, re-plan with the floors visible so
        // replica-only and delayed options can win on merit. The cache is
        // bypassed — floors are queue state, which its key cannot carry.
        let floors = self.current_floors(now);
        let mut replanned = false;
        let planned = if floors.is_empty() {
            planned
        } else {
            let release = planned.execute_at.max(now);
            let remote = Self::remote_tables(&request, &planned);
            let hits_outage = !remote.is_empty()
                && self
                    .catalog
                    .sites_spanned(&remote)
                    .into_iter()
                    .any(|site| floors.get(&site).is_some_and(|&floor| floor > release));
            if hits_outage {
                replanned = true;
                self.metrics.record_fault_replan();
                let floored_sites = floors.len();
                self.tracer.emit_with(now, || EventKind::Replanned {
                    query,
                    floored_sites,
                });
                source = PlanSource::OutageReplan;
                let floored = SiteFloors::new(&NoQueues, floors.clone());
                // Floors are time-dependent queue state → memo unsound;
                // the pool still parallelizes the candidate evaluation.
                let mut audit = collect_audit.then(SearchAudit::default);
                let best = self
                    .planner
                    .search_from_observed(
                        &planning_ctx!(self, &floored),
                        &request,
                        now,
                        &self.tracer,
                        audit.as_mut(),
                    )?
                    .best;
                search_audit = audit;
                best
            } else {
                planned
            }
        };

        // Storage-backed mode: execute a real scan per local replica of
        // the chosen plan. Measured latency is a deterministic function
        // of the access counts (device profile), so traces stay
        // reproducible; each scan also contributes a calibration sample
        // to the storage engine's recorder.
        let mut measured_local: Option<SimDuration> = None;
        if let Some(storage) = self.storage {
            let mut total = SimDuration::ZERO;
            for &table in planned
                .local_tables
                .iter()
                .filter(|t| storage.has_table(**t))
            {
                let (blocks_est, records_est) = storage.scan_estimates(table);
                self.tracer.emit_with(now, || EventKind::ScanStarted {
                    query,
                    table,
                    blocks_est,
                    records_est,
                });
                let m = storage.execute_table_scan(table);
                storage.record_sample(m.bytes as f64, m.seconds);
                total += SimDuration::new(m.seconds);
                self.tracer.emit_with(now, || EventKind::ScanDone {
                    query,
                    table,
                    blocks: m.blocks,
                    records: m.records,
                    seconds: m.seconds,
                });
            }
            measured_local = Some(total);
        }

        // Re-evaluate the chosen candidate against live calendar state:
        // the delivered IV must pay for real queuing — and, under faults,
        // for outage floors and cost jitter.
        let release = planned.execute_at.max(now);
        let jittered;
        let live_model: &dyn CostModel = match &self.faults {
            Some(faults) => {
                let factor = faults.plan.jitter_factor(query);
                if factor != 1.0 {
                    self.tracer
                        .emit_with(now, || EventKind::JitterApplied { query, factor });
                }
                jittered = JitteredCostModel::new(self.model, &faults.plan);
                &jittered
            }
            None => self.model,
        };
        let measured_override;
        let live_model: &dyn CostModel = match measured_local {
            Some(measured) => {
                measured_override = MeasuredLocalCost::new(live_model, measured);
                &measured_override
            }
            None => live_model,
        };
        let live_queues = SiteFloors::new(&self.facilities, floors.clone());
        let live_ctx = PlanContext {
            catalog: self.catalog,
            timelines: &self.timelines,
            model: live_model,
            rates: self.config.rates,
            queues: &live_queues,
        };
        let delivered = evaluate_plan(&live_ctx, &request, release, &planned.local_tables)?;

        // Commit the reservations the estimator just probed, mirroring
        // evaluate_plan's participation rule: the local server always
        // serves the plan's local work and result reception; each site a
        // remote table lives on serves the remote processing, no earlier
        // than its outage floor.
        let cost = delivered.cost;
        self.facilities
            .local_mut()
            .book(release, cost.local_service());
        let remote = Self::remote_tables(&request, &planned);
        if !remote.is_empty() {
            for site in self.catalog.sites_spanned(&remote) {
                let site_release = floors
                    .get(&site)
                    .map_or(release, |&floor| release.max(floor));
                self.facilities
                    .remote_mut(site)
                    .book(site_release, cost.remote_processing);
            }
        }

        // Under faults, measure what the degradation cost this query:
        // the IV an unfaulted planner (nominal timelines, no queues, no
        // jitter) could have promised at the same dispatch instant,
        // minus what was actually delivered.
        let mut iv_lost = 0.0;
        if self.faults.is_some() {
            let nominal_ctx = PlanContext {
                catalog: self.catalog,
                timelines: self.nominal,
                model: self.model,
                rates: self.config.rates,
                queues: &NoQueues,
            };
            // NoQueues again — and the memo keys phase *offsets*, so the
            // nominal and revised-belief timelines share frontiers
            // whenever their phases line up.
            let ideal = self
                .planner
                .search_memoized(&nominal_ctx, &request, now, &self.memo)?
                .best;
            iv_lost =
                (ideal.information_value.value() - delivered.information_value.value()).max(0.0);
            self.metrics.record_fault_iv_lost(iv_lost);
        }

        self.metrics.record_completion(
            delivered.latencies.computational,
            delivered.latencies.synchronization,
            delivered.information_value.value(),
        );
        let waited = (now - queued.enqueued_at).clamp_non_negative();
        self.tracer
            .emit_with(delivered.finish, || EventKind::Completed {
                query,
                waited,
                release,
                service_start: delivered.service_start,
                finish: delivered.finish,
                cl: delivered.latencies.computational,
                sl: delivered.latencies.synchronization,
                planned_iv: planned.information_value.value(),
                delivered_iv: delivered.information_value.value(),
                iv_lost,
                replanned,
            });
        if collect_audit {
            self.audits.push(PlanAudit {
                query,
                decided_at: now,
                source,
                search: search_audit,
                chosen_release: planned.execute_at,
                chosen_local: planned.local_tables.iter().copied().collect(),
                planned_iv: planned.information_value.value(),
            });
        }
        Ok(Completion {
            query,
            evaluation: delivered,
            waited,
            iv_lost,
            replanned,
        })
    }

    /// Dispatches everything still queued, ignoring the backlog bound.
    ///
    /// # Errors
    ///
    /// Propagates [`PlanError`] from planning a dispatched query.
    pub fn drain(&mut self) -> Result<Vec<Completion>, PlanError> {
        let now = self.clock.now();
        self.sync_tick(now)?;
        self.pump(now, true)
    }

    /// Groups the currently queued queries into §3.2 batch windows
    /// (connected components of overlapping execution ranges), the seam
    /// to multi-query optimization.
    ///
    /// # Errors
    ///
    /// Propagates [`PlanError`] from the per-query range search.
    pub fn batch_windows(&self) -> Result<Vec<Vec<QueryId>>, PlanError> {
        let pending: Vec<QueryRequest> = self.queue.iter().map(|q| q.request.clone()).collect();
        live_batch_windows(&planning_ctx!(self), &pending, self.clock.now())
    }
}
