//! Time sources for the serving engine.
//!
//! The engine is written against one small [`Clock`] trait so the same
//! code runs in two worlds:
//!
//! * [`DesClock`] — discrete-event simulated time. Tests, benches and the
//!   load generator drive it explicitly, so every run is deterministic
//!   and a million simulated minutes cost nothing to "wait" through.
//! * [`WallClock`] — real elapsed time since construction, for running
//!   the engine against live arrivals. Advancing it is a no-op: wall
//!   time moves on its own.
//!
//! Simulated time is in the same unit as the rest of the workspace
//! (minutes, per the paper's figures). `WallClock` converts real
//! elapsed seconds into that unit by a fixed `units_per_second` scale —
//! see [`WallClock::with_scale`] for the exact mapping and the two
//! interesting boundary scales (`1.0` and `60.0`).

use std::time::Instant;

use ivdss_simkernel::time::SimTime;

/// A monotone source of "now" for the serving engine.
pub trait Clock {
    /// The current time.
    fn now(&self) -> SimTime;

    /// Moves the clock forward to `to` if that is in the future;
    /// otherwise leaves it unchanged. Real-time clocks ignore this.
    fn advance_to(&mut self, to: SimTime);
}

/// Deterministic discrete-event clock: time moves only when advanced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct DesClock {
    now: SimTime,
}

impl DesClock {
    /// Creates a clock at [`SimTime::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        DesClock::default()
    }

    /// Creates a clock at `start`.
    #[must_use]
    pub fn starting_at(start: SimTime) -> Self {
        DesClock { now: start }
    }
}

impl Clock for DesClock {
    fn now(&self) -> SimTime {
        self.now
    }

    fn advance_to(&mut self, to: SimTime) {
        self.now = self.now.max(to);
    }
}

/// Real elapsed time since construction, scaled into simulation units.
#[derive(Debug, Clone, Copy)]
pub struct WallClock {
    origin: Instant,
    units_per_second: f64,
}

impl WallClock {
    /// The scale at which one simulation time unit (one paper minute)
    /// elapses per real *minute* — true real-time operation.
    pub const REAL_TIME_SCALE: f64 = 1.0 / 60.0;

    /// Creates a wall clock at the default scale `1.0`: one real
    /// **second** advances the simulation by one time *unit* — i.e. one
    /// paper *minute* — so the system replays 60× faster than real
    /// time. Use [`WallClock::real_time`] for 1:1 operation.
    #[must_use]
    pub fn new() -> Self {
        WallClock::with_scale(1.0)
    }

    /// Creates a wall clock running at true real time: one real minute
    /// is one simulation time unit (one paper minute), so latencies
    /// read off this clock are directly comparable to the paper's
    /// minute-based figures.
    #[must_use]
    pub fn real_time() -> Self {
        WallClock::with_scale(WallClock::REAL_TIME_SCALE)
    }

    /// Creates a wall clock where one real second is `units_per_second`
    /// simulation time units.
    ///
    /// Because the workspace's time unit is the paper's **minute**, the
    /// scale is a replay-speed factor of `60 × units_per_second`:
    ///
    /// | `units_per_second` | 1 real second advances | replay speed |
    /// |---|---|---|
    /// | `1/60` ([`WallClock::real_time`]) | 1 sim second | 1× (real time) |
    /// | `1.0` ([`WallClock::new`]) | 1 sim minute | 60× |
    /// | `60.0` | 1 sim hour (60 units) | 3600× |
    ///
    /// When interpreting network-serving latency numbers against the
    /// paper's figures, divide measured *real* seconds by 60 and
    /// multiply by the scale to recover simulation minutes — or just
    /// read [`Clock::now`], which already reports units.
    ///
    /// # Panics
    ///
    /// Panics if the scale is not finite and positive.
    #[must_use]
    pub fn with_scale(units_per_second: f64) -> Self {
        assert!(
            units_per_second.is_finite() && units_per_second > 0.0,
            "clock scale must be finite and positive"
        );
        WallClock {
            origin: Instant::now(),
            units_per_second,
        }
    }

    /// The configured scale: simulation time units (paper minutes) per
    /// real second.
    #[must_use]
    pub fn units_per_second(&self) -> f64 {
        self.units_per_second
    }

    /// Real time elapsed since this clock's origin — the denominator
    /// for converting a [`Clock::now`] reading back to wall seconds.
    #[must_use]
    pub fn real_elapsed(&self) -> std::time::Duration {
        self.origin.elapsed()
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> SimTime {
        SimTime::new(self.origin.elapsed().as_secs_f64() * self.units_per_second)
    }

    fn advance_to(&mut self, _to: SimTime) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn des_clock_is_explicit_and_monotone() {
        let mut clock = DesClock::new();
        assert_eq!(clock.now(), SimTime::ZERO);
        clock.advance_to(SimTime::new(5.0));
        assert_eq!(clock.now(), SimTime::new(5.0));
        // Backwards advances are ignored, not applied.
        clock.advance_to(SimTime::new(2.0));
        assert_eq!(clock.now(), SimTime::new(5.0));
    }

    #[test]
    fn des_clock_can_start_late() {
        let clock = DesClock::starting_at(SimTime::new(100.0));
        assert_eq!(clock.now(), SimTime::new(100.0));
    }

    #[test]
    fn wall_clock_moves_on_its_own() {
        let mut clock = WallClock::with_scale(60.0);
        let a = clock.now();
        clock.advance_to(SimTime::new(1e9)); // ignored
        std::thread::sleep(std::time::Duration::from_millis(5));
        let b = clock.now();
        assert!(b > a);
        assert!(b < SimTime::new(1e9));
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn wall_clock_rejects_bad_scale() {
        let _ = WallClock::with_scale(0.0);
    }

    /// At the default scale `1.0`, one real second is one time unit —
    /// one paper *minute*, not one paper second. Verified over a short
    /// real sleep: elapsed units must equal elapsed real seconds (×1)
    /// within generous scheduling slack.
    #[test]
    fn wall_clock_scale_one_maps_seconds_to_units() {
        let clock = WallClock::new();
        assert_eq!(clock.units_per_second(), 1.0);
        std::thread::sleep(std::time::Duration::from_millis(20));
        let units = clock.now().value();
        let real = clock.real_elapsed().as_secs_f64();
        // now() and real_elapsed() are separate Instant reads, so allow
        // slack both ways.
        assert!(units >= 0.02, "slept 20ms, read {units} units");
        assert!(
            (units - real).abs() <= 0.5,
            "scale 1.0 should track real seconds 1:1, got {units} units over {real}s"
        );
    }

    /// At scale `60.0`, one real second is 60 units (a paper hour):
    /// the 60× clock must read ~60× what a scale-1 clock started at the
    /// same moment reads.
    #[test]
    fn wall_clock_scale_sixty_runs_sixty_times_faster() {
        let fast = WallClock::with_scale(60.0);
        let slow = WallClock::new();
        assert_eq!(fast.units_per_second(), 60.0);
        std::thread::sleep(std::time::Duration::from_millis(20));
        let fast_units = fast.now().value();
        let slow_units = slow.now().value();
        assert!(fast_units >= 60.0 * 0.02);
        // Construction of the two clocks is microseconds apart; the
        // ratio over a 20ms window is robustly near 60.
        let ratio = fast_units / slow_units;
        assert!(
            (30.0..=120.0).contains(&ratio),
            "expected ~60x ratio, got {ratio}"
        );
    }

    /// `real_time()` is the 1:1 mapping: one real *minute* per time
    /// unit, i.e. `1/60` units per second.
    #[test]
    fn wall_clock_real_time_parity_scale() {
        let clock = WallClock::real_time();
        assert_eq!(clock.units_per_second(), WallClock::REAL_TIME_SCALE);
        assert!((WallClock::REAL_TIME_SCALE * 60.0 - 1.0).abs() < 1e-12);
    }
}
