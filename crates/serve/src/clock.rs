//! Time sources for the serving engine.
//!
//! The engine is written against one small [`Clock`] trait so the same
//! code runs in two worlds:
//!
//! * [`DesClock`] — discrete-event simulated time. Tests, benches and the
//!   load generator drive it explicitly, so every run is deterministic
//!   and a million simulated minutes cost nothing to "wait" through.
//! * [`WallClock`] — real elapsed time since construction, for running
//!   the engine against live arrivals. Advancing it is a no-op: wall
//!   time moves on its own.
//!
//! Simulated time is in the same unit as the rest of the workspace
//! (minutes, per the paper's figures); `WallClock` maps one real second
//! to one simulated minute's worth of time unit by default and accepts a
//! custom scale for faster replay.

use std::time::Instant;

use ivdss_simkernel::time::SimTime;

/// A monotone source of "now" for the serving engine.
pub trait Clock {
    /// The current time.
    fn now(&self) -> SimTime;

    /// Moves the clock forward to `to` if that is in the future;
    /// otherwise leaves it unchanged. Real-time clocks ignore this.
    fn advance_to(&mut self, to: SimTime);
}

/// Deterministic discrete-event clock: time moves only when advanced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct DesClock {
    now: SimTime,
}

impl DesClock {
    /// Creates a clock at [`SimTime::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        DesClock::default()
    }

    /// Creates a clock at `start`.
    #[must_use]
    pub fn starting_at(start: SimTime) -> Self {
        DesClock { now: start }
    }
}

impl Clock for DesClock {
    fn now(&self) -> SimTime {
        self.now
    }

    fn advance_to(&mut self, to: SimTime) {
        self.now = self.now.max(to);
    }
}

/// Real elapsed time since construction, scaled into simulation units.
#[derive(Debug, Clone, Copy)]
pub struct WallClock {
    origin: Instant,
    units_per_second: f64,
}

impl WallClock {
    /// Creates a wall clock where one real second is one time unit.
    #[must_use]
    pub fn new() -> Self {
        WallClock::with_scale(1.0)
    }

    /// Creates a wall clock where one real second is `units_per_second`
    /// simulation time units.
    ///
    /// # Panics
    ///
    /// Panics if the scale is not finite and positive.
    #[must_use]
    pub fn with_scale(units_per_second: f64) -> Self {
        assert!(
            units_per_second.is_finite() && units_per_second > 0.0,
            "clock scale must be finite and positive"
        );
        WallClock {
            origin: Instant::now(),
            units_per_second,
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> SimTime {
        SimTime::new(self.origin.elapsed().as_secs_f64() * self.units_per_second)
    }

    fn advance_to(&mut self, _to: SimTime) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn des_clock_is_explicit_and_monotone() {
        let mut clock = DesClock::new();
        assert_eq!(clock.now(), SimTime::ZERO);
        clock.advance_to(SimTime::new(5.0));
        assert_eq!(clock.now(), SimTime::new(5.0));
        // Backwards advances are ignored, not applied.
        clock.advance_to(SimTime::new(2.0));
        assert_eq!(clock.now(), SimTime::new(5.0));
    }

    #[test]
    fn des_clock_can_start_late() {
        let clock = DesClock::starting_at(SimTime::new(100.0));
        assert_eq!(clock.now(), SimTime::new(100.0));
    }

    #[test]
    fn wall_clock_moves_on_its_own() {
        let mut clock = WallClock::with_scale(60.0);
        let a = clock.now();
        clock.advance_to(SimTime::new(1e9)); // ignored
        std::thread::sleep(std::time::Duration::from_millis(5));
        let b = clock.now();
        assert!(b > a);
        assert!(b < SimTime::new(1e9));
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn wall_clock_rejects_bad_scale() {
        let _ = WallClock::with_scale(0.0);
    }
}
