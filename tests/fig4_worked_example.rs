//! Integration test: the paper's Fig. 4 worked example, end to end
//! through the facade crate.

use ivdss::dsim::experiments::fig4::{fig4_setup, run_fig4};
use ivdss::prelude::*;

#[test]
fn scatter_step_matches_paper() {
    let r = run_fig4();
    // "the information value using {T1, T2, T3, T4} is
    //  BusinessValue × (1 − 0.1)^10 × (1 − 0.1)^10"
    assert!((r.all_remote.information_value.value() - 0.9f64.powi(20)).abs() < 1e-12);
    assert_eq!(r.all_remote.latencies.computational.value(), 10.0);
    assert_eq!(r.all_remote.latencies.synchronization.value(), 10.0);
    // "the searching boundary (b) is 11 + 20 = 31"
    assert!((r.first_boundary.value() - 31.0).abs() < 1e-9);
}

#[test]
fn search_is_optimal_and_prunes() {
    let r = run_fig4();
    assert!(
        (r.search.best.information_value.value() - r.oracle.best.information_value.value()).abs()
            < 1e-12,
        "scatter-gather must find the oracle optimum"
    );
    assert!(r.search.plans_explored <= r.oracle.plans_explored);
    assert!(r.search.sync_points_visited >= 1, "gather phase must run");
}

#[test]
fn stylized_costs_match_paper() {
    // "the computation time is 2 if the query evaluation only uses the
    //  replications and 4, 6, 8, and 10 if the query evaluation involves
    //  1, 2, 3, and 4 base tables"
    let setup = fig4_setup();
    let model = StylizedCostModel::paper_fig4();
    let compiled = CompiledQuery::compile(&setup.catalog, &model, setup.request.query.clone());
    assert_eq!(compiled.combination_count(), 16);
    assert_eq!(compiled.all_remote_cost().total().value(), 10.0);
    assert_eq!(compiled.all_local_cost().unwrap().total().value(), 2.0);
}

#[test]
fn delayed_plans_enter_the_plan_space() {
    // Under a staleness-heavy preference the optimal Fig. 4 plan waits
    // for a future synchronization (the paper's Fig. 2 scenario).
    let setup = fig4_setup();
    let model = StylizedCostModel::paper_fig4();
    let ctx = PlanContext {
        catalog: &setup.catalog,
        timelines: &setup.timelines,
        model: &model,
        rates: DiscountRates::new(0.01, 0.3),
        queues: &NoQueues,
    };
    let outcome = ScatterGatherSearch::new()
        .search(&ctx, &setup.request)
        .unwrap();
    assert!(
        outcome.best.execute_at > setup.request.submitted_at || outcome.best.is_all_remote(),
        "staleness-sensitive optimum must delay or read base tables"
    );
}
