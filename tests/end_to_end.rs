//! End-to-end integration tests: the full pipeline — catalog →
//! replication timelines → cost model → planner → simulator → metrics —
//! across crate boundaries.

use ivdss::prelude::*;

fn tpch_env() -> (
    ivdss::catalog::Catalog,
    ivdss::replication::SyncTimelines,
    AnalyticCostModel,
) {
    let catalog = tpch_catalog(&TpchConfig::default()).unwrap();
    let timelines = SyncTimelines::from_plan(
        catalog.replication(),
        SyncMode::Stochastic {
            horizon: SimTime::new(10_000.0),
            seed: 42,
        },
    );
    (catalog, timelines, AnalyticCostModel::paper_scale())
}

#[test]
fn tpch_stream_completes_with_positive_iv() {
    let (catalog, timelines, model) = tpch_env();
    let env = Environment {
        catalog: &catalog,
        timelines: &timelines,
        model: &model,
        rates: DiscountRates::new(0.01, 0.01),
        loading: Some(ReplicaLoading::paper_scale()),
    };
    let requests = ArrivalStream::new(tpch_query_specs(), 20.0, 7).take_requests(66);
    let metrics = run_arrival_driven(&env, &IvqpPlanner::new(), &requests).unwrap();
    assert_eq!(metrics.len(), 66);
    assert!(metrics.mean_information_value() > 0.0);
    assert!(metrics.mean_computational_latency() > 0.0);
    // Near-real-time regime: minutes, not hours.
    assert!(
        metrics.mean_computational_latency() < 60.0,
        "mean CL {} should stay within the hour",
        metrics.mean_computational_latency()
    );
}

#[test]
fn simulation_is_deterministic_end_to_end() {
    let (catalog, timelines, model) = tpch_env();
    let run = || {
        let env = Environment {
            catalog: &catalog,
            timelines: &timelines,
            model: &model,
            rates: DiscountRates::new(0.05, 0.01),
            loading: Some(ReplicaLoading::paper_scale()),
        };
        let requests = ArrivalStream::new(tpch_query_specs(), 20.0, 9).take_requests(44);
        run_arrival_driven(&env, &IvqpPlanner::new(), &requests).unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "identical seeds must reproduce identical runs");
}

#[test]
fn ivqp_dominates_baselines_on_shared_infrastructure() {
    // On the SAME catalog (here: everything replicated), IVQP's plan
    // space contains both baselines, so per query it must never deliver
    // less information value.
    let catalog = tpch_catalog(&TpchConfig::default()).unwrap();
    let full = catalog
        .with_replication(ReplicationPlan::full(catalog.table_ids(), 2.0))
        .unwrap();
    let timelines = SyncTimelines::from_plan(
        full.replication(),
        SyncMode::Stochastic {
            horizon: SimTime::new(10_000.0),
            seed: 5,
        },
    );
    let model = AnalyticCostModel::paper_scale();
    let rates = DiscountRates::new(0.02, 0.03);
    let ctx = PlanContext {
        catalog: &full,
        timelines: &timelines,
        model: &model,
        rates,
        queues: &NoQueues,
    };
    for (i, spec) in tpch_query_specs().into_iter().enumerate() {
        let request = QueryRequest::new(spec, SimTime::new(10.0 + 3.0 * i as f64));
        let ivqp = IvqpPlanner::new().select_plan(&ctx, &request).unwrap();
        let fed = FederationPlanner::new()
            .select_plan(&ctx, &request)
            .unwrap();
        let dw = WarehousePlanner::new().select_plan(&ctx, &request).unwrap();
        let best = fed
            .information_value
            .value()
            .max(dw.information_value.value());
        assert!(
            ivqp.information_value.value() >= best - 1e-12,
            "query {}: IVQP {} < best baseline {}",
            request.query,
            ivqp.information_value,
            best
        );
    }
}

#[test]
fn mqo_improves_contended_tpch_burst() {
    let (catalog, timelines, model) = tpch_env();
    let rates = DiscountRates::new(0.15, 0.15);
    // A burst of 6 TPC-H reports within three minutes.
    let requests: Vec<QueryRequest> = tpch_query_specs()
        .into_iter()
        .take(6)
        .enumerate()
        .map(|(i, spec)| QueryRequest::new(spec, SimTime::new(50.0 + 0.5 * i as f64)))
        .collect();
    let evaluator = WorkloadEvaluator::new(&catalog, &timelines, &model, rates, &requests);
    let mqo = MqoScheduler::new().schedule(&evaluator).unwrap();
    let fifo = FifoScheduler::new().schedule(&evaluator).unwrap();
    assert!(mqo.total_information_value >= fifo.total_information_value - 1e-9);
}

#[test]
fn workload_formation_pipeline() {
    let (catalog, timelines, model) = tpch_env();
    let ctx = PlanContext {
        catalog: &catalog,
        timelines: &timelines,
        model: &model,
        rates: DiscountRates::new(0.05, 0.05),
        queues: &NoQueues,
    };
    // Two bursts far apart: expect at least two workload groups.
    let mut requests: Vec<QueryRequest> = tpch_query_specs()
        .into_iter()
        .take(3)
        .enumerate()
        .map(|(i, s)| QueryRequest::new(s, SimTime::new(10.0 + 0.5 * i as f64)))
        .collect();
    requests.extend(
        tpch_query_specs()
            .into_iter()
            .skip(3)
            .take(3)
            .enumerate()
            .map(|(i, s)| QueryRequest::new(s, SimTime::new(5_000.0 + 0.5 * i as f64))),
    );
    let ranges = ivdss::mqo::execution_ranges(&ctx, &requests).unwrap();
    let groups = form_workloads(&ranges);
    assert!(
        groups.len() >= 2,
        "distant bursts must form separate workloads"
    );
    let total: usize = groups.iter().map(Vec::len).sum();
    assert_eq!(total, 6);
}

#[test]
fn prioritized_discipline_serves_everyone() {
    let (catalog, timelines, model) = tpch_env();
    let rates = DiscountRates::new(0.02, 0.02);
    let env = Environment {
        catalog: &catalog,
        timelines: &timelines,
        model: &model,
        rates,
        loading: None,
    };
    let requests = ArrivalStream::new(tpch_query_specs(), 6.0, 3).take_requests(30);
    let aging = AgingPolicy::outpacing(rates, 0.02);
    let plain =
        run_prioritized(&env, &IvqpPlanner::new(), &requests, AgingPolicy::DISABLED).unwrap();
    let aged = run_prioritized(&env, &IvqpPlanner::new(), &requests, aging).unwrap();
    assert_eq!(plain.len(), 30);
    assert_eq!(aged.len(), 30);
    // Aging must not worsen the maximum waiting time.
    assert!(aged.waiting_stats().max().unwrap() <= plain.waiting_stats().max().unwrap() + 1e-9);
}
