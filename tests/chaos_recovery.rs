//! End-to-end chaos regression over the public facade: a scripted
//! outage-and-recovery scenario.
//!
//! Unlike the seeded chaos suite (which samples fault plans), this test
//! pins exact fault times with [`FaultPlan::from_parts`]: one sync slip,
//! one sync drop, and one site outage with a known recovery time. A
//! fault-free twin engine runs the identical request stream, so the test
//! can assert the *shape* of the degradation — queries that must touch
//! the dead site wait for recovery (or re-plan around it), the IV loss
//! is recorded in the metrics registry, and once the outage clears the
//! faulted engine delivers exactly what the clean one does.

use ivdss::prelude::*;
use ivdss::serve::Completion;

const OUTAGE_START: f64 = 30.0;
const OUTAGE_END: f64 = 80.0;
/// Far enough out that the materialized (revised) timeline traces still
/// cover the recovery phase.
const HORIZON: f64 = 300.0;
/// Start of the recovery phase: the outage is long over and the arrival
/// gap has let every reservation calendar drain the floored backlog.
const RECOVERY_PHASE: f64 = 200.0;
const QUERIES: u64 = 24;

struct Env {
    catalog: Catalog,
    timelines: SyncTimelines,
    faults: FaultPlan,
    requests: Vec<QueryRequest>,
    down: SiteId,
}

fn t(i: u32) -> TableId {
    TableId::new(i)
}

/// Six tables over three sites; tables 0 and 1 replicated on known
/// periods so the scripted revisions target real sync points. The
/// outage takes down the site hosting table 2, which is *not*
/// replicated — queries reading it cannot plan around the outage and
/// must pay the recovery floor.
fn env() -> Env {
    let base = synthetic_catalog(&SyntheticConfig {
        tables: 6,
        sites: 3,
        placement: PlacementStrategy::Skewed,
        replicated_tables: 0,
        seed: 0xE2E,
        ..SyntheticConfig::default()
    })
    .expect("catalog configuration is valid");
    let mut plan = ReplicationPlan::new();
    plan.add(t(0), ReplicaSpec::new(8.0));
    plan.add(t(1), ReplicaSpec::new(5.0));
    let catalog = base.with_replication(plan).expect("replication is valid");
    let timelines = SyncTimelines::from_plan(catalog.replication(), SyncMode::Deterministic);
    let down = catalog.site_of(t(2));

    let faults = FaultPlan::from_parts(
        vec![
            // Table 0's sync due at t=16 lands five time units late...
            TimelineRevision {
                revealed_at: SimTime::new(16.0),
                table: t(0),
                scheduled: SimTime::new(16.0),
                new_time: Some(SimTime::new(21.0)),
            },
            // ...and table 1's sync due at t=10 never happens.
            TimelineRevision {
                revealed_at: SimTime::new(10.0),
                table: t(1),
                scheduled: SimTime::new(10.0),
                new_time: None,
            },
        ],
        vec![Outage {
            site: down,
            start: SimTime::new(OUTAGE_START),
            end: SimTime::new(OUTAGE_END),
        }],
        (1.0, 1.0),
        0,
        SimTime::new(HORIZON),
    );

    // Three explicit phases: steady state before the outage, a burst of
    // dead-site queries during it, and a tail after a long quiet gap so
    // the floored backlog on the dead site's calendar has drained and
    // "recovery" means recovery, not "still digging out".
    let mixed: [&[u32]; 4] = [&[0, 2], &[1, 2, 3], &[0, 1], &[2, 4, 5]];
    let dead_site: [&[u32]; 3] = [&[0, 2], &[1, 2, 3], &[2, 4, 5]];
    let mut arrivals: Vec<(&[u32], f64)> = Vec::new();
    for i in 0..8usize {
        arrivals.push((mixed[i % 4], 2.0 + 3.5 * i as f64));
    }
    for i in 0..8usize {
        arrivals.push((dead_site[i % 3], OUTAGE_START + 2.0 + 4.0 * i as f64));
    }
    for i in 0..8usize {
        arrivals.push((mixed[i % 4], RECOVERY_PHASE + 8.0 * i as f64));
    }
    let requests = arrivals
        .into_iter()
        .enumerate()
        .map(|(i, (tables, at))| {
            QueryRequest::new(
                QuerySpec::new(
                    QueryId::new(i as u64),
                    tables.iter().map(|&x| t(x)).collect(),
                ),
                SimTime::new(at),
            )
        })
        .collect();

    Env {
        catalog,
        timelines,
        faults,
        requests,
        down,
    }
}

/// Streams every request through an engine (faulted or clean) and
/// drains it, returning the completions and the metrics artifacts.
fn run(env: &Env, faults: Option<FaultPlan>) -> (Vec<Completion>, MetricsSnapshot, String) {
    let config = ServeConfig::new(DiscountRates::new(0.01, 0.05));
    let model = StylizedCostModel::paper_fig4();
    let mut engine = match faults {
        Some(plan) => ServeEngine::with_faults(
            &env.catalog,
            &env.timelines,
            &model,
            config,
            DesClock::new(),
            plan,
        ),
        None => ServeEngine::new(
            &env.catalog,
            &env.timelines,
            &model,
            config,
            DesClock::new(),
        ),
    };
    let mut completions = Vec::new();
    for request in &env.requests {
        let report = engine.submit(request.clone()).expect("submission plans");
        assert!(report.shed.is_none(), "uncontended queue must not shed");
        completions.extend(report.completed);
    }
    completions.extend(engine.drain().expect("drain plans"));
    assert_eq!(engine.queue_depth(), 0, "drained engine must be empty");
    let snapshot = engine.snapshot();
    let text = snapshot.to_text();
    (completions, snapshot, text)
}

#[test]
fn scripted_outage_degrades_then_recovers() {
    let env = env();
    let (faulted, snapshot, text) = run(&env, Some(env.faults.clone()));
    let (clean, _, _) = run(&env, None);
    assert_eq!(faulted.len(), QUERIES as usize);
    assert_eq!(clean.len(), QUERIES as usize);

    // The scripted fault trace is fully accounted for in the registry.
    assert_eq!(snapshot.faults_syncs_slipped, 1);
    assert_eq!(snapshot.faults_syncs_dropped, 1);
    assert_eq!(snapshot.faults_outages, 1);
    assert!(
        snapshot.faults_replans >= 1,
        "outage-window dispatches touching the dead site must re-plan"
    );
    for line in [
        "serve_faults_syncs_slipped_total 1",
        "serve_faults_syncs_dropped_total 1",
        "serve_faults_outages_total 1",
        "serve_faults_replans_total",
        "serve_faults_iv_lost_total",
    ] {
        assert!(
            text.contains(line),
            "metrics dump missing `{line}`:\n{text}"
        );
    }

    let by_id = |cs: &[Completion]| -> std::collections::HashMap<QueryId, Completion> {
        cs.iter().map(|c| (c.query, c.clone())).collect()
    };
    let faulted_by_id = by_id(&faulted);
    let clean_by_id = by_id(&clean);

    // Degradation: the faulted run delivers strictly less aggregate IV,
    // and the shortfall is what the registry recorded.
    let total = |m: &std::collections::HashMap<QueryId, Completion>| -> f64 {
        m.values()
            .map(|c| c.evaluation.information_value.value())
            .sum()
    };
    let (iv_faulted, iv_clean) = (total(&faulted_by_id), total(&clean_by_id));
    assert!(
        iv_faulted < iv_clean,
        "outage must cost information value ({iv_faulted} vs {iv_clean})"
    );
    let recorded: f64 = faulted.iter().map(|c| c.iv_lost).sum();
    assert!(
        (snapshot.faults_iv_lost_total - recorded).abs() < 1e-9,
        "registry IV loss {} must equal the per-completion sum {recorded}",
        snapshot.faults_iv_lost_total
    );
    assert!(snapshot.faults_iv_lost_total > 0.0);

    // During the outage, any delivered plan that still spans the dead
    // site cannot start remote work before recovery.
    let mut floored = 0;
    for request in &env.requests {
        let submitted = request.submitted_at.value();
        if !(OUTAGE_START..OUTAGE_END - 4.0).contains(&submitted) {
            continue;
        }
        if !request.query.tables().contains(&t(2)) {
            continue;
        }
        let c = &faulted_by_id[&request.id()];
        assert!(
            c.evaluation.service_start.value() >= OUTAGE_END - 1e-9,
            "query {:?} submitted at {submitted} read the dead site before \
             recovery (service start {})",
            c.query,
            c.evaluation.service_start.value()
        );
        floored += 1;
    }
    assert!(floored >= 5, "the outage window must cover several queries");

    // Recovery: once the outage clears and the calendars drain, the
    // faulted engine is indistinguishable from the clean twin — the
    // scripted revisions are ancient history by then (both tables have
    // since re-synced on schedule) and jitter is disabled.
    let mut recovered = 0;
    for request in &env.requests {
        if request.submitted_at.value() < RECOVERY_PHASE {
            continue;
        }
        let f = &faulted_by_id[&request.id()];
        let c = &clean_by_id[&request.id()];
        assert!(
            (f.evaluation.information_value.value() - c.evaluation.information_value.value()).abs()
                < 1e-9,
            "query {:?} after recovery must match the clean twin",
            f.query
        );
        assert!(f.iv_lost.abs() < 1e-9);
        recovered += 1;
    }
    assert!(recovered >= 5, "the tail of the stream must test recovery");

    // Site floors were real: the dead site is never booked inside the
    // outage window.
    assert!(env.faults.is_down(env.down, SimTime::new(OUTAGE_START)));
    for c in &faulted {
        let remote: Vec<TableId> = env.requests[c.query.raw() as usize]
            .query
            .tables()
            .iter()
            .copied()
            .filter(|table| !c.evaluation.local_tables.contains(table))
            .collect();
        if env.catalog.sites_spanned(&remote).contains(&env.down) {
            let start = c.evaluation.service_start.value();
            assert!(
                !(OUTAGE_START..OUTAGE_END).contains(&start),
                "query {:?} started service on the dead site at {start}",
                c.query
            );
        }
    }
}

#[test]
fn scripted_run_is_deterministic() {
    let env = env();
    let (_, _, text1) = run(&env, Some(env.faults.clone()));
    let (_, _, text2) = run(&env, Some(env.faults.clone()));
    assert_eq!(text1, text2, "scripted chaos must reproduce byte for byte");
}
