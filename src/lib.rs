//! # ivdss — Information Value-Driven Near Real-Time Decision Support
//!
//! A full Rust reproduction of *Information Value-driven Near Real-Time
//! Decision Support Systems* (Ying Yan, Wen-Syan Li, Jian Xu — ICDCS
//! 2009): a federated decision-support system that routes and schedules
//! queries to maximize the **information value** of each report,
//!
//! ```text
//! IV = BusinessValue × (1 − λ_CL)^CL × (1 − λ_SL)^SL
//! ```
//!
//! where `CL` is the computational latency and `SL` the synchronization
//! latency of the data the plan read.
//!
//! This crate is a facade re-exporting the workspace:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`simkernel`] | Discrete-event simulation kernel (clock, events, random streams, statistics, FIFO facilities) |
//! | [`catalog`] | Tables, sites, placement, replication plans; TPC-H and synthetic schemas |
//! | [`costmodel`] | Query footprints, per-combination plan-cost compilation, stylized and analytic cost models |
//! | [`replication`] | Synchronization schedules/timelines, replica versions, QoS replication |
//! | [`core`] | **The paper's contribution**: the IV model, plan evaluation, the scatter-and-gather optimal plan search (sequential and pooled-parallel, with sync-phase memoized pruning), IVQP/Federation/Warehouse planners, starvation aging |
//! | [`ga`] | Genetic algorithm with permutation genomes and order crossover |
//! | [`mqo`] | Workload formation and GA-driven multi-query (order) optimization |
//! | [`workloads`] | The 22 TPC-H query footprints, synthetic query generators, arrival streams |
//! | [`faults`] | Deterministic fault injection: seeded sync slips/drops, site outages, cost jitter |
//! | [`obs`] | Deterministic observability: sim-time-stamped structured traces, plan-decision audits, exact fixed-boundary histograms, Prometheus text exposition |
//! | [`serve`] | Online query-serving engine: IV-aware admission, sync-phase plan caching, calendar dispatch, metrics |
//! | [`cluster`] | Sharded multi-engine cluster serving: footprint-based shard routing with explicit partial-coverage fallback, IV-guarded work stealing, shard-outage failover, aggregated metrics |
//! | [`net`] | TCP front door: length-delimited binary protocol, hand-rolled `std::net` server over the serving engines, blocking client, closed-loop load driver |
//! | [`sched`] | Adaptive synchronization scheduling: refresh schedules as a decision variable — marginal-IV greedy + GA search at the fixed schedules' refresh budget, behind a never-worse guard |
//! | [`scenarios`] | Seeded composable traffic scenarios: Zipf popularity, diurnal/flash-crowd arrivals, multi-tenant SLA mixes, schema growth with cold timelines |
//! | [`storage`] | Record-page storage engine: slotted pages over catalog tables, scan/select/project/product plans with pre-execution estimates, measured scans feeding cost-model calibration |
//! | [`dsim`] | End-to-end DSS simulator and the per-figure experiment drivers |
//!
//! # Quickstart
//!
//! ```
//! use ivdss::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's TPC-H setup: 12 tables over 3 sites, 5 replicated.
//! let catalog = tpch_catalog(&TpchConfig::default())?;
//! let timelines = SyncTimelines::from_plan(catalog.replication(), SyncMode::Deterministic);
//! let model = AnalyticCostModel::paper_scale();
//!
//! let ctx = PlanContext {
//!     catalog: &catalog,
//!     timelines: &timelines,
//!     model: &model,
//!     rates: DiscountRates::new(0.01, 0.05),
//!     queues: &NoQueues,
//! };
//! let query = QuerySpec::new(QueryId::new(1), catalog.table_ids()[..4].to_vec());
//! let request = QueryRequest::new(query, SimTime::new(11.0));
//!
//! let plan = IvqpPlanner::new().select_plan(&ctx, &request)?;
//! println!("IV = {}, {}", plan.information_value, plan.latencies);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ivdss_catalog as catalog;
pub use ivdss_cluster as cluster;
pub use ivdss_core as core;
pub use ivdss_costmodel as costmodel;
pub use ivdss_dsim as dsim;
pub use ivdss_faults as faults;
pub use ivdss_ga as ga;
pub use ivdss_mqo as mqo;
pub use ivdss_net as net;
pub use ivdss_obs as obs;
pub use ivdss_replication as replication;
pub use ivdss_scenarios as scenarios;
pub use ivdss_sched as sched;
pub use ivdss_serve as serve;
pub use ivdss_simkernel as simkernel;
pub use ivdss_storage as storage;
pub use ivdss_workloads as workloads;

/// The most commonly used items, importable with one `use`.
pub mod prelude {
    pub use ivdss_catalog::{
        synthetic_catalog, tpch_catalog, Catalog, PlacementStrategy, ReplicaSpec, ReplicationPlan,
        ShardAssignment, ShardId, ShardStrategy, SiteId, SyntheticConfig, TableId, TableMeta,
        TpchConfig,
    };
    pub use ivdss_cluster::{
        Cluster, ClusterConfig, ClusterSnapshot, RouteDecision, ShardOutage, ShardRouter,
        ShardTimelines,
    };
    pub use ivdss_core::{
        evaluate_plan, exhaustive_search, AgingPolicy, BusinessValue, DiscountRate, DiscountRates,
        FacilityQueues, FederationPlanner, InformationValue, IvqpPlanner, Latencies, MemoStats,
        NoQueues, ParallelPlanner, PhaseMemo, PlacementAdvisor, PlanContext, PlanError,
        PlanEvaluation, Planner, PlannerPool, QueryRequest, ScatterGatherSearch, WarehousePlanner,
    };
    pub use ivdss_costmodel::{
        AnalyticCostModel, CalibratedCostModel, CompiledQuery, CostModel, LocalFit, PlanCost,
        QueryId, QuerySpec, StylizedCostModel,
    };
    pub use ivdss_dsim::{
        run_arrival_driven, run_prioritized, Environment, ReplicaLoading, RunMetrics,
    };
    pub use ivdss_faults::{FaultConfig, FaultPlan, JitteredCostModel, Outage};
    pub use ivdss_ga::{optimize_permutation, GaConfig, Permutation};
    pub use ivdss_mqo::{
        form_workloads, FifoScheduler, MqoScheduler, WorkloadEvaluator, WorkloadScheduler,
    };
    pub use ivdss_net::{
        run_net_closed_loop, DriverConfig, NetClient, NetConfig, NetError, NetLoadReport,
        NetServer, QueryService, ReportMsg, SubmitSpec, SubmitTiming,
    };
    pub use ivdss_obs::{
        AuditLog, EventKind, FixedHistogram, PlanAudit, PlanSource, SearchAudit, Trace, TraceEvent,
        TraceHistograms, Tracer,
    };
    pub use ivdss_replication::{
        RevisionCursor, Schedule, SyncEvent, SyncEventCursor, SyncMode, SyncTimelines,
        TimelineRevision,
    };
    pub use ivdss_scenarios::{
        all_scenarios, scenario_by_name, ArrivalProcess, GrowthSpec, IntensityProfile, Popularity,
        ScenarioEvent, ScenarioSpec, ScenarioWorld, TenantMix, TenantSpec, ZipfSampler,
    };
    pub use ivdss_sched::{
        fixed_budget, greedy_schedule, reschedule_revisions, AdaptiveConfig, AdaptiveOutcome,
        AdaptiveScheduler, RefreshCosts, ScheduleAllocation, ScheduleEvaluator, ScheduleSource,
    };
    pub use ivdss_serve::{
        run_closed_loop, run_open_loop, AdmissionQueue, Clock, DesClock, MetricsSnapshot,
        OpenLoopConfig, PlanCache, ServeConfig, ServeEngine, WallClock,
    };
    pub use ivdss_simkernel::{
        Engine, ExponentialStream, OnlineStats, SeedFactory, SimDuration, SimTime, Stream,
    };
    pub use ivdss_storage::{
        DeviceProfile, Plan, Predicate, Scan, ScanMeasurement, StorageConfig, StorageEngine,
    };
    pub use ivdss_workloads::{
        mid_cost_query_specs, overlapping_queries, random_queries, tpch_query_specs, ArrivalStream,
        FrequencyRatio, OverlapConfig, RandomQueryConfig, RequestSource,
    };
}
