#!/usr/bin/env bash
# Markdown link check over README.md and docs/*.md — pure bash, no
# network. Validates that every relative link target exists on disk
# (anchors are stripped; http(s)/mailto links are skipped, since the
# container is offline). CI runs this as the `linkcheck` job; run it
# locally after moving or renaming any doc.
set -euo pipefail

cd "$(dirname "$0")/.."

FILES=(README.md docs/*.md)
failures=0
checked=0

for file in "${FILES[@]}"; do
  dir=$(dirname "$file")
  # Pull every inline-link target: [text](target). Reference-style
  # links are not used in this repo's docs.
  while IFS= read -r target; do
    [[ -n "$target" ]] || continue
    case "$target" in
      http://*|https://*|mailto:*) continue ;;
    esac
    # In-page anchor only.
    [[ "$target" == \#* ]] && continue
    # Strip any #anchor suffix before checking existence.
    path="${target%%#*}"
    checked=$((checked + 1))
    if [[ ! -e "$dir/$path" && ! -e "$path" ]]; then
      echo "BROKEN: $file -> $target" >&2
      failures=$((failures + 1))
    fi
  done < <(grep -o '](\([^)]*\))' "$file" 2>/dev/null | sed 's/^](//; s/)$//' || true)
done

if [[ $failures -gt 0 ]]; then
  echo "linkcheck: $failures broken link(s) out of $checked checked" >&2
  exit 1
fi
echo "linkcheck: all $checked relative links resolve."
