#!/usr/bin/env bash
# Full local gate: formatting, lints, and the test suite.
# CI runs exactly this script; run it before pushing.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo test"
cargo test --workspace --offline -q

echo "==> cluster differential + property + golden suites (release)"
cargo test --offline --release -p ivdss-cluster

echo "==> network loopback e2e + protocol fuzz (release)"
cargo test --offline --release -p ivdss-net

echo "==> adaptive-scheduling differential + property + golden suites (release)"
cargo test --offline --release -p ivdss-sched

echo "==> scenario engine property + golden + catalog-pin suites (release)"
cargo test --offline --release -p ivdss-scenarios
cargo test --offline --release -p ivdss-dsim --test golden_scenario --test scenario_catalog_pins

echo "==> storage differential + property + calibration + golden suites (release)"
cargo test --offline --release -p ivdss-storage
cargo test --offline --release -p ivdss-dsim --test calibration_regression
cargo test --offline --release -p ivdss-serve --test golden_storage_trace

echo "==> markdown link check"
scripts/linkcheck.sh

echo "All checks passed."
