#!/usr/bin/env bash
# Chaos gate: the deterministic fault-injection suites, in release mode.
#
# Every suite runs a fixed seed band (no time- or entropy-derived
# seeds), so a failure here names a seed that fails on every machine,
# every time. CI runs this as a separate job from the main check gate.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> serving-engine chaos invariants (120-seed band)"
cargo test --offline --release -p ivdss-serve --test chaos

echo "==> scatter-gather vs oracle differential, nominal + slipped (80-seed band)"
cargo test --offline --release -p ivdss-core --test differential

echo "==> severity-sweep chaos experiment"
cargo test --offline --release -p ivdss-dsim chaos

echo "==> cluster shard-outage chaos (20-seed band, trace reconciliation)"
cargo test --offline --release -p ivdss-cluster --test cluster_chaos

echo "==> adaptive-schedule chaos composition (24-seed band)"
cargo test --offline --release -p ivdss-sched --test adaptive_chaos

echo "==> adaptive-sync chaos point (trace reconciliation)"
cargo test --offline --release -p ivdss-dsim adaptive

echo "==> scripted outage-and-recovery end to end"
cargo test --offline --release --test chaos_recovery

echo "==> chaos demo"
cargo run --offline --release --example chaos_demo >/dev/null

echo "All chaos checks passed."
