#!/usr/bin/env bash
# Reproducible benchmark trajectory: regenerates every paper figure,
# runs the ablations, and produces the machine-readable planner-scaling,
# cluster shard-scaling, network-serving, adaptive-scheduling,
# scenario-sweep and storage-calibration reports (BENCH_planner.json,
# BENCH_cluster.json, BENCH_serve_net.json, BENCH_sched.json,
# BENCH_scenarios.json and BENCH_storage.json at the repo root).
#
# Usage:
#   scripts/bench.sh                    # full run (minutes)
#   scripts/bench.sh --smoke            # scaled-down run (seconds; CI gate)
#   scripts/bench.sh --out F            # write the planner JSON to F instead
#   scripts/bench.sh --cluster-out F    # write the cluster JSON to F instead
#   scripts/bench.sh --net-out F        # write the net-serving JSON to F instead
#   scripts/bench.sh --sched-out F      # write the scheduling JSON to F instead
#   scripts/bench.sh --scenarios-out F  # write the scenario JSON to F instead
#   scripts/bench.sh --storage-out F    # write the storage JSON to F instead
#
# Every bin is seeded and deterministic; only the wall-clock timings in
# the JSON reports vary across hosts (BENCH_planner.json records the
# host's hardware parallelism so readers can tell which regime produced
# it).
set -euo pipefail

cd "$(dirname "$0")/.."

SMOKE=0
OUT="BENCH_planner.json"
CLUSTER_OUT="BENCH_cluster.json"
NET_OUT="BENCH_serve_net.json"
SCHED_OUT="BENCH_sched.json"
SCENARIOS_OUT="BENCH_scenarios.json"
STORAGE_OUT="BENCH_storage.json"
while [[ $# -gt 0 ]]; do
  case "$1" in
    --smoke) SMOKE=1 ;;
    --out)
      shift
      [[ $# -gt 0 ]] || { echo "--out needs a path" >&2; exit 2; }
      OUT="$1"
      ;;
    --cluster-out)
      shift
      [[ $# -gt 0 ]] || { echo "--cluster-out needs a path" >&2; exit 2; }
      CLUSTER_OUT="$1"
      ;;
    --net-out)
      shift
      [[ $# -gt 0 ]] || { echo "--net-out needs a path" >&2; exit 2; }
      NET_OUT="$1"
      ;;
    --sched-out)
      shift
      [[ $# -gt 0 ]] || { echo "--sched-out needs a path" >&2; exit 2; }
      SCHED_OUT="$1"
      ;;
    --scenarios-out)
      shift
      [[ $# -gt 0 ]] || { echo "--scenarios-out needs a path" >&2; exit 2; }
      SCENARIOS_OUT="$1"
      ;;
    --storage-out)
      shift
      [[ $# -gt 0 ]] || { echo "--storage-out needs a path" >&2; exit 2; }
      STORAGE_OUT="$1"
      ;;
    *) echo "usage: scripts/bench.sh [--smoke] [--out FILE] [--cluster-out FILE] [--net-out FILE] [--sched-out FILE] [--scenarios-out FILE] [--storage-out FILE]" >&2; exit 2 ;;
  esac
  shift
done

QUICK=()
if [[ $SMOKE -eq 1 ]]; then
  QUICK=(--quick)
fi

echo "==> build (release)"
cargo build --offline --release -p ivdss-bench

echo "==> figure regeneration (fig4..fig9)"
for bin in fig4 fig5 fig6 fig7 fig8 fig9; do
  echo "--- $bin ---"
  cargo run --offline --release -p ivdss-bench --bin "$bin" -- ${QUICK[@]+"${QUICK[@]}"}
done

echo "==> ablations"
cargo run --offline --release -p ivdss-bench --bin ablations -- ${QUICK[@]+"${QUICK[@]}"}

echo "==> planner scaling (writes $OUT)"
cargo run --offline --release -p ivdss-bench --bin planner_scaling -- \
  ${QUICK[@]+"${QUICK[@]}"} --out "$OUT"

echo "==> cluster shard scaling (writes $CLUSTER_OUT)"
cargo run --offline --release -p ivdss-bench --bin cluster_scaling -- \
  ${QUICK[@]+"${QUICK[@]}"} --out "$CLUSTER_OUT"

echo "==> network serving throughput (writes $NET_OUT)"
cargo run --offline --release -p ivdss-bench --bin serve_net -- \
  ${QUICK[@]+"${QUICK[@]}"} --out "$NET_OUT"

echo "==> adaptive sync scheduling gain (writes $SCHED_OUT)"
cargo run --offline --release -p ivdss-bench --bin sched_gain -- \
  ${QUICK[@]+"${QUICK[@]}"} --out "$SCHED_OUT"

echo "==> scenario sweeps (writes $SCENARIOS_OUT)"
cargo run --offline --release -p ivdss-bench --bin scenarios -- \
  ${QUICK[@]+"${QUICK[@]}"} --out "$SCENARIOS_OUT"

echo "==> storage calibration (writes $STORAGE_OUT)"
cargo run --offline --release -p ivdss-bench --bin storage_calibration -- \
  ${QUICK[@]+"${QUICK[@]}"} --out "$STORAGE_OUT"

echo "Benchmark trajectory complete; scaling reports at $OUT, $CLUSTER_OUT, $NET_OUT, $SCHED_OUT, $SCENARIOS_OUT and $STORAGE_OUT."
