#!/usr/bin/env bash
# Line-coverage gate for the paper-core crates (ivdss-core, ivdss-serve).
#
# Runs `cargo llvm-cov` over the two crates' test suites, writes a
# human-readable summary plus the raw JSON under target/coverage/, and
# fails if total line coverage drops below the gate value — the
# coverage measured on the branch point this gate landed with, so
# regressions are caught while improvements ratchet the floor upward.
#
# Usage:
#   scripts/coverage.sh                      # gate at the default floor
#   COVERAGE_THRESHOLD=83.5 scripts/coverage.sh
#
# Requires cargo-llvm-cov (CI installs it; locally:
# `cargo install cargo-llvm-cov` plus the llvm-tools-preview component).
set -euo pipefail

cd "$(dirname "$0")/.."

# Branch-point line coverage of ivdss-core + ivdss-serve. Raise this
# whenever a PR meaningfully improves coverage; never lower it to make
# a red build green.
THRESHOLD="${COVERAGE_THRESHOLD:-80.0}"

if ! cargo llvm-cov --version >/dev/null 2>&1; then
  echo "error: cargo-llvm-cov is not installed." >&2
  echo "  rustup component add llvm-tools-preview" >&2
  echo "  cargo install cargo-llvm-cov" >&2
  exit 2
fi

OUT_DIR="target/coverage"
mkdir -p "$OUT_DIR"

echo "==> cargo llvm-cov (ivdss-core + ivdss-serve)"
cargo llvm-cov --package ivdss-core --package ivdss-serve \
  --json --summary-only --output-path "$OUT_DIR/coverage.json"

python3 - "$OUT_DIR/coverage.json" "$THRESHOLD" "$OUT_DIR/summary.txt" <<'EOF'
import json
import sys

report_path, threshold, summary_path = sys.argv[1], float(sys.argv[2]), sys.argv[3]
with open(report_path) as f:
    totals = json.load(f)["data"][0]["totals"]

lines = []
for metric in ("lines", "functions", "regions"):
    if metric in totals:
        t = totals[metric]
        lines.append(
            f"{metric:<10} {t['covered']:>6}/{t['count']:<6} {t['percent']:6.2f}%"
        )
line_pct = totals["lines"]["percent"]
lines.append(f"gate: line coverage {line_pct:.2f}% vs floor {threshold:.2f}%")
summary = "\n".join(lines) + "\n"
sys.stdout.write(summary)
with open(summary_path, "w") as f:
    f.write(summary)

if line_pct < threshold:
    sys.stderr.write(
        f"FAIL: line coverage {line_pct:.2f}% is below the gate "
        f"({threshold:.2f}%) — add tests, don't lower the floor.\n"
    )
    sys.exit(1)
print("coverage gate passed")
EOF
