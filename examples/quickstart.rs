//! Quickstart: select the information value-optimal plan for one query.
//!
//! Builds the paper's TPC-H deployment (12 tables over 3 remote sites,
//! every table replicated at the DSS so that all three planners face the
//! *same* infrastructure), submits a 4-table query a while after the last
//! synchronization, and compares the plan the IVQP framework selects
//! against the Federation and Data Warehouse baselines under several user
//! preferences (discount-rate pairs). On equal infrastructure IVQP's plan
//! space contains both baselines, so its information value dominates.
//!
//! Run with: `cargo run --example quickstart`

use ivdss::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // TPC-H at scale factor 6, LineItem split into five partitions, and —
    // for this single-query comparison — every table replicated locally
    // with a 10-minute refresh cycle.
    let hybrid = tpch_catalog(&TpchConfig::default())?;
    let catalog = hybrid.with_replication(ReplicationPlan::full(hybrid.table_ids(), 10.0))?;
    let timelines = SyncTimelines::from_plan(catalog.replication(), SyncMode::Deterministic);
    let model = AnalyticCostModel::paper_scale();

    // A complex report over customer, orders and two LineItem partitions,
    // submitted 8 minutes after the last refresh (2 minutes before the
    // next one at t = 20).
    let query = QuerySpec::with_profile(
        QueryId::new(1),
        vec![
            TableId::new(3),
            TableId::new(6),
            TableId::new(7),
            TableId::new(8),
        ],
        2.0,
        0.005,
    );
    let request = QueryRequest::new(query, SimTime::new(18.0));

    println!(
        "query {} submitted at t = 18.0 (minutes); replicas refreshed at 10, 20, …",
        request.query
    );
    println!();
    println!(
        "{:<28} {:>10} {:>8} {:>8} {:>9} {:>8}",
        "user preference", "planner", "CL", "SL", "IV", "delayed"
    );

    for (label, rates) in [
        (
            "latency-sensitive (λcl=.05)",
            DiscountRates::new(0.05, 0.01),
        ),
        (
            "staleness-sensitive (λsl=.10)",
            DiscountRates::new(0.01, 0.10),
        ),
        ("balanced (λ=.01)", DiscountRates::new(0.01, 0.01)),
    ] {
        let ctx = PlanContext {
            catalog: &catalog,
            timelines: &timelines,
            model: &model,
            rates,
            queues: &NoQueues,
        };
        let ivqp = IvqpPlanner::new().select_plan(&ctx, &request)?;
        let fed = FederationPlanner::new().select_plan(&ctx, &request)?;
        let dw = WarehousePlanner::new().select_plan(&ctx, &request)?;
        assert!(
            ivqp.information_value.value()
                >= fed
                    .information_value
                    .value()
                    .max(dw.information_value.value())
                    - 1e-12,
            "on equal infrastructure IVQP dominates both baselines"
        );
        for (name, plan) in [("IVQP", &ivqp), ("Federation", &fed), ("Warehouse", &dw)] {
            println!(
                "{:<28} {:>10} {:>8.2} {:>8.2} {:>9.4} {:>8}",
                label,
                name,
                plan.latencies.computational.value(),
                plan.latencies.synchronization.value(),
                plan.information_value.value(),
                if plan.is_delayed(request.submitted_at) {
                    "yes"
                } else {
                    "no"
                },
            );
        }
        println!();
    }

    println!("IVQP adapts the plan to the user's discount rates instead of");
    println!("always minimizing response time — the paper's core claim.");
    Ok(())
}
