//! Logistics control-tower — multi-query optimization of a morning
//! planning workload.
//!
//! The paper motivates near real-time DSS with "logistic" scenarios: at
//! shift start, a burst of interdependent planning reports (fleet
//! positions, depot stock, route exceptions, carrier performance…) hits
//! the federation server within minutes of each other, all touching
//! overlapping table sets. Optimizing each query alone conflicts with the
//! others (§3.2), so the workload manager groups them and runs the genetic
//! algorithm over execution orders.
//!
//! Run with: `cargo run --release --example logistics_mqo`

use ivdss::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A logistics estate: 60 tables over 8 sites, 30 replicated.
    let catalog = synthetic_catalog(&SyntheticConfig {
        tables: 60,
        sites: 8,
        placement: PlacementStrategy::Uniform,
        replicated_tables: 30,
        mean_sync_period: 5.0,
        seed: 0x106,
        ..SyntheticConfig::default()
    })?;
    let timelines = SyncTimelines::from_plan(
        catalog.replication(),
        SyncMode::Stochastic {
            horizon: SimTime::new(2_000.0),
            seed: 11,
        },
    );
    let model = AnalyticCostModel::paper_scale();
    // Morning-rush preference: everything is urgent.
    let rates = DiscountRates::new(0.15, 0.15);

    // Ten planning reports over a shared "hot" table pool (≈40 % pairwise
    // overlap), submitted within five minutes of shift start.
    let specs = overlapping_queries(&OverlapConfig {
        queries: 10,
        tables: 60,
        tables_per_query: 4,
        target_overlap: 0.4,
        seed: 0xCAFE,
    });
    println!(
        "workload: {} reports, realized footprint overlap {:.0} %",
        specs.len(),
        100.0 * ivdss::workloads::measured_overlap(&specs)
    );
    let requests: Vec<QueryRequest> = specs
        .into_iter()
        .enumerate()
        .map(|(i, spec)| {
            QueryRequest::new(spec, SimTime::new(480.0 + 0.5 * i as f64))
                .with_business_value(BusinessValue::new(1.0 + (i % 3) as f64 * 0.5))
        })
        .collect();

    // Step 1 (paper §3.2): derive execution ranges and form workloads.
    let ctx = PlanContext {
        catalog: &catalog,
        timelines: &timelines,
        model: &model,
        rates,
        queues: &NoQueues,
    };
    let ranges = ivdss::mqo::execution_ranges(&ctx, &requests)?;
    let groups = form_workloads(&ranges);
    println!(
        "workload formation: {} overlapping group(s): {:?}",
        groups.len(),
        groups.iter().map(|g| g.len()).collect::<Vec<_>>()
    );
    println!();

    // Step 2: optimize the execution order of the conflicting workload.
    let evaluator = WorkloadEvaluator::new(&catalog, &timelines, &model, rates, &requests);
    println!(
        "{:<12} {:>12} {:>12}  order",
        "scheduler", "total IV", "mean IV"
    );
    for scheduler in [
        &MqoScheduler::new() as &dyn WorkloadScheduler,
        &FifoScheduler::new(),
        &ivdss::mqo::GreedyScheduler::new(),
    ] {
        let outcome = scheduler.schedule(&evaluator)?;
        println!(
            "{:<12} {:>12.4} {:>12.4}  {:?}",
            scheduler.name(),
            outcome.total_information_value,
            outcome.mean_information_value(),
            outcome.order
        );
    }

    println!();
    println!("The GA order interleaves cheap/urgent reports with delayed ones");
    println!("waiting for fresh data, lifting the information value of the");
    println!("whole workload over first-come-first-served dispatch.");
    Ok(())
}
