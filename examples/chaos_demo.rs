//! Chaos demo — the serving engine under deterministic fault injection.
//!
//! Runs the same mid-size federation as `serve_demo` twice on identical
//! seeds: once fault-free, once under a generated [`FaultPlan`] that
//! slips and drops synchronizations, takes sites down and up, and
//! jitters live costs. The engine absorbs all of it — re-planning
//! around dead sites, invalidating cached plans when a sync slips, and
//! recording every lost unit of information value — and the run ends
//! with the fault section of the metrics dump plus a side-by-side IV
//! comparison.
//!
//! Run with: `cargo run --release --example chaos_demo`

use ivdss::prelude::*;
use ivdss::serve::{LoadReport, OpenLoopConfig, ServeConfig, ServeEngine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = synthetic_catalog(&SyntheticConfig {
        tables: 16,
        sites: 4,
        placement: PlacementStrategy::Skewed,
        replicated_tables: 8,
        mean_sync_period: 6.0,
        seed: 0x5EE5,
        ..SyntheticConfig::default()
    })?;
    let timelines = SyncTimelines::from_plan(catalog.replication(), SyncMode::Deterministic);
    let model = StylizedCostModel::paper_fig4();
    let rates = DiscountRates::new(0.01, 0.05);
    let horizon = SimTime::new(2_500.0);

    // A rough afternoon: one in four syncs slips (by up to 12 time
    // units), one in ten never lands, each site fails every ~300 time
    // units for up to half a minute, and live costs run up to 25% hot.
    let faults = FaultPlan::generate(
        &FaultConfig {
            slip_probability: 0.25,
            drop_probability: 0.1,
            slip_delay: (2.0, 12.0),
            outage_mtbf: 300.0,
            outage_duration: (10.0, 30.0),
            jitter: (1.0, 1.25),
            horizon,
        },
        &timelines,
        catalog.site_count(),
        0xC4A05,
    );
    println!(
        "fault plan: {} slips, {} drops, {} outages over {} time units\n",
        faults.slip_count(),
        faults.drop_count(),
        faults.outages().len(),
        horizon.value(),
    );

    let load = OpenLoopConfig {
        queries: 800,
        mean_interarrival: 2.4,
        seed: 41,
        business_value: BusinessValue::UNIT,
    };
    let run = |faults: Option<FaultPlan>| -> Result<(LoadReport, MetricsSnapshot), PlanError> {
        let templates = random_queries(&RandomQueryConfig {
            queries: 12,
            tables: 16,
            max_tables_per_query: 5,
            weight_range: (0.8, 2.5),
            seed: 0xDA,
        });
        let config = ServeConfig::new(rates);
        let mut engine = match faults {
            Some(plan) => ServeEngine::with_faults(
                &catalog,
                &timelines,
                &model,
                config,
                DesClock::new(),
                plan,
            ),
            None => ServeEngine::new(&catalog, &timelines, &model, config, DesClock::new()),
        };
        let report = run_open_loop(&mut engine, templates, &load)?;
        Ok((report, engine.snapshot()))
    };

    let (clean, _) = run(None)?;
    let (faulted, snapshot) = run(Some(faults.clone()))?;

    println!("{}", snapshot.to_text());
    println!(
        "delivered {} of {} queries under chaos ({} re-planned around outages)",
        faulted.completions.len(),
        snapshot.queries_submitted,
        snapshot.faults_replans,
    );
    println!(
        "information value: {:.2} fault-free vs {:.2} under chaos \
         ({:.2} recorded as lost to faults)",
        clean.total_delivered_iv(),
        faulted.total_delivered_iv(),
        snapshot.faults_iv_lost_total,
    );
    println!(
        "cache invalidations from slipped/dropped syncs: {}",
        snapshot.plan_cache_invalidations,
    );

    assert!(!faults.is_empty(), "demo must inject faults");
    assert!(
        snapshot.faults_syncs_slipped > 0
            && snapshot.faults_syncs_dropped > 0
            && snapshot.faults_outages > 0,
        "all three fault families must fire"
    );
    assert!(
        faulted.completions.len() * 10 >= 800 * 9,
        "chaos must degrade the run, not kill it"
    );
    assert!(
        faulted.total_delivered_iv() < clean.total_delivered_iv(),
        "faults must cost information value"
    );
    Ok(())
}
