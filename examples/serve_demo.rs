//! Online serving demo — the IV-aware query-serving engine end to end.
//!
//! Streams 1,200 open-loop Poisson arrivals through [`ServeEngine`] on a
//! discrete-event clock: every query is planned (through the sync-phase
//! plan cache), admitted past an IV-aware load shedder sized *below* the
//! offered load, dispatched onto per-server reservation calendars, and
//! measured by the metrics registry. The run ends with the Prometheus-style
//! text dump of the registry: delivered IV, CL/SL/IV histograms, cache
//! hit/invalidation counters, and the time-weighted queue depth.
//!
//! Run with: `cargo run --release --example serve_demo`

use ivdss::prelude::*;
use ivdss::serve::{LoadReport, OpenLoopConfig, ServeConfig, ServeEngine};
use ivdss::simkernel::time::SimDuration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mid-size federation: 16 tables over 4 sites, the 8 hottest
    // replicated to the federation server with ~6-minute refreshes.
    let catalog = synthetic_catalog(&SyntheticConfig {
        tables: 16,
        sites: 4,
        placement: PlacementStrategy::Skewed,
        replicated_tables: 8,
        mean_sync_period: 6.0,
        seed: 0x5EE5,
        ..SyntheticConfig::default()
    })?;
    let timelines = SyncTimelines::from_plan(catalog.replication(), SyncMode::Deterministic);
    let model = StylizedCostModel::paper_fig4();
    let rates = DiscountRates::new(0.01, 0.05);

    // Analyst dashboards re-issue a fixed set of report templates — the
    // situation the plan cache exists for.
    let templates = random_queries(&RandomQueryConfig {
        queries: 12,
        tables: 16,
        max_tables_per_query: 5,
        weight_range: (0.8, 2.5),
        seed: 0xDA,
    });

    // Undersized on purpose: 8 queue slots against an arrival stream
    // slightly faster than the ~2-minute local service rate, with
    // dispatch gated on a near-idle local server, lets the backlog creep
    // up until the IV-aware shedder has to act — while still delivering
    // the vast majority of queries.
    let mut config = ServeConfig::new(rates);
    config.queue_capacity = 8;
    config.dispatch_backlog = SimDuration::new(4.0);
    config.aging = AgingPolicy::outpacing(rates, 0.01);

    let mut engine = ServeEngine::new(&catalog, &timelines, &model, config, DesClock::new());
    let report: LoadReport = run_open_loop(
        &mut engine,
        templates,
        &OpenLoopConfig {
            queries: 1_200,
            mean_interarrival: 1.9,
            seed: 41,
            business_value: BusinessValue::UNIT,
        },
    )?;

    let snapshot = engine.snapshot();
    println!("{}", snapshot.to_text());
    println!(
        "delivered {} of {} queries ({} shed by IV-aware admission)",
        report.completions.len(),
        snapshot.queries_submitted,
        report.shed.len(),
    );
    println!(
        "plan cache: {} hits / {} misses ({:.1}% hit rate), {} sync invalidations",
        snapshot.plan_cache_hits,
        snapshot.plan_cache_misses,
        100.0 * snapshot.cache_hit_rate(),
        snapshot.plan_cache_invalidations,
    );
    println!(
        "total delivered information value: {:.2}",
        report.total_delivered_iv()
    );

    assert!(
        report.completions.len() >= 1_000,
        "demo must deliver ≥1k queries"
    );
    assert!(snapshot.plan_cache_hits > 0, "templates must hit the cache");
    assert!(!report.shed.is_empty(), "undersized queue must shed");
    Ok(())
}
