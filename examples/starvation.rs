//! Starvation under pure value-maximizing dispatch, and the §3.3 cure.
//!
//! The paper warns that maximizing information value alone "favors
//! immediate execution … if a query is queued for a longer period, it is
//! more likely the query continues to be queued", starving low-value
//! reports under load. The fix adapts the formula "by adding a function
//! of time values" that grows faster than the CL/SL discount shrinks.
//!
//! This example drives an overloaded federation server with a mix of
//! high- and low-value queries under both policies and reports the
//! waiting-time distribution of each.
//!
//! Run with: `cargo run --release --example starvation`

use ivdss::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = synthetic_catalog(&SyntheticConfig {
        tables: 12,
        sites: 2,
        replicated_tables: 12,
        mean_sync_period: 5.0,
        rows_range: (1_000, 200_000),
        seed: 5,
        ..SyntheticConfig::default()
    })?;
    let timelines = SyncTimelines::from_plan(catalog.replication(), SyncMode::Deterministic);
    let model = StylizedCostModel::paper_fig4();
    let rates = DiscountRates::new(0.02, 0.02);
    let env = Environment {
        catalog: &catalog,
        timelines: &timelines,
        model: &model,
        rates,
        loading: None,
    };

    // Heavy load: arrivals every 0.8 time units, service ≈ 2; every fourth
    // query is a low-value housekeeping report the greedy scheduler keeps
    // skipping.
    let requests: Vec<QueryRequest> = (0..60)
        .map(|i| {
            let value = if i % 4 == 0 { 0.2 } else { 1.0 };
            QueryRequest::new(
                QuerySpec::new(QueryId::new(i as u64), vec![TableId::new((i % 12) as u32)]),
                SimTime::new(1.0 + 0.8 * i as f64),
            )
            .with_business_value(BusinessValue::new(value))
        })
        .collect();

    println!(
        "{:<26} {:>10} {:>10} {:>10} {:>10}",
        "policy", "mean wait", "max wait", "p90 wait", "total IV"
    );
    for (label, aging) in [
        ("pure value-maximizing", AgingPolicy::DISABLED),
        ("aging (paper §3.3)", AgingPolicy::outpacing(rates, 0.05)),
    ] {
        let metrics = run_prioritized(&env, &IvqpPlanner::new(), &requests, aging)?;
        let waits = metrics.waiting_stats();
        let mut samples = ivdss::simkernel::SampleSet::new();
        for o in metrics.outcomes() {
            samples.record(o.waiting_time().value());
        }
        println!(
            "{:<26} {:>10.2} {:>10.2} {:>10.2} {:>10.3}",
            label,
            waits.mean(),
            waits.max().unwrap_or(0.0),
            samples.quantile(0.9).unwrap_or(0.0),
            metrics.total_information_value(),
        );
    }

    println!();
    println!("Aging bounds the worst-case waiting time of unlucky queries at a");
    println!("modest cost in total information value — the paper: starvation");
    println!("\"does not have impact on achieving overall optimal information");
    println!("value but it may results in many unhappy end users\" (§3.3).");
    Ok(())
}
