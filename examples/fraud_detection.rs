//! Insurance fraud-detection DSS — a staleness-sensitive scenario.
//!
//! The paper motivates near real-time DSS with "insurance (e.g. fraud
//! detection)" use cases: a fraud report generated from stale claims data
//! loses value very quickly (λ_SL high), while an analyst will tolerate a
//! few extra minutes of processing (λ_CL low). This example builds a
//! synthetic claims warehouse, streams fraud-screening queries through the
//! full discrete-event simulator, and shows how the IVQP framework's
//! willingness to *delay* a query until the next claims-feed refresh wins
//! information value that both baselines leave on the table.
//!
//! Run with: `cargo run --release --example fraud_detection`

use ivdss::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A claims-processing estate: 40 tables (claims, policies, parties,
    // payments, …) spread over 6 regional systems, the 20 hottest tables
    // replicated to the fraud-analytics federation server and refreshed
    // every ~4 minutes.
    let hybrid = synthetic_catalog(&SyntheticConfig {
        tables: 40,
        sites: 6,
        placement: PlacementStrategy::Skewed,
        replicated_tables: 20,
        mean_sync_period: 4.0,
        seed: 0xFA0D,
        ..SyntheticConfig::default()
    })?;
    let warehouse = hybrid.with_replication(ReplicationPlan::full(
        hybrid.table_ids(),
        4.0 * 40.0 / 20.0, // fixed refresh budget: 2× the period for 2× the tables
    ))?;
    let federation = hybrid.with_replication(ReplicationPlan::new())?;

    let horizon = SimTime::new(4_000.0);
    let seeds = SeedFactory::new(7);
    let sync_mode = SyncMode::Stochastic {
        horizon,
        seed: seeds.seed_for("sync"),
    };
    let model = AnalyticCostModel::paper_scale();

    // Fraud screens: 3–6 table joins, high business value, and the
    // fraud-desk preference — staleness is expensive, latency is cheap.
    let rates = DiscountRates::new(0.01, 0.08);
    let templates = random_queries(&RandomQueryConfig {
        queries: 12,
        tables: 40,
        max_tables_per_query: 6,
        weight_range: (1.0, 2.5),
        seed: seeds.seed_for("screens"),
    });
    let requests = ArrivalStream::new(templates, 15.0, seeds.seed_for("arrivals"))
        .with_business_value(BusinessValue::new(1.0))
        .take_requests(120);

    println!("fraud-detection DSS: 40 tables / 6 regional systems / 20 replicas");
    println!("fraud-desk preference: λ_CL = 0.01, λ_SL = 0.08 (staleness hurts)");
    println!();
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>12}",
        "planner", "mean IV", "mean CL", "mean SL", "delayed plans"
    );

    for (catalog, planner) in [
        (&hybrid, Box::new(IvqpPlanner::new()) as Box<dyn Planner>),
        (&federation, Box::new(FederationPlanner::new())),
        (&warehouse, Box::new(WarehousePlanner::new())),
    ] {
        let timelines = SyncTimelines::from_plan(catalog.replication(), sync_mode);
        let env = Environment {
            catalog,
            timelines: &timelines,
            model: &model,
            rates,
            loading: Some(ReplicaLoading::paper_scale()),
        };
        let metrics = run_arrival_driven(&env, planner.as_ref(), &requests)?;
        let delayed = metrics
            .outcomes()
            .iter()
            .filter(|o| o.plan.is_delayed(o.request.submitted_at))
            .count();
        println!(
            "{:<14} {:>10.4} {:>10.2} {:>10.2} {:>9}/{}",
            planner.name(),
            metrics.mean_information_value(),
            metrics.mean_computational_latency(),
            metrics.mean_synchronization_latency(),
            delayed,
            metrics.len(),
        );
    }

    println!();
    println!("IVQP trades a little response time for much fresher claims data");
    println!("(and sometimes waits for the next feed refresh — Fig. 2's insight).");
    Ok(())
}
