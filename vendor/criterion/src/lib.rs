//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment for this repository has no access to a crates
//! registry, so the workspace vendors a small wall-clock harness with the
//! criterion API surface the benches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkGroup::sample_size`], [`BenchmarkId`], [`Bencher::iter`], and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark is auto-calibrated so one sample runs
//! long enough to time reliably (≥ ~2 ms), then `sample_size` samples are
//! collected and the per-iteration minimum / median / mean are printed.
//! There is no statistical regression analysis, plotting, or baseline
//! storage — just honest numbers on stdout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Minimum wall-clock duration of one calibrated sample.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(2);
/// Cap on iterations per sample, so very fast bodies still terminate
/// calibration quickly.
const MAX_ITERS_PER_SAMPLE: u64 = 1 << 22;

/// Times the body of one benchmark.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `body` for the harness-chosen number of iterations, timing the
    /// whole batch.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut body: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(body());
        }
        self.elapsed = start.elapsed();
    }
}

/// Identifies one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A benchmark named `function_name` at parameter value `parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A benchmark identified only by its parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

fn run_one(name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Calibrate: grow the per-sample iteration count until one sample is
    // long enough to time reliably.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= TARGET_SAMPLE_TIME || iters >= MAX_ITERS_PER_SAMPLE {
            break;
        }
        // Aim straight at the target from the observed rate, at least ×2.
        let observed = b.elapsed.max(Duration::from_nanos(1));
        let scale = TARGET_SAMPLE_TIME.as_nanos() / observed.as_nanos().max(1) + 1;
        iters = (iters.saturating_mul(scale as u64)).clamp(iters * 2, MAX_ITERS_PER_SAMPLE);
    }

    let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() * 1e9 / iters as f64);
    }
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("benchmark time is NaN"));
    let min = per_iter.first().copied().unwrap_or(0.0);
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "bench {name:<48} min {:>12} median {:>12} mean {:>12} ({sample_size} samples × {iters} iters)",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean),
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

const DEFAULT_SAMPLE_SIZE: usize = 20;

impl Criterion {
    /// Upstream-compatibility hook; CLI arguments are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, DEFAULT_SAMPLE_SIZE, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample count.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark in the group collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Closes the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group_name:ident, $($target:path),+ $(,)?) => {
        pub fn $group_name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `fn main` running the named benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group_name:path),+ $(,)?) => {
        fn main() {
            $( $group_name(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default();
        let mut counter = 0u64;
        c.bench_function("counter", |b| b.iter(|| counter += 1));
        assert!(counter > 0);
    }

    #[test]
    fn group_applies_sample_size_and_ids() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        let mut hits = 0u32;
        group.bench_with_input(BenchmarkId::new("f", 3), &3u32, |b, &n| {
            b.iter(|| hits = hits.wrapping_add(n));
        });
        group.finish();
        assert!(hits > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 7).to_string(), "f/7");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
