//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment for this repository has no access to a crates
//! registry, so the workspace vendors a minimal property-testing harness
//! with the same surface the tests use:
//!
//! * the [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//!   header) wrapping `#[test]` functions whose arguments are drawn from
//!   strategies;
//! * [`Strategy`] implementations for integer/float [`Range`]s, tuples,
//!   `any::<bool>()` / `any::<u64>()` (and the other unsigned integers),
//!   `prop::collection::vec`, and simple character-class regex literals
//!   such as `"[a-z]{1,12}"`;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`];
//! * [`ProptestConfig::with_cases`].
//!
//! Unlike upstream proptest there is no shrinking and no failure
//! persistence: each test runs a fixed number of cases drawn from a
//! deterministic generator seeded by the test's module path and name, so
//! failures reproduce exactly across runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

// ---------------------------------------------------------------------------
// Deterministic test RNG (SplitMix64-seeded xoshiro256++).
// ---------------------------------------------------------------------------

/// Deterministic random generator backing every strategy draw.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TestRng {
    /// RNG for one test case: mixes the per-test base seed with the case
    /// index so every case sees an independent stream.
    pub fn for_case(base: u64, case: u32) -> Self {
        let mut sm = base ^ (u64::from(case).wrapping_mul(0xa076_1d64_78bd_642f));
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit word (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Stable per-test base seed derived from the test's full name (FNV-1a).
pub fn test_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Config.
// ---------------------------------------------------------------------------

/// Controls how many cases each property runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases drawn per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

// ---------------------------------------------------------------------------
// Strategies.
// ---------------------------------------------------------------------------

/// A recipe for generating values of an output type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_uint_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_uint_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_sint_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_sint_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let v = self.start + (self.end - self.start) * rng.unit_f64();
        // Rounding can land exactly on the excluded upper bound.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        let v = self.start + (self.end - self.start) * rng.unit_f64() as f32;
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Types with a canonical full-range strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty => $shift:expr),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                (rng.next_u64() >> $shift) as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8 => 56, u16 => 48, u32 => 32, u64 => 0, usize => 0);

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T` (e.g. `any::<bool>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

// ---------------------------------------------------------------------------
// Regex-literal string strategies (character-class subset).
// ---------------------------------------------------------------------------

/// A string strategy: one repeated atom parsed from a regex subset such as
/// `"[a-z0-9]{1,12}"`. Supports character classes with ranges and literal
/// characters, and `{m}` / `{m,n}` repetition counts.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_simple_regex(self);
        let mut out = String::new();
        for atom in &atoms {
            let reps = if atom.max_reps == atom.min_reps {
                atom.min_reps
            } else {
                atom.min_reps + rng.below((atom.max_reps - atom.min_reps + 1) as u64) as usize
            };
            for _ in 0..reps {
                let pick = rng.below(atom.chars.len() as u64) as usize;
                out.push(atom.chars[pick]);
            }
        }
        out
    }
}

struct RegexAtom {
    chars: Vec<char>,
    min_reps: usize,
    max_reps: usize,
}

fn parse_simple_regex(pattern: &str) -> Vec<RegexAtom> {
    let mut atoms = Vec::new();
    let mut it = pattern.chars().peekable();
    while let Some(c) = it.next() {
        let chars = if c == '[' {
            let mut set = Vec::new();
            let mut prev: Option<char> = None;
            loop {
                match it.next() {
                    Some(']') => break,
                    Some('-') if prev.is_some() && it.peek() != Some(&']') => {
                        let lo = prev.take().expect("range start");
                        let hi = it.next().expect("unterminated character range");
                        assert!(lo <= hi, "invalid character range in {pattern:?}");
                        set.extend((lo..=hi).filter(|c| c.is_ascii()));
                    }
                    Some(ch) => {
                        if let Some(p) = prev.replace(ch) {
                            set.push(p);
                        }
                    }
                    None => panic!("unterminated character class in {pattern:?}"),
                }
            }
            if let Some(p) = prev {
                set.push(p);
            }
            assert!(!set.is_empty(), "empty character class in {pattern:?}");
            set
        } else {
            assert!(
                !"(){}|*+?.\\^$".contains(c),
                "unsupported regex syntax {c:?} in {pattern:?} (vendored proptest stub)"
            );
            vec![c]
        };
        let (min_reps, max_reps) = if it.peek() == Some(&'{') {
            it.next();
            let spec: String = it.by_ref().take_while(|&ch| ch != '}').collect();
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad repetition lower bound"),
                    hi.trim().parse().expect("bad repetition upper bound"),
                ),
                None => {
                    let n = spec.trim().parse().expect("bad repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min_reps <= max_reps, "bad repetition range in {pattern:?}");
        atoms.push(RegexAtom {
            chars,
            min_reps,
            max_reps,
        });
    }
    atoms
}

// ---------------------------------------------------------------------------
// Collections.
// ---------------------------------------------------------------------------

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of an element strategy's values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.max == self.size.min {
                self.size.min
            } else {
                self.size.min + rng.below((self.size.max - self.size.min + 1) as u64) as usize
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `vec(element, len_range)` — a `Vec` whose length is drawn from
    /// `len_range` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

// ---------------------------------------------------------------------------
// Macros.
// ---------------------------------------------------------------------------

/// Property-test assertion; forwards to [`assert!`].
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Property-test equality assertion; forwards to [`assert_eq!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Property-test inequality assertion; forwards to [`assert_ne!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` (the attribute is written by the caller, as with
/// upstream proptest's output) running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __base = $crate::test_seed(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::for_case(__base, __case);
                let ($($pat,)+) =
                    ($($crate::Strategy::generate(&($strat), &mut __rng),)+);
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Everything a property-test module needs, mirroring upstream's prelude.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };

    /// Mirror of upstream's `prop` re-export module (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{parse_simple_regex, test_seed, TestRng};

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case(test_seed("ranges"), 0);
        for _ in 0..1_000 {
            let x = Strategy::generate(&(3usize..10), &mut rng);
            assert!((3..10).contains(&x));
            let y = Strategy::generate(&(-5.0..5.0f64), &mut rng);
            assert!((-5.0..5.0).contains(&y));
        }
    }

    #[test]
    fn regex_strategy_matches_class() {
        let mut rng = TestRng::for_case(test_seed("regex"), 1);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.len()), "len {}", s.len());
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn regex_parser_handles_literals_and_counts() {
        let atoms = parse_simple_regex("x[0-9]{3}");
        assert_eq!(atoms.len(), 2);
        assert_eq!(atoms[0].chars, vec!['x']);
        assert_eq!((atoms[1].min_reps, atoms[1].max_reps), (3, 3));
        assert_eq!(atoms[1].chars.len(), 10);
    }

    #[test]
    fn vec_strategy_respects_len() {
        let mut rng = TestRng::for_case(test_seed("vec"), 2);
        for _ in 0..200 {
            let v = Strategy::generate(&prop::collection::vec(0u32..7, 2..6), &mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 7));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: tuple + any + vec strategies all compose.
        #[test]
        fn macro_smoke(
            (a, b) in (0u32..10, 0.0..1.0f64),
            flag in any::<bool>(),
            xs in prop::collection::vec(0usize..5, 1..4)
        ) {
            prop_assert!(a < 10);
            prop_assert!((0.0..1.0).contains(&b));
            prop_assert!(u8::from(flag) <= 1);
            prop_assert!(!xs.is_empty() && xs.len() < 4);
        }
    }
}
