//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no access to a crates
//! registry, so the workspace vendors a minimal, dependency-free
//! implementation of the `rand` 0.9 API surface it actually uses:
//!
//! * [`rngs::StdRng`] — a deterministic, seedable generator
//!   (SplitMix64-seeded xoshiro256++);
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::random`] for `f64`, `f32`, `bool` and the unsigned integers;
//! * [`Rng::random_range`] over half-open and inclusive integer/float
//!   ranges;
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Streams are reproducible given a seed, which is all the simulation
//! kernel requires; the exact sample sequences differ from upstream
//! `rand`, and no cryptographic guarantees are made.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of uniformly distributed random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an [`RngCore`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return start + rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        let v = self.start + (self.end - self.start) * u;
        // Guard against rounding up to the excluded upper bound.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + (end - start) * f64::sample(rng)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + (self.end - self.start) * f32::sample(rng);
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

/// Convenience sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Draws `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded through SplitMix64.
    ///
    /// Not the upstream `StdRng` (ChaCha12) — sequences differ — but it is
    /// fast, passes the statistical needs of the simulation (BigCrush-clean
    /// family), and is fully reproducible from a `u64` seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension trait adding random shuffling to slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
    }

    impl StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn unit_f64_in_range_and_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn int_ranges_cover_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let x = rng.random_range(3..=3u32);
            assert_eq!(x, 3);
        }
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.random_range(1.0..2.0f64);
            assert!((1.0..2.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle of 50 elements left order unchanged");
    }

    #[test]
    fn bool_sampling_is_balanced() {
        let mut rng = StdRng::seed_from_u64(5);
        let trues = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4_500..5_500).contains(&trues), "trues {trues}");
    }
}
